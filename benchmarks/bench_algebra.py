"""E16 — the relational algebra → IQL pipeline (Section 3.4's embedding).

Claims measured: compiled queries are always IQLrr (asserted), compile
time is negligible against evaluation, and evaluation scales polynomially
with the database.

Run standalone:  python benchmarks/bench_algebra.py
"""

import pytest

from repro.iql import classify, evaluate, typecheck_program
from repro.iql.algebra import Diff, Join, Project, Rel, Select, compile_query, eq_const
from repro.schema import Instance, Schema
from repro.typesys import D, tuple_of
from repro.values import OTuple

from helpers import fit_loglog_slope, ms, print_series, time_call


def make_db(n):
    schema = Schema(
        relations={
            "Emp": tuple_of(name=D, dept=D, level=D),
            "Dept": tuple_of(dept=D, site=D),
            "Former": tuple_of(name=D, dept=D, level=D),
        }
    )
    emps = [
        OTuple(name=f"e{i}", dept=f"d{i % (n // 4 or 1)}", level="senior" if i % 3 else "junior")
        for i in range(n)
    ]
    depts = [OTuple(dept=f"d{i}", site="paris" if i % 2 else "lyon") for i in range(n // 4 or 1)]
    former = [OTuple(name=f"e{i}", dept=f"d{i % (n // 4 or 1)}", level="senior") for i in range(0, n, 5)]
    return schema, Instance(schema, relations={"Emp": emps, "Dept": depts, "Former": former})


QUERY = Project(
    Diff(
        Select(Join(Rel("Emp"), Rel("Dept")), eq_const("site", "paris")),
        Select(Join(Rel("Former"), Rel("Dept")), eq_const("site", "paris")),
    ),
    ["name"],
)


@pytest.mark.parametrize("n", [32, 64])
def test_query(benchmark, n):
    schema, data = make_db(n)
    program = typecheck_program(compile_query(QUERY, schema))
    assert classify(program).is_iql_rr
    inp = data.project(program.input_schema)
    out = benchmark.pedantic(lambda: evaluate(program, inp.copy()), rounds=2, iterations=1)
    assert out.relations["Answer"]


def test_compile(benchmark):
    schema, _ = make_db(16)
    program = benchmark(lambda: compile_query(QUERY, schema))
    assert len(program.stages) == 2


def main():
    schema, _ = make_db(16)
    t_compile, program = time_call(compile_query, QUERY, schema)
    print(f"\ncompile: {ms(t_compile)}; classification: {classify(program).summary()}")
    rows = []
    sizes = [32, 64, 128, 256]
    times = []
    for n in sizes:
        schema, data = make_db(n)
        program = compile_query(QUERY, schema)
        inp = data.project(program.input_schema)
        elapsed, out = time_call(evaluate, program, inp)
        times.append(elapsed)
        rows.append((n, len(out.relations["Answer"]), ms(elapsed)))
    print_series(
        "E16: algebra query (join + select + difference + project)",
        ["|Emp|", "|Answer|", "time"],
        rows,
    )
    print(f"  log-log slope ≈ {fit_loglog_slope(sizes, times):.2f} — PTIME, as IQLrr requires")
    return dict(zip(sizes, times))


if __name__ == "__main__":
    main()
