"""E11 — Section 3.4: Datalog ⊂ IQL, and what the generality costs.

Six engines on identical transitive-closure workloads:

* the dedicated Datalog engine, naive and semi-naive,
* the generic IQL evaluator at four optimization levels: naive with
  indexes disabled (the reference generate-and-test join), naive with the
  hash-index planner, the full delta rewriting + indexes (auto-enabled
  for Datalog-positive stages; repro.iql.seminaive), and the delta
  rewriting with rule compilation on top (repro.iql.compile — planned
  bodies specialized into closure kernels).

Claims measured: all six produce identical fact sets; semi-naive beats
naive by a growing factor in both engines (the classical result); the
hash indexes alone buy a growing factor over the unindexed join;
compilation buys a further constant factor over the interpreted delta
rewriting (it removes per-valuation dict copies and dispatch, not
asymptotics); the IQL evaluator pays a constant-factor interpretation
overhead over the flat engine at matching algorithms — same asymptotics,
since the embedding is verbatim.

Run standalone:  python benchmarks/bench_datalog.py
"""

import pytest

from repro.datalog import (
    database_to_instance,
    datalog_to_iql,
    evaluate_naive,
    evaluate_seminaive,
    instance_to_database,
    transitive_closure_program,
)
from repro.iql import Evaluator, evaluate
from repro.workloads import path_graph, transitive_closure

from helpers import ms, print_series, time_call


def setup(n):
    dprog = transitive_closure_program()
    edges = path_graph(n)
    return dprog, {"E": set(edges)}, edges


@pytest.mark.parametrize("n", [16, 32])
def test_datalog_naive(benchmark, n):
    dprog, edb, edges = setup(n)
    out = benchmark.pedantic(lambda: evaluate_naive(dprog, edb), rounds=2, iterations=1)
    assert out["T"] == transitive_closure(edges)


@pytest.mark.parametrize("n", [16, 32])
def test_datalog_seminaive(benchmark, n):
    dprog, edb, edges = setup(n)
    out = benchmark.pedantic(
        lambda: evaluate_seminaive(dprog, edb), rounds=2, iterations=1
    )
    assert out["T"] == transitive_closure(edges)


@pytest.mark.parametrize("n", [16, 32])
def test_iql_embedded(benchmark, n):
    dprog, edb, edges = setup(n)
    program = datalog_to_iql(dprog)
    instance = database_to_instance(dprog, edb, names=dprog.edb)
    out = benchmark.pedantic(
        lambda: evaluate(program, instance.copy()), rounds=2, iterations=1
    )
    assert instance_to_database(out)["T"] == transitive_closure(edges)


@pytest.mark.parametrize("n", [16, 32])
def test_iql_compiled(benchmark, n):
    dprog, edb, edges = setup(n)
    program = datalog_to_iql(dprog)
    instance = database_to_instance(dprog, edb, names=dprog.edb)
    evaluator = Evaluator(program, seminaive=True, compile=True)
    out = benchmark.pedantic(
        lambda: evaluator.run(instance.copy()).output, rounds=2, iterations=1
    )
    assert instance_to_database(out)["T"] == transitive_closure(edges)


SMOKE_SIZES = [8, 16]


def main(sizes=None):
    rows = []
    series = {}
    for n in sizes or [8, 16, 24, 32]:
        dprog, edb, edges = setup(n)
        t_naive, out_naive = time_call(evaluate_naive, dprog, edb)
        t_semi, out_semi = time_call(evaluate_seminaive, dprog, edb)
        program = datalog_to_iql(dprog)
        instance = database_to_instance(dprog, edb, names=dprog.edb)
        t_noidx, res_noidx = time_call(
            lambda program=program, instance=instance: Evaluator(program, seminaive=False, indexed=False)
            .run(instance.copy())
            .output
        )
        t_idx, res_idx = time_call(
            lambda program=program, instance=instance: Evaluator(program, seminaive=False, indexed=True)
            .run(instance.copy())
            .output
        )
        t_iql_semi, res_semi = time_call(
            lambda program=program, instance=instance: Evaluator(program, seminaive=True).run(instance.copy()).output
        )
        t_iql_comp, res_comp = time_call(
            lambda program=program, instance=instance: Evaluator(program, seminaive=True, compile=True)
            .run(instance.copy())
            .output
        )
        agree = (
            out_naive["T"]
            == out_semi["T"]
            == instance_to_database(res_noidx)["T"]
            == instance_to_database(res_idx)["T"]
            == instance_to_database(res_semi)["T"]
            == instance_to_database(res_comp)["T"]
        )
        series[n] = t_iql_comp
        rows.append(
            (
                n,
                len(out_naive["T"]),
                ms(t_naive),
                ms(t_semi),
                ms(t_noidx),
                ms(t_idx),
                ms(t_iql_semi),
                ms(t_iql_comp),
                f"{t_iql_semi / t_iql_comp:.1f}×",
                f"{t_noidx / t_iql_comp:.1f}×",
                "✓" if agree else "✗",
            )
        )
    print_series(
        "E11: transitive closure on path graphs — six engines, one answer",
        ["n", "|T|", "DL naive", "DL semi", "IQL no-index", "IQL indexed",
         "IQL semi+idx", "IQL compiled", "compile speedup", "total speedup",
         "agree"],
        rows,
    )
    print(
        "  shape: the hash indexes alone buy a growing factor over the\n"
        "  unindexed generate-and-test join; semi-naive on top avoids\n"
        "  rediscovery, so the combined speedup grows fastest; compiling the\n"
        "  planned bodies into closure kernels buys a further constant\n"
        "  factor (no per-valuation dict copies or step dispatch). IQL's\n"
        "  overhead over Datalog at matching algorithms stays a constant\n"
        "  factor — identical asymptotics, as the verbatim embedding\n"
        "  predicts."
    )
    return series


if __name__ == "__main__":
    main()
