"""E11 — Section 3.4: Datalog ⊂ IQL, and what the generality costs.

Four engines on identical transitive-closure workloads:

* the dedicated Datalog engine, naive and semi-naive,
* the generic IQL evaluator, naive and with its own delta rewriting
  (auto-enabled for Datalog-positive stages; repro.iql.seminaive).

Claims measured: all four produce identical fact sets; semi-naive beats
naive by a growing factor in both engines (the classical result); the IQL
evaluator pays a constant-factor interpretation overhead over the flat
engine at matching algorithms — same asymptotics, since the embedding is
verbatim.

Run standalone:  python benchmarks/bench_datalog.py
"""

import pytest

from repro.datalog import (
    database_to_instance,
    datalog_to_iql,
    evaluate_naive,
    evaluate_seminaive,
    instance_to_database,
    transitive_closure_program,
)
from repro.iql import Evaluator, evaluate
from repro.workloads import path_graph, transitive_closure

from helpers import ms, print_series, time_call


def setup(n):
    dprog = transitive_closure_program()
    edges = path_graph(n)
    return dprog, {"E": set(edges)}, edges


@pytest.mark.parametrize("n", [16, 32])
def test_datalog_naive(benchmark, n):
    dprog, edb, edges = setup(n)
    out = benchmark.pedantic(lambda: evaluate_naive(dprog, edb), rounds=2, iterations=1)
    assert out["T"] == transitive_closure(edges)


@pytest.mark.parametrize("n", [16, 32])
def test_datalog_seminaive(benchmark, n):
    dprog, edb, edges = setup(n)
    out = benchmark.pedantic(
        lambda: evaluate_seminaive(dprog, edb), rounds=2, iterations=1
    )
    assert out["T"] == transitive_closure(edges)


@pytest.mark.parametrize("n", [16, 32])
def test_iql_embedded(benchmark, n):
    dprog, edb, edges = setup(n)
    program = datalog_to_iql(dprog)
    instance = database_to_instance(dprog, edb, names=dprog.edb)
    out = benchmark.pedantic(
        lambda: evaluate(program, instance.copy()), rounds=2, iterations=1
    )
    assert instance_to_database(out)["T"] == transitive_closure(edges)


def main():
    rows = []
    for n in [8, 16, 24, 32]:
        dprog, edb, edges = setup(n)
        t_naive, out_naive = time_call(evaluate_naive, dprog, edb)
        t_semi, out_semi = time_call(evaluate_seminaive, dprog, edb)
        program = datalog_to_iql(dprog)
        instance = database_to_instance(dprog, edb, names=dprog.edb)
        t_iql_naive, res_naive = time_call(
            lambda: Evaluator(program, seminaive=False).run(instance.copy()).output
        )
        t_iql_semi, res_semi = time_call(
            lambda: Evaluator(program, seminaive=True).run(instance.copy()).output
        )
        agree = (
            out_naive["T"]
            == out_semi["T"]
            == instance_to_database(res_naive)["T"]
            == instance_to_database(res_semi)["T"]
        )
        rows.append(
            (
                n,
                len(out_naive["T"]),
                ms(t_naive),
                ms(t_semi),
                ms(t_iql_naive),
                ms(t_iql_semi),
                f"{t_naive / t_semi:.1f}×",
                f"{t_iql_naive / t_iql_semi:.1f}×",
                "✓" if agree else "✗",
            )
        )
    print_series(
        "E11: transitive closure on path graphs — four engines, one answer",
        ["n", "|T|", "DL naive", "DL semi", "IQL naive", "IQL semi",
         "DL speedup", "IQL speedup", "agree"],
        rows,
    )
    print(
        "  shape: semi-naive's advantage grows with n (it avoids rediscovery);\n"
        "  IQL's overhead over Datalog-naive is a constant factor — identical\n"
        "  asymptotics, as the verbatim embedding predicts."
    )


if __name__ == "__main__":
    main()
