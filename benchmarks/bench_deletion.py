"""E9 — Section 4.5: IQL* deletions with cascades.

Claims measured: deletion rules with oid cascades scale with the size of
the affected region; the evaluator's state-cycle detection costs one
ground-fact snapshot per step (the price of non-inflationary semantics).

Run standalone:  python benchmarks/bench_deletion.py
"""

import pytest

from repro.iql import (
    Equality,
    Membership,
    NameTerm,
    Program,
    Rule,
    TupleTerm,
    Var,
    atom,
    columns,
    evaluate,
    typecheck_program,
)
from repro.schema import Instance, Schema
from repro.typesys import D, classref, set_of, tuple_of
from repro.values import Oid, OSet, OTuple

from helpers import ms, print_series, time_call


def relation_cleanup_program():
    schema = Schema(relations={"R": columns(D, D), "Kill": D})
    x, y = Var("x", D), Var("y", D)
    return typecheck_program(
        Program(
            schema,
            rules=[
                Rule(
                    atom(schema, "R", x, y),
                    [atom(schema, "R", x, y), atom(schema, "Kill", x)],
                    delete=True,
                )
            ],
            input_names=["R", "Kill"],
            output_names=["R"],
        )
    )


def cleanup_instance(schema, n, kill_every=3):
    rows = [OTuple(A01=f"k{i}", A02=f"v{i}") for i in range(n)]
    kills = [f"k{i}" for i in range(0, n, kill_every)]
    return Instance(schema, relations={"R": rows, "Kill": kills})


def chain_delete_program():
    """Delete the head of an n-object reference chain: the cascade must
    sweep the whole chain."""
    P = classref("P")
    schema = Schema(
        relations={"KillTag": D},
        classes={"P": tuple_of(tag=D, prev=set_of(P))},
    )
    p = Var("p", P)
    t = Var("t", D)
    return typecheck_program(
        Program(
            schema,
            rules=[
                Rule(
                    atom(schema, "P", p),
                    [
                        atom(schema, "P", p),
                        Equality(p.hat(), TupleTerm(tag=t, prev=Var("S", set_of(P)))),
                        atom(schema, "KillTag", t),
                    ],
                    delete=True,
                )
            ],
            input_names=["P", "KillTag"],
            output_names=["P"],
        )
    )


def chain_instance(schema, n):
    oids = [Oid(f"n{i}") for i in range(n)]
    instance = Instance(schema)
    for o in oids:
        instance.add_class_member("P", o)
    for i, o in enumerate(oids):
        prev = OSet([oids[i - 1]]) if i else OSet()
        instance.assign(o, OTuple(tag=f"t{i}", prev=prev))
    instance.add_relation_member("KillTag", "t0")
    return instance


@pytest.mark.parametrize("n", [32, 128])
def test_relation_cleanup(benchmark, n):
    program = relation_cleanup_program()
    instance = cleanup_instance(program.schema, n)
    out = benchmark.pedantic(
        lambda: evaluate(program, instance.copy()), rounds=2, iterations=1
    )
    assert len(out.relations["R"]) < n


@pytest.mark.parametrize("n", [8, 16])
def test_cascade_chain(benchmark, n):
    program = chain_delete_program()
    instance = chain_instance(program.input_schema, n)
    out = benchmark.pedantic(
        lambda: evaluate(program, instance.copy()), rounds=2, iterations=1
    )
    # killing t0 cascades through every object that (transitively) refers
    # to it — the whole chain.
    assert len(out.classes["P"]) == 0


def main():
    program = relation_cleanup_program()
    rows = []
    series = {}
    for n in [32, 64, 128, 256]:
        instance = cleanup_instance(program.schema, n)
        elapsed, out = time_call(evaluate, program, instance)
        series[n] = elapsed
        rows.append((n, n - len(out.relations["R"]), ms(elapsed)))
    print_series(
        "E9a: IQL* relation cleanup (delete every 3rd key)",
        ["rows", "deleted", "time"],
        rows,
    )

    program = chain_delete_program()
    rows = []
    for n in [4, 8, 16, 32]:
        instance = chain_instance(program.input_schema, n)
        elapsed, out = time_call(evaluate, program, instance)
        rows.append((n, n - len(out.classes["P"]), ms(elapsed)))
    print_series(
        "E9b: oid deletion cascade along a reference chain",
        ["chain length", "objects swept", "time"],
        rows,
    )
    print(
        "  'Deleting an oid forces deletion of other objects that have this\n"
        "  oid in their o-value' — the cascade is the dominant cost, as the\n"
        "  paper's reference-count/garbage-collection remark anticipates."
    )
    return series


if __name__ == "__main__":
    main()
