"""E6 — Theorem 4.1.3: determinacy and genericity probes as a harness.

Claims measured: the determinacy probe (re-run with independent oid
factories + O-isomorphism check) and the genericity probe (random
DO-isomorphisms) pass on the paper's example programs, and their cost is
dominated by the isomorphism search, which colour refinement keeps small.

Run standalone:  python benchmarks/bench_determinacy.py
"""

import pytest

from repro.transform import (
    check_determinacy,
    check_genericity,
    graph_instance,
    graph_to_class_program,
    union_encode_program,
    union_instance,
)
from repro.workloads import cycle_graph, random_graph

from helpers import ms, print_series, time_call


def test_determinacy_graph(benchmark):
    program = graph_to_class_program()
    instance = graph_instance(cycle_graph(6))
    report = benchmark.pedantic(
        lambda: check_determinacy(program, instance, runs=2), rounds=2, iterations=1
    )
    assert report.all_isomorphic


def test_genericity_graph(benchmark):
    program = graph_to_class_program()
    instance = graph_instance(random_graph(5, seed=1))
    report = benchmark.pedantic(
        lambda: check_genericity(program, instance, probes=2), rounds=2, iterations=1
    )
    assert report.all_generic


def main():
    rows = []
    series = {}
    program = graph_to_class_program()
    for n in [4, 6, 8, 12]:
        instance = graph_instance(cycle_graph(n))
        t_det, det = time_call(check_determinacy, program, instance, 3)
        t_gen, gen = time_call(check_genericity, program, instance, 2)
        series[n] = t_det
        rows.append((n, ms(t_det), det.all_isomorphic, ms(t_gen), gen.all_generic))
    print_series(
        "E6: Theorem 4.1.3 probes on Example 1.2 (cycle graphs)",
        ["nodes", "determinacy (3 runs)", "ok", "genericity (2 probes)", "ok"],
        rows,
    )

    instance = union_instance({"a": ("a", "b"), "b": "a", "c": None})
    t_det, det = time_call(check_determinacy, union_encode_program(), instance, 3)
    print(f"\n  union encoding determinacy (3 runs): {ms(t_det)}, ok={det.all_isomorphic}")
    return series


if __name__ == "__main__":
    main()
