"""E2 — Example 1.2: graph → class re-representation.

Claims measured:
* invented oids = exactly 2·|nodes| (one P + one P_aux object each),
* runtime grows polynomially in the graph size (the program is IQLrr),
* the inverse program recovers the edge relation exactly.

Run standalone:  python benchmarks/bench_graph_encoding.py
"""

import pytest

from repro.iql import evaluate, evaluate_full
from repro.transform import (
    class_to_graph_program,
    decode_graph_output,
    graph_instance,
    graph_to_class_program,
)
from repro.workloads import cycle_graph, random_graph

from helpers import fit_loglog_slope, ms, print_series, time_call


@pytest.mark.parametrize("n", [8, 16, 32])
def test_graph_to_class(benchmark, n):
    program = graph_to_class_program()
    instance = graph_instance(cycle_graph(n))
    result = benchmark.pedantic(
        lambda: evaluate_full(program, instance.copy()), rounds=3, iterations=1
    )
    assert result.stats.oids_invented == 2 * n
    assert len(result.output.classes["P"]) == n


def test_round_trip(benchmark):
    edges = random_graph(12, average_degree=2.0, seed=3)
    forward = graph_to_class_program()
    inverse = class_to_graph_program()

    def round_trip():
        out = evaluate(forward, graph_instance(edges))
        from repro.schema import Instance

        q_input = Instance(inverse.input_schema)
        for oid in out.classes["P"]:
            q_input.add_class_member("Q", oid)
        q_input.nu.update(out.nu)
        back = evaluate(inverse, q_input)
        return {(t["A01"], t["A02"]) for t in back.relations["R_out"]}

    got = benchmark.pedantic(round_trip, rounds=3, iterations=1)
    assert got == edges


SMOKE_SIZES = [8, 16]


def main(sizes=None):
    program = graph_to_class_program()
    rows = []
    sizes = sizes or [8, 16, 32, 64]
    times = []
    for n in sizes:
        instance = graph_instance(cycle_graph(n))
        elapsed, result = time_call(evaluate_full, program, instance)
        times.append(elapsed)
        rows.append(
            (n, len(result.output.classes["P"]), result.stats.oids_invented, ms(elapsed))
        )
    print_series(
        "E2: Example 1.2 — graph → class (cycle graphs)",
        ["nodes", "|P|", "oids invented", "time"],
        rows,
    )
    slope = fit_loglog_slope(sizes, times)
    print(f"  log-log slope ≈ {slope:.2f} (polynomial, as Theorem 5.4 predicts for IQLrr)")
    return dict(zip(sizes, times))


if __name__ == "__main__":
    main()
