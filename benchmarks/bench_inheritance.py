"""E12 — Section 6: the cost of inheritance-by-compilation.

Claims measured: validating under the inherited assignment, compiling the
isa diamond away, and validating against the compiled union-type schema all
scale linearly in the instance; the compiled schema is computed once per
schema, not per instance.

Run standalone:  python benchmarks/bench_inheritance.py
"""

import pytest

from repro.schema import Instance
from repro.workloads import university_instance, university_schema

from helpers import ms, print_series, time_call


def lifted_instance(schema, instance):
    plain = schema.compile_away_isa()
    lifted = Instance(plain)
    for name, members in instance.relations.items():
        lifted.relations[name] = set(members)
    for name, oids in instance.classes.items():
        for oid in oids:
            lifted.add_class_member(name, oid)
    lifted.nu.update(instance.nu)
    return lifted


@pytest.mark.parametrize("scale", [8, 32])
def test_validate_inherited(benchmark, scale):
    schema = university_schema()
    instance, _ = university_instance(
        people=scale, students=scale, instructors=scale // 2, tas=scale // 2, seed=scale
    )
    benchmark.pedantic(
        lambda: schema.validate_instance(instance), rounds=3, iterations=1
    )


@pytest.mark.parametrize("scale", [8, 32])
def test_validate_compiled(benchmark, scale):
    schema = university_schema()
    instance, _ = university_instance(
        people=scale, students=scale, instructors=scale // 2, tas=scale // 2, seed=scale
    )
    lifted = lifted_instance(schema, instance)
    benchmark.pedantic(lambda: lifted.validate(), rounds=3, iterations=1)


def test_compile_away_isa(benchmark):
    schema = university_schema()
    plain = benchmark.pedantic(schema.compile_away_isa, rounds=5, iterations=1)
    assert set(plain.classes) == set(schema.classes)


def main():
    schema = university_schema()
    rows = []
    series = {}
    for scale in [8, 16, 32, 64]:
        instance, _ = university_instance(
            people=scale,
            students=scale,
            instructors=scale // 2,
            tas=scale // 2,
            seed=scale,
        )
        t_inh, _ = time_call(schema.validate_instance, instance)
        lifted = lifted_instance(schema, instance)
        t_plain, _ = time_call(lifted.validate)
        series[scale * 3] = t_inh
        rows.append(
            (scale * 3, ms(t_inh), ms(t_plain), f"{t_inh / t_plain:.1f}×")
        )
    t_compile, _ = time_call(schema.compile_away_isa)
    print_series(
        "E12: university workload — inherited vs compiled validation",
        ["objects", "inherited π̄", "compiled (plain)", "ratio"],
        rows,
    )
    print(
        f"  compiling the isa diamond away once costs {ms(t_compile)}; after that,\n"
        "  inheritance is free — it IS union types (the Section 6 punchline)."
    )
    return series


if __name__ == "__main__":
    main()
