"""E1 — the structural model's bookkeeping costs.

Claims measured: instance validation, ground-fact materialization and
O-isomorphism checking on the Genesis fixture and on growing synthetic
instances — the constant-factor substrate everything else pays.

Run standalone:  python benchmarks/bench_instances.py
"""

import pytest

from repro.schema import Instance, Schema, apply_o_isomorphism, find_o_isomorphism
from repro.typesys import D, classref, set_of, tuple_of
from repro.values import Oid, OSet, OTuple
from repro.workloads import genesis_instance

from helpers import ms, print_series, time_call


def chain_instance(n):
    schema = Schema(
        classes={"Node": tuple_of(tag=D, next_=set_of(classref("Node")))}
    )
    oids = [Oid(f"c{i}") for i in range(n)]
    instance = Instance(schema, classes={"Node": oids})
    for i, o in enumerate(oids):
        succ = OSet([oids[i + 1]]) if i + 1 < n else OSet()
        instance.assign(o, OTuple(tag=f"t{i % 3}", next_=succ))
    return instance


def test_genesis_validate(benchmark):
    instance, _ = genesis_instance()
    benchmark(instance.validate)


def test_genesis_ground_facts(benchmark):
    instance, _ = genesis_instance()
    facts = benchmark(instance.ground_facts)
    assert len(facts) == instance.fact_count()


@pytest.mark.parametrize("n", [32, 128])
def test_validate_chain(benchmark, n):
    instance = chain_instance(n)
    benchmark.pedantic(instance.validate, rounds=3, iterations=1)


@pytest.mark.parametrize("n", [16, 32])
def test_isomorphism_check(benchmark, n):
    instance = chain_instance(n)
    image = apply_o_isomorphism(
        instance, {o: Oid() for o in instance.objects()}
    )
    mapping = benchmark.pedantic(
        lambda: find_o_isomorphism(instance, image), rounds=2, iterations=1
    )
    assert mapping is not None


def main():
    instance, _ = genesis_instance()
    t_val, _ = time_call(instance.validate)
    t_facts, facts = time_call(instance.ground_facts)
    print_series(
        "E1a: the Genesis instance (Example 1.1)",
        ["operation", "time", "result"],
        [
            ("validate (Definition 2.3.2)", ms(t_val), "legal ✓"),
            ("ground-facts view", ms(t_facts), f"{len(facts)} facts"),
        ],
    )

    rows = []
    series = {}
    for n in [16, 32, 64, 128]:
        chain = chain_instance(n)
        t_val, _ = time_call(chain.validate)
        image = apply_o_isomorphism(chain, {o: Oid() for o in chain.objects()})
        t_iso, mapping = time_call(find_o_isomorphism, chain, image)
        series[n] = t_val
        rows.append((n, ms(t_val), ms(t_iso), mapping is not None))
    print_series(
        "E1b: synthetic chains — validation and O-isomorphism",
        ["objects", "validate", "find O-isomorphism", "found"],
        rows,
    )
    return series


if __name__ == "__main__":
    main()
