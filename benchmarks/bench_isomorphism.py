"""E1b — the O-isomorphism search on growing synthetic instances.

Claims measured: PR 3's partition-refinement colouring (joint, delta-driven)
against the original digest-recomputing search it replaced
(:func:`repro.schema.find_o_isomorphism_reference`, kept as the oracle).
Chains are the adversarial case for the old search — every refinement round
moved one more colour boundary down the chain, recomputing every digest each
time — and the best case for delta refinement, which only touches the
moving boundary.

Run standalone:  python benchmarks/bench_isomorphism.py
"""

import pytest

from repro.schema import (
    apply_o_isomorphism,
    find_o_isomorphism,
    find_o_isomorphism_reference,
)
from repro.values import Oid

from bench_instances import chain_instance
from helpers import ms, print_series, time_call

#: CI smoke sweep (<1s); the full sweep is the EXPERIMENTS.md series.
SMOKE_SIZES = [16, 32]

FULL_SIZES = [16, 32, 64, 128]

#: The reference search is quadratic-ish on chains; keep its sweep short.
REFERENCE_CAP = 64


def renamed_image(instance):
    return apply_o_isomorphism(instance, {o: Oid() for o in instance.objects()})


@pytest.mark.parametrize("n", [32, 128])
def test_find_o_isomorphism_chain(benchmark, n):
    instance = chain_instance(n)
    image = renamed_image(instance)
    mapping = benchmark.pedantic(
        lambda: find_o_isomorphism(instance, image), rounds=3, iterations=1
    )
    assert mapping is not None


@pytest.mark.parametrize("n", [32])
def test_find_o_isomorphism_reference_chain(benchmark, n):
    instance = chain_instance(n)
    image = renamed_image(instance)
    mapping = benchmark.pedantic(
        lambda: find_o_isomorphism_reference(instance, image), rounds=2, iterations=1
    )
    assert mapping is not None


def main(sizes=None):
    sizes = sizes or FULL_SIZES
    rows = []
    series = {}
    for n in sizes:
        chain = chain_instance(n)
        image = renamed_image(chain)
        t_new, mapping = time_call(find_o_isomorphism, chain, image)
        assert mapping is not None
        if n <= REFERENCE_CAP:
            t_ref, ref_mapping = time_call(find_o_isomorphism_reference, chain, image)
            assert ref_mapping is not None
            speedup = f"{t_ref / t_new:.1f}x"
            ref_cell = ms(t_ref)
        else:
            ref_cell, speedup = "(skipped)", "-"
        series[n] = t_new
        rows.append((n, ms(t_new), ref_cell, speedup))
    print_series(
        "E1b: find_o_isomorphism on chains — delta refinement vs reference",
        ["objects", "refined", "reference", "speedup"],
        rows,
    )
    return series


if __name__ == "__main__":
    main()
