"""E20 — incremental view maintenance: apply_delta vs full re-evaluation.

Same workload as E19 (the mixed closure + filter + assignment stage over
a directed cycle), but evaluated *once* and then kept live by
:class:`repro.iql.ivm.MaterializedProgram`. The update stream is the
steady-state case IVM exists for: a chord edge n0→n⌊n/2⌋ of the cycle is
inserted and retracted, one fact per batch. On the full cycle the
transitive closure is already complete, so the insert changes no derived
fact — the runtime only has to *prove* that, by delta-joining the single
new edge against the existing closure (DRed stratum: one delta-seeded
semi-naive round; counting stratum: support increments for F) instead of
re-running the ~n-step fixpoint over all n² closure facts. The delete is
adversarial by design: on a complete closure virtually every derivation
is tainted by the chord, so DRed over-deletes ~everything, re-derives it
from the surviving cycle, and the counting stratum decrements all ~n³
dying F-valuations — work proportional to the whole derivation space,
i.e. a small constant times a cold evaluation. It is reported honestly
as the trichotomy's worst case; sparse deletes (the common serving
pattern) scale with the tainted cone instead.

Claims measured: the maintained instance stays equal to a fresh
evaluation after every batch; single-fact insert maintenance beats full
re-evaluation by a factor that grows with n (the acceptance bar is ≥20×
at n=32 — compare E20 against E19's full-evaluation series in the
BENCH_PR*.json trajectory); updates/sec is the serving-rate headline.

Run standalone:  python benchmarks/bench_ivm.py
"""

import pytest

from repro.iql import Evaluator, MaterializedProgram
from repro.values import OTuple

from bench_scheduling import setup
from helpers import ms, print_series, time_call


def chord(n):
    return OTuple(A1="n0", A2=f"n{n // 2}")


def materialize(n):
    program, instance = setup(n)
    return MaterializedProgram(program, instance), program, instance


def run_full(program, instance):
    return Evaluator(program, schedule=True, compile=True).run(instance.copy())


def timed_updates(mp, n, repeats=5):
    """Min insert / delete apply_delta times over ``repeats`` round trips."""
    fact = chord(n)
    mp.apply_delta(inserts=[("E", fact)])  # warm the kernels and supports
    mp.apply_delta(deletes=[("E", fact)])
    t_insert = t_delete = float("inf")
    for _ in range(repeats):
        t_ins, _ = time_call(mp.apply_delta, inserts=[("E", fact)])
        t_del, _ = time_call(mp.apply_delta, deletes=[("E", fact)])
        t_insert = min(t_insert, t_ins)
        t_delete = min(t_delete, t_del)
    return t_insert, t_delete


@pytest.mark.parametrize("n", [8, 16])
def test_apply_delta_insert(benchmark, n):
    mp, program, instance = materialize(n)
    fact = chord(n)

    def round_trip():
        mp.apply_delta(inserts=[("E", fact)])
        mp.apply_delta(deletes=[("E", fact)])
        return mp

    result = benchmark.pedantic(round_trip, rounds=2, iterations=1)
    assert result.stats.maintenance_fallbacks == 0
    assert result.supports.negative_symbols() == []


@pytest.mark.parametrize("n", [8])
def test_maintained_equals_fresh(n):
    mp, program, instance = materialize(n)
    mp.apply_delta(inserts=[("E", chord(n))])
    fresh_input = instance.copy()
    fresh_input.add_relation_member("E", chord(n))
    fresh = run_full(program, fresh_input)
    assert mp.instance.ground_facts() == fresh.full.ground_facts()


SMOKE_SIZES = [6, 10]


def main(sizes=None):
    rows = []
    series = {}
    for n in sizes or [8, 16, 24, 32]:
        mp, program, instance = materialize(n)
        t_insert, t_delete = timed_updates(mp, n)
        with_chord = instance.copy()
        with_chord.add_relation_member("E", chord(n))
        t_full = min(time_call(run_full, program, with_chord)[0] for _ in range(3))
        mp.apply_delta(inserts=[("E", chord(n))])
        agree = (
            mp.instance.ground_facts()
            == run_full(program, with_chord).full.ground_facts()
        )
        series[n] = t_insert
        rows.append(
            (
                n,
                len(mp.instance.relations["T"]),
                ms(t_full),
                ms(t_insert),
                ms(t_delete),
                f"{t_full / t_insert:.1f}×",
                f"{t_full / t_delete:.1f}×",
                f"{1 / t_insert:,.0f}",
                mp.stats.maintenance_fallbacks,
                "✓" if agree else "✗",
            )
        )
    print_series(
        "E20: live fixpoint maintenance — single-fact updates vs full "
        "re-evaluation (E19 workload)",
        ["n", "|T|", "full eval", "insert", "delete", "ins speedup",
         "del speedup", "inserts/sec", "fallbacks", "agree"],
        rows,
    )
    print(
        "  shape: on the complete closure the chord insert derives nothing\n"
        "  new, so maintenance cost is one delta-join of the single edge —\n"
        "  flat in n while full evaluation grows ~n³; the speedup column is\n"
        "  the ratio and must clear 20× at n=32. The delete pays DRed's\n"
        "  over-delete/re-derive plus counting decrements for every\n"
        "  chord-tainted derivation — on this total-taint workload that is\n"
        "  a few× a cold evaluation, the trichotomy's honest worst case."
    )
    return series


if __name__ == "__main__":
    main()
