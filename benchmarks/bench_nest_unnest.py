"""E3 — Example 3.4.1: nest/unnest throughput.

Claims measured: both directions are IQLrr and scale polynomially; nest
invents exactly one oid per key (grouping via invention, no dedicated
primitive).

Run standalone:  python benchmarks/bench_nest_unnest.py
"""

import pytest

from repro.iql import evaluate, evaluate_full, nest_program, unnest_program
from repro.schema import Instance
from repro.typesys import D
from repro.values import OSet, OTuple

from helpers import fit_loglog_slope, ms, print_series, time_call


def flat_instance(schema, keys, per_key):
    rows = [
        OTuple(A01=f"k{k}", A02=f"v{k}_{i}") for k in range(keys) for i in range(per_key)
    ]
    return Instance(schema, relations={"R2": rows})


def nested_instance(schema, keys, per_key):
    rows = [
        OTuple(A01=f"k{k}", A02=OSet(f"v{k}_{i}" for i in range(per_key)))
        for k in range(keys)
    ]
    return Instance(schema, relations={"R1": rows})


@pytest.mark.parametrize("keys", [8, 16])
def test_nest(benchmark, keys):
    program = nest_program("R2", "R3", D, D)
    instance = flat_instance(program.input_schema, keys, 4)
    result = benchmark.pedantic(
        lambda: evaluate_full(program, instance.copy()), rounds=2, iterations=1
    )
    assert result.stats.oids_invented == keys
    assert len(result.output.relations["R3"]) == keys


@pytest.mark.parametrize("keys", [8, 16])
def test_unnest(benchmark, keys):
    program = unnest_program("R1", "R2", D, D)
    instance = nested_instance(program.input_schema, keys, 4)
    out = benchmark.pedantic(
        lambda: evaluate(program, instance.copy()), rounds=2, iterations=1
    )
    assert len(out.relations["R2"]) == keys * 4


def main():
    rows = []
    sizes = [4, 8, 16, 32]
    times = []
    for keys in sizes:
        nest = nest_program("R2", "R3", D, D)
        instance = flat_instance(nest.input_schema, keys, 4)
        t_nest, full = time_call(evaluate_full, nest, instance)
        unnest = unnest_program("R1", "R2", D, D)
        n_inst = nested_instance(unnest.input_schema, keys, 4)
        t_unnest, out = time_call(evaluate, unnest, n_inst)
        times.append(t_nest)
        rows.append(
            (keys, keys * 4, ms(t_nest), full.stats.oids_invented, ms(t_unnest))
        )
    print_series(
        "E3: Example 3.4.1 — nest/unnest (4 values per key)",
        ["keys", "rows", "nest", "oids invented", "unnest"],
        rows,
    )
    print(f"  nest log-log slope ≈ {fit_loglog_slope(sizes, times):.2f} (polynomial; IQLrr)")
    return dict(zip(sizes, times))


if __name__ == "__main__":
    main()
