"""E22 — certified parallel execution: what the ParallelCertificate buys.

Two workloads, one per concurrency source the IQL8xx analysis certifies:

* **partitioned delta rounds** (E11-style): transitive closure of a
  4·n-node cycle — one recursive stratum, certified hash-partitionable,
  so each semi-naive round's delta is split round-robin across workers
  driving private kernel replicas,
* **concurrent strata** (E19-style): four independent transitive
  closures over disjoint relations — four rule-bearing SCCs with no
  cross-reads, certified into one width-4 batch and submitted to the
  pool together.

Both compare ``Evaluator(schedule=True, compile=True)`` (the serial
engine, the PR8 baseline) against ``Evaluator(parallel=N, compile=True)``
on BOTH driver backends — 4 worker threads, and 2/4 shared-nothing
worker processes (``backend="process"``) — asserting *exactly* equal
outputs on every point (invention-free programs; worker facts must
re-canonicalize into the coordinator's intern store bit-for-bit).

**Honest-host note.** Under the GIL, pure-Python kernels on a single
usable CPU cannot speed up on threads, and process workers additionally
pay pickling and IPC; the certificate's IQL804 width is an upper bound
the host then clips. On a ≥4-CPU host the thread claim (≥1.5× at the
largest n) and — on full-size sweeps — the process claim (≥2× over
serial at n = 32 on the better workload) are checked; on a single-CPU
host this module instead verifies overhead stays bounded (thread ≤ 3×,
process ≤ 3× serial at the largest full size) and reports the host
clip, so the recorded numbers say what they mean on every machine. The
process series is reported separately (run_all id ``E22p``) so
trajectory diffs never compare a thread point against a process point.

Run standalone:  python benchmarks/bench_parallel.py
"""

import gc
import os
import warnings

import pytest

from repro.analysis import build_parallel_certificate, validate_parallel_certificate
from repro.iql import Evaluator
from repro.parser.grammar import program_from_source
from repro.schema import Instance
from repro.values import OTuple

from helpers import ms, print_series, time_call

NODES_PER_N = 4  # cycle nodes per unit of n: n=32 → 128 nodes, |TC| = 16384

TC_PROGRAM = """
schema {
  relation E: [A1: D, A2: D];
  relation TC: [A1: D, A2: D];
}
var x, y, z: D
input E
output TC
rules {
  TC(x, y) :- E(x, y).
  TC(x, z) :- TC(x, y), E(y, z).
}
"""

STRATA_PROGRAM = """
schema {
  relation E1: [A1: D, A2: D];
  relation E2: [A1: D, A2: D];
  relation E3: [A1: D, A2: D];
  relation E4: [A1: D, A2: D];
  relation T1: [A1: D, A2: D];
  relation T2: [A1: D, A2: D];
  relation T3: [A1: D, A2: D];
  relation T4: [A1: D, A2: D];
}
var x, y, z: D
input E1, E2, E3, E4
output T1, T2, T3, T4
rules {
  T1(x, y) :- E1(x, y).
  T1(x, z) :- T1(x, y), E1(y, z).
  T2(x, y) :- E2(x, y).
  T2(x, z) :- T2(x, y), E2(y, z).
  T3(x, y) :- E3(x, y).
  T3(x, z) :- T3(x, y), E3(y, z).
  T4(x, y) :- E4(x, y).
  T4(x, z) :- T4(x, y), E4(y, z).
}
"""


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def setup_tc(n):
    """The partitioned-rounds workload: TC of a 4·n-node cycle."""
    program = program_from_source(TC_PROGRAM)
    nodes = NODES_PER_N * n
    instance = Instance(program.input_schema)
    for i in range(nodes):
        instance.add_relation_member(
            "E", OTuple(A1=f"n{i}", A2=f"n{(i + 1) % nodes}")
        )
    return program, instance, nodes * nodes


def setup_strata(n):
    """The concurrent-strata workload: four independent cycle closures."""
    program = program_from_source(STRATA_PROGRAM)
    nodes = NODES_PER_N * n // 2
    instance = Instance(program.input_schema)
    for k in range(1, 5):
        for i in range(nodes):
            instance.add_relation_member(
                f"E{k}", OTuple(A1=f"n{i}", A2=f"n{(i + 1) % nodes}")
            )
    return program, instance, 4 * nodes * nodes


def run_serial(program, instance):
    return Evaluator(program, schedule=True, compile=True).run(instance.copy())


def run_parallel(program, instance, workers, backend="thread"):
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a certified program must not warn
        evaluator = Evaluator(
            program, parallel=workers, compile=True, backend=backend
        )
        try:
            return evaluator.run(instance.copy())
        finally:
            evaluator.close()


def time_process_run(program, instance, workers):
    """Time a warm-pool process run.

    The pool is persistent per ``Evaluator`` — fork, program shipment and
    per-worker compilation happen once at pool creation, not per query —
    so the honest steady-state measurement warms the pool with one run
    and times the second. (The thread column keeps the PR9 cold-start
    methodology so the E22 trajectory stays comparable.)
    """
    # Forked workers inherit the sweep's whole heap copy-on-write; collect
    # first so the pool starts from a trim parent image (the workers
    # gc.freeze() the rest on entry).
    gc.collect()
    evaluator = Evaluator(
        program, parallel=workers, compile=True, backend="process"
    )
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            evaluator.run(instance.copy())  # warm: fork, ship, compile
            first = time_call(evaluator.run, instance.copy())
            second = time_call(evaluator.run, instance.copy())
            # best-of-2: a 1-CPU shared host stalls whole runs at random
            # (scheduler, page cache); the minimum is the honest estimate.
            return first if first[0] <= second[0] else second
    finally:
        evaluator.close()


def output_facts(result):
    return sum(len(v) for v in result.output.relations.values())


@pytest.mark.parametrize("n", [4, 8])
def test_partitioned_rounds(benchmark, n):
    program, instance, expected = setup_tc(n)
    result = benchmark.pedantic(
        lambda: run_parallel(program, instance, 4), rounds=2, iterations=1
    )
    assert output_facts(result) == expected
    assert result.stats.parallel_workers == 4


@pytest.mark.parametrize("n", [4, 8])
def test_concurrent_strata(benchmark, n):
    program, instance, expected = setup_strata(n)
    result = benchmark.pedantic(
        lambda: run_parallel(program, instance, 4), rounds=2, iterations=1
    )
    assert output_facts(result) == expected
    assert result.stats.parallel_strata >= 4


SMOKE_SIZES = [2, 4]

# main() times both backends in one sweep; the process series is cached
# here so run_all's "E22p" entry (main_process) reuses it instead of
# re-running the whole benchmark.
_PROCESS_SERIES = {}


def main(sizes=None):
    sizes = sizes or [8, 16, 24, 32]
    cpus = usable_cpus()
    rows = []
    series = {}
    proc_series = {}
    certified = True
    for n in sizes:
        for tag, setup in (("tc", setup_tc), ("4×tc", setup_strata)):
            program, instance, expected = setup(n)
            for backend in ("thread", "process"):
                certificate = build_parallel_certificate(program, backend=backend)
                certified = (
                    certified and certificate.certified and certificate.clean
                )
                assert not validate_parallel_certificate(program, certificate)
            t_serial, serial = time_call(run_serial, program, instance)
            t_par4, par4 = time_call(run_parallel, program, instance, 4)
            t_proc2, proc2 = time_process_run(program, instance, 2)
            t_proc4, proc4 = time_process_run(program, instance, 4)
            assert (
                serial.output == par4.output == proc2.output == proc4.output
            ), "worker facts must re-canonicalize to the serial output exactly"
            assert output_facts(serial) == expected
            assert proc4.stats.parallel_backend == "process"
            stats = par4.stats
            engaged = (
                f"{stats.parallel_partitioned} part"
                if stats.parallel_partitioned
                else f"{stats.parallel_strata} strata"
            )
            if tag == "tc":
                series[n] = t_par4
                proc_series[n] = t_proc4
            rows.append(
                (
                    n,
                    tag,
                    expected,
                    f"w{certificate.width}",
                    engaged,
                    ms(t_serial),
                    ms(t_par4),
                    ms(t_proc2),
                    ms(t_proc4),
                    f"{t_serial / t_par4:.2f}×",
                    f"{t_serial / t_proc4:.2f}×",
                )
            )
    print_series(
        "E22: certified parallel execution — serial vs thread/process workers",
        ["n", "load", "|out|", "cert", "engaged", "serial", "par=4",
         "proc=2", "proc=4", "thr×", "prc×"],
        rows,
    )
    assert certified, "both workloads must carry a clean ParallelCertificate"
    largest = rows[-2:]  # both workloads at the largest n
    if cpus >= 4:
        for row in largest:
            speedup = float(row[-2].rstrip("×"))
            assert speedup > 1.5, (
                f"{cpus} usable CPUs but only {speedup:.2f}× at n={row[0]}"
            )
        print(f"  host: {cpus} usable CPUs — ≥1.5× at n={sizes[-1]} verified")
    else:
        for row in largest:
            slowdown = 1.0 / float(row[-2].rstrip("×"))
            assert slowdown < 3.0, (
                f"parallel overhead unbounded: {slowdown:.2f}× slower at n={row[0]}"
            )
        print(
            f"  host: {cpus} usable CPU(s) — the GIL serializes the workers, so\n"
            f"  the certificate's width is clipped by the host; this run checks\n"
            f"  bounded overhead (<3×) and exact output equality instead of\n"
            f"  speedup. The IQL804 plan is the same either way."
        )
    # Process-backend claims are host-gated AND size-gated: shipping facts
    # over pipes only amortizes once round deltas are large, so the ≥2×
    # claim is asserted at full size (n ≥ 32) only, never on smoke sizes.
    if sizes[-1] >= 32:
        if cpus >= 4:
            best = max(float(row[-1].rstrip("×")) for row in largest)
            assert best >= 2.0, (
                f"{cpus} usable CPUs but best process speedup {best:.2f}× "
                f"at n={sizes[-1]} (claimed ≥2×)"
            )
            print(
                f"  host: {cpus} usable CPUs — process backend ≥2× at "
                f"n={sizes[-1]} verified"
            )
        else:
            for row in largest:
                overhead = 1.0 / float(row[-1].rstrip("×"))
                assert overhead < 3.0, (
                    f"process overhead unbounded: {overhead:.2f}× slower "
                    f"at n={row[0]}"
                )
            print(
                f"  host: {cpus} usable CPU(s) — process speedup is "
                f"unreachable here; verified bounded overhead (<3×) and "
                f"exact output equality instead."
            )
    print(
        "  shape: the TC stratum partitions its delta rounds (round-robin\n"
        "  fact split, per-worker kernel replicas, merge at the round\n"
        "  barrier); the 4×TC program runs its four independent strata as\n"
        "  one width-4 batch. The process backend runs the same plan on a\n"
        "  persistent shared-nothing worker pool: each worker interns into\n"
        "  its own store and the coordinator re-canonicalizes returned\n"
        "  wire batches. Outputs are asserted equal to the serial\n"
        "  scheduled+compiled engine on every size and both backends."
    )
    _PROCESS_SERIES.clear()
    _PROCESS_SERIES.update(proc_series)
    return series


def main_process(sizes=None):
    """The process-backend series (run_all id E22p).

    run_all invokes E22 (main) first in the same interpreter, which
    caches the process timings; re-run the sweep only if invoked alone.
    """
    if not _PROCESS_SERIES:
        main(sizes=sizes)
    return dict(_PROCESS_SERIES)


if __name__ == "__main__":
    main()
