"""E21 — cost-based planning: the skewed join the static heuristic loses.

The workload is the canonical optimizer trap::

    J(x, y) :- A(x), B(x, y), C(y).

with |A| = 10, |C| = 50, and |B| = 250·n rows whose first attribute is
*skewed* onto A's ten values (NDV(B.A1) = 10) while the second is unique
(NDV(B.A2) = |B|). The static ranks (index probe < small scan < large
scan, probes costed at full relation size) order this A → probe B on A1
→ filter C: every A row drags in a |B|/10-row skew bucket, so the join
does O(|B|) work however few rows survive the C filter. The cost model
prices the B probe at its estimated bucket (size/NDV = |B|/10 per probed
attribute) and the C scan at 50·est rows, orders A → C → probe B on
*both* attributes (the A2 side has bucket size 1), and does O(|A|·|C|)
work — independent of |B|.

Claims measured: identical outputs; the cost-based plan wins by a factor
that grows linearly with |B| (≥5× by n = 16 at 250 rows per n); the
planning overhead (a handful of NDV lookups per body) is invisible.

Run standalone:  python benchmarks/bench_planner.py
"""

import pytest

from repro.iql import Evaluator
from repro.parser.grammar import program_from_source
from repro.schema import Instance
from repro.values import OTuple

from helpers import ms, print_series, time_call

PROGRAM = """
schema {
  relation A: [A1: D];
  relation B: [A1: D, A2: D];
  relation C: [A1: D];
  relation J: [A1: D, A2: D];
}
var x, y: D
input A, B, C
output J
rules {
  J(x, y) :- A(x), B(x, y), C(y).
}
"""

SKEW = 10  # distinct B.A1 values (= |A|)
SELECTIVE = 50  # |C|: B.A2 values that survive the join
ROWS_PER_N = 250  # |B| per unit of n


def setup(n):
    """10 A-rows, 250·n skewed B-rows, 50 selective C-rows."""
    program = program_from_source(PROGRAM)
    instance = Instance(program.input_schema)
    for i in range(SKEW):
        instance.add_relation_member("A", OTuple(A1=f"s{i}"))
    for i in range(ROWS_PER_N * n):
        instance.add_relation_member("B", OTuple(A1=f"s{i % SKEW}", A2=f"v{i}"))
    for j in range(SELECTIVE):
        instance.add_relation_member("C", OTuple(A1=f"v{j}"))
    return program, instance


def run_static(program, instance):
    return Evaluator(program, cost_planning=False).run(instance.copy())


def run_costed(program, instance):
    return Evaluator(program).run(instance.copy())


def run_costed_compiled(program, instance):
    return Evaluator(program, compile=True).run(instance.copy())


@pytest.mark.parametrize("n", [4, 8])
def test_costed(benchmark, n):
    program, instance = setup(n)
    result = benchmark.pedantic(
        lambda: run_costed(program, instance), rounds=2, iterations=1
    )
    assert result.stats.plans_costed >= 1
    assert len(result.output.relations["J"]) == SELECTIVE


@pytest.mark.parametrize("n", [4, 8])
def test_static(benchmark, n):
    program, instance = setup(n)
    result = benchmark.pedantic(
        lambda: run_static(program, instance), rounds=2, iterations=1
    )
    assert result.stats.plans_costed == 0
    assert len(result.output.relations["J"]) == SELECTIVE


SMOKE_SIZES = [2, 4]


def main(sizes=None):
    rows = []
    series = {}
    for n in sizes or [8, 16, 24, 32]:
        program, instance = setup(n)
        t_static, static = time_call(run_static, program, instance)
        t_costed, costed = time_call(run_costed, program, instance)
        t_comp, comp = time_call(run_costed_compiled, program, instance)
        agree = static.output == costed.output == comp.output
        series[n] = t_costed
        rows.append(
            (
                n,
                ROWS_PER_N * n,
                len(costed.output.relations["J"]),
                ms(t_static),
                ms(t_costed),
                ms(t_comp),
                f"{t_static / t_costed:.1f}×",
                "✓" if agree else "✗",
            )
        )
    print_series(
        "E21: skewed join A ⋈ B ⋈ C — static ranks vs the cost model",
        ["n", "|B|", "|J|", "static", "cost-based", "cost+compile",
         "speedup", "agree"],
        rows,
    )
    print(
        "  shape: the static ranks probe B on its skewed attribute (bucket\n"
        "  |B|/10) before looking at the 50-row C, so their work grows with\n"
        "  |B|; the cost model sees NDV(B.A1) = 10 vs NDV(B.A2) = |B|, joins\n"
        "  C first, and probes B fully bound (bucket 1) — flat in |B|. Same\n"
        "  answers either way: join order never changes the solution set."
    )
    return series


if __name__ == "__main__":
    main()
