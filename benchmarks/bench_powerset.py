"""E4 — Example 3.4.2: the powerset, both ways.

Claims measured:
* output size is exactly 2^n — the operation the PTIME sublanguages must
  exclude,
* runtime grows exponentially for both programs (it must: the output is
  exponential), with the constructive (range-restricted) program paying an
  extra factor for its oid-per-subset-pair invention,
* the sublanguage classifier flags both programs as outside IQLrr.

Run standalone:  python benchmarks/bench_powerset.py
"""

import pytest

from repro.iql import classify, evaluate, evaluate_full
from repro.transform import (
    decode_powerset,
    powerset_input,
    powerset_restricted_program,
    powerset_unrestricted_program,
)

from helpers import ms, print_series, time_call


@pytest.mark.parametrize("n", [2, 4, 6])
def test_unrestricted(benchmark, n):
    program = powerset_unrestricted_program()
    instance = powerset_input([f"e{i}" for i in range(n)])
    out = benchmark.pedantic(
        lambda: evaluate(program, instance.copy()), rounds=3, iterations=1
    )
    assert len(decode_powerset(out)) == 2 ** n


@pytest.mark.parametrize("n", [2, 3])
def test_restricted(benchmark, n):
    program = powerset_restricted_program()
    instance = powerset_input([f"e{i}" for i in range(n)])
    out = benchmark.pedantic(
        lambda: evaluate(program, instance.copy()), rounds=2, iterations=1
    )
    assert len(decode_powerset(out)) == 2 ** n


def main():
    unrestricted = powerset_unrestricted_program()
    restricted = powerset_restricted_program()
    print(
        f"\nclassifier: unrestricted → {classify(unrestricted).summary()}"
        f"\nclassifier: restricted   → {classify(restricted).summary()}"
    )
    rows = []
    series = {}
    for n in range(1, 13):
        elements = [f"e{i}" for i in range(n)]
        t_u, out_u = time_call(evaluate, unrestricted, powerset_input(elements))
        series[n] = t_u
        if n <= 4:
            t_r, full_r = time_call(evaluate_full, restricted, powerset_input(elements))
            invented = full_r.stats.oids_invented
            t_r_text = ms(t_r)
        else:
            invented, t_r_text = "-", "(skipped: ≥18× per step)"
        rows.append((n, 2 ** n, ms(t_u), t_r_text, invented))
    print_series(
        "E4: Example 3.4.2 — powerset growth (exponential, by design)",
        ["|R|", "|2^R|", "unrestricted", "restricted", "oids invented"],
        rows,
    )
    print(
        "  adding one element to |R| roughly doubles (unrestricted) or\n"
        "  ~18×-es (restricted: oids grow as 4^n) the time — the exponential\n"
        "  that range-restriction + recursion-freedom exist to exclude."
    )
    return series


if __name__ == "__main__":
    main()
