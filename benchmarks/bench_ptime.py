"""E10 — Theorem 5.4: IQLpr/IQLrr programs have PTIME data complexity.

The experiment the theorem predicts: transitive closure (IQLrr) scales as
a polynomial in the input size — the fitted log-log slope is a stable
constant as n doubles — while the powerset program's time-vs-input curve
has ever-growing slope (exponential). The crossover is immediate and
dramatic: at n = 6 the powerset is already slower than TC at n = 32.

Run standalone:  python benchmarks/bench_ptime.py
"""

import pytest

from repro.datalog import database_to_instance, datalog_to_iql, transitive_closure_program
from repro.iql import classify, evaluate
from repro.transform import powerset_input, powerset_unrestricted_program
from repro.workloads import path_graph, random_graph, transitive_closure

from helpers import fit_loglog_slope, ms, print_series, time_call


def tc_setup(n):
    dprog = transitive_closure_program()
    program = datalog_to_iql(dprog)
    edges = random_graph(n, average_degree=1.5, seed=42)
    instance = database_to_instance(dprog, {"E": set(edges)}, names=dprog.edb)
    return program, instance, edges


@pytest.mark.parametrize("n", [8, 16])
def test_tc_scaling(benchmark, n):
    program, instance, edges = tc_setup(n)
    out = benchmark.pedantic(
        lambda: evaluate(program, instance.copy()), rounds=2, iterations=1
    )
    got = {(t["A01"], t["A02"]) for t in out.relations["T"]}
    assert got == transitive_closure(edges)


def test_powerset_blowup(benchmark):
    program = powerset_unrestricted_program()
    instance = powerset_input([f"e{i}" for i in range(6)])
    out = benchmark.pedantic(
        lambda: evaluate(program, instance.copy()), rounds=2, iterations=1
    )
    assert len(out.relations["R1"]) == 64


def main():
    print("\nclassifier: embedded TC →", classify(datalog_to_iql(transitive_closure_program())).summary())

    sizes = [8, 12, 16, 24, 32]
    times, fact_counts = [], []
    rows = []
    series = {}
    for n in sizes:
        program, instance, edges = tc_setup(n)
        elapsed, out = time_call(evaluate, program, instance)
        times.append(elapsed)
        series[n] = elapsed
        fact_counts.append(len(out.relations["T"]))
        rows.append((n, len(edges), len(out.relations["T"]), ms(elapsed)))
    print_series(
        "E10a: transitive closure in IQLrr (random graphs, avg degree 1.5)",
        ["nodes", "|E|", "|T|", "time"],
        rows,
    )
    slope = fit_loglog_slope(sizes, times)
    print(f"  fitted polynomial degree ≈ {slope:.2f} — stable: PTIME (Theorem 5.4) ✓")

    rows = []
    pow_program = powerset_unrestricted_program()
    pow_sizes, pow_times = [], []
    for n in range(6, 15):
        elapsed, out = time_call(
            evaluate, pow_program, powerset_input([f"e{i}" for i in range(n)])
        )
        pow_sizes.append(n)
        pow_times.append(elapsed)
        rows.append((n, 2 ** n, ms(elapsed)))
    print_series("E10b: the powerset escape hatch (full IQL)", ["|R|", "output", "time"], rows)
    ratios = [pow_times[i + 1] / pow_times[i] for i in range(len(pow_times) - 1)]
    print(
        "  successive-time ratios "
        + ", ".join(f"{r:.1f}×" for r in ratios)
        + " — growing: exponential, outside every PTIME fragment."
    )
    print(
        f"\n  shape summary: TC's degree stays ≈ constant as n doubles —\n"
        f"  polynomial; powerset's per-element ratio converges to 2× —\n"
        f"  exponential. At n=14 the powerset ({ms(pow_times[-1])}) overtakes\n"
        f"  TC on a 32-node graph ({ms(times[-1])}) despite the tiny input:\n"
        f"  14 constants versus 48 edge facts — the crossover Section 5 predicts."
    )
    return series


if __name__ == "__main__":
    main()
