"""E7/E8 — Figure 1 and copy elimination.

Claims measured:

* the copies program builds exactly two O-isomorphic quadrangles,
* `choose` (IQL+) selects one and the output matches Figure 1, with the
  genericity *verification* (automorphism-orbit computation) dominating
  the cost — the "not complicated but possibly expensive to check" the
  paper warns about; `trusted` mode shows the gap,
* meta-level copy elimination over k copies scales with the isomorphism
  checks (E8).

Run standalone:  python benchmarks/bench_quadrangle.py
"""

import pytest

from repro.iql import Evaluator, evaluate
from repro.schema import are_o_isomorphic
from repro.transform import (
    eliminate_copies,
    make_instance_with_copies,
    quadrangle_choose_program,
    quadrangle_copies_program,
    quadrangle_expected_output,
    quadrangle_input,
)

from helpers import ms, print_series, time_call


def test_copies(benchmark):
    program = quadrangle_copies_program()
    out = benchmark.pedantic(
        lambda: evaluate(program, quadrangle_input("a", "b")), rounds=3, iterations=1
    )
    assert len(out.classes["P_mark"]) == 2


def test_choose_verified(benchmark):
    program = quadrangle_choose_program()
    out = benchmark.pedantic(
        lambda: Evaluator(program, choose_mode="verify")
        .run(quadrangle_input("a", "b"))
        .output,
        rounds=2,
        iterations=1,
    )
    assert are_o_isomorphic(out, quadrangle_expected_output("a", "b"))


def test_choose_trusted(benchmark):
    program = quadrangle_choose_program()
    out = benchmark.pedantic(
        lambda: Evaluator(program, choose_mode="trusted")
        .run(quadrangle_input("a", "b"))
        .output,
        rounds=3,
        iterations=1,
    )
    assert are_o_isomorphic(out, quadrangle_expected_output("a", "b"))


@pytest.mark.parametrize("k", [2, 4, 8])
def test_copy_elimination(benchmark, k):
    from repro.schema import Instance, Schema
    from repro.typesys import D, classref, tuple_of
    from repro.values import Oid, OTuple

    schema = Schema(classes={"Doc": tuple_of(title=D, peer=classref("Doc"))})
    a, b = Oid(), Oid()
    original = Instance(
        schema,
        classes={"Doc": [a, b]},
        nu={a: OTuple(title="x", peer=b), b: OTuple(title="y", peer=a)},
    )
    i_bar = make_instance_with_copies(original, k)
    chosen = benchmark.pedantic(
        lambda: eliminate_copies(i_bar, schema), rounds=2, iterations=1
    )
    assert are_o_isomorphic(chosen, original)


def main():
    program_c = quadrangle_copies_program()
    t_copies, out = time_call(evaluate, program_c, quadrangle_input("a", "b"))

    program = quadrangle_choose_program()
    t_verify, out_v = time_call(
        lambda: Evaluator(program, choose_mode="verify")
        .run(quadrangle_input("a", "b"))
        .output
    )
    t_trusted, out_t = time_call(
        lambda: Evaluator(program, choose_mode="trusted")
        .run(quadrangle_input("a", "b"))
        .output
    )
    expected = quadrangle_expected_output("a", "b")
    print_series(
        "E7: Figure 1 — the quadrangle query",
        ["stage", "time", "matches Figure 1"],
        [
            ("copies only (plain IQL)", ms(t_copies), "n/a (two copies)"),
            ("choose, genericity verified", ms(t_verify), are_o_isomorphic(out_v, expected)),
            ("choose, trusted", ms(t_trusted), are_o_isomorphic(out_t, expected)),
        ],
    )
    print(
        f"  genericity verification costs {t_verify / t_trusted:.1f}× the trusted run —\n"
        "  the paper's 'not complicated but possibly expensive to check'."
    )

    from repro.schema import Instance, Schema
    from repro.typesys import D, classref, tuple_of
    from repro.values import Oid, OTuple

    schema = Schema(classes={"Doc": tuple_of(title=D, peer=classref("Doc"))})
    a, b = Oid(), Oid()
    original = Instance(
        schema,
        classes={"Doc": [a, b]},
        nu={a: OTuple(title="x", peer=b), b: OTuple(title="y", peer=a)},
    )
    rows = []
    series = {}
    for k in [2, 4, 8, 16]:
        i_bar = make_instance_with_copies(original, k)
        elapsed, chosen = time_call(eliminate_copies, i_bar, schema)
        series[k] = elapsed
        rows.append((k, len(i_bar.classes["Doc"]), ms(elapsed),
                     are_o_isomorphic(chosen, original)))
    print_series(
        "E8: meta-level copy elimination over k copies (Definition 4.2.3)",
        ["copies", "oids", "time", "correct"],
        rows,
    )
    return series


if __name__ == "__main__":
    main()
