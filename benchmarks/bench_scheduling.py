"""E19 — the certified schedule: strata vs the monolithic fixpoint.

The workload is a single *mixed* stage — exactly the shape the paper's
uniform rule language invites: a recursive transitive closure, a filter
joining the closure against itself, and a weak-assignment (★) rule
initializing object values from an input class::

    T(x, y) :- E(x, y).
    T(x, z) :- T(x, y), E(y, z).
    F(x, y) :- T(x, y), T(y, x).
    p^ = [] :- Seed(p).

The assignment head makes the whole stage ineligible for the semi-naive
rewriting, so the monolithic engine runs the naive loop: every one of
the ~n fixpoint steps re-solves *all four* rules against the full
instance. The dependency analysis (repro.analysis.depgraph) certifies a
three-stratum schedule — {T} (recursive), {F}, {^P} — and the scheduled
engine solves the T and F strata semi-naively and the assignment
stratum in two naive steps, none of which re-examines another stratum's
work.

Claims measured: identical outputs; the scheduled engine wins by a
factor that grows with n (it restores the semi-naive asymptotics the
assignment rule destroyed); the analysis overhead (one graph + schedule
per Evaluator) is a constant ~millisecond, invisible at every size.

Run standalone:  python benchmarks/bench_scheduling.py
"""

import pytest

from repro.iql import Evaluator
from repro.parser.grammar import program_from_source
from repro.schema import Instance
from repro.values import OTuple, Oid

from helpers import ms, print_series, time_call

PROGRAM = """
schema {
  relation E: [A1: D, A2: D];
  relation T: [A1: D, A2: D];
  relation F: [A1: D, A2: D];
  relation Seed: [A1: P];
  class P: [];
}
var x, y, z: D
var p: P
input E, Seed, P
output T, F, P
rules {
  T(x, y) :- E(x, y).
  T(x, z) :- T(x, y), E(y, z).
  F(x, y) :- T(x, y), T(y, x).
  p^ = [] :- Seed(p).
}
"""


def setup(n, objects=8):
    """A path graph 0→1→…→n-1 with a back edge, plus ``objects`` P-oids."""
    program = program_from_source(PROGRAM)
    instance = Instance(program.input_schema)
    for i in range(n - 1):
        instance.add_relation_member("E", OTuple(A1=f"n{i}", A2=f"n{i + 1}"))
    instance.add_relation_member("E", OTuple(A1=f"n{n - 1}", A2="n0"))
    for k in range(objects):
        oid = Oid(f"p{k}")
        instance.add_class_member("P", oid)
        instance.add_relation_member("Seed", OTuple(A1=oid))
    return program, instance


def run_monolithic(program, instance):
    return Evaluator(program).run(instance.copy())


def run_scheduled(program, instance):
    return Evaluator(program, schedule=True).run(instance.copy())


def run_scheduled_compiled(program, instance):
    return Evaluator(program, schedule=True, compile=True).run(instance.copy())


@pytest.mark.parametrize("n", [8, 16])
def test_scheduled(benchmark, n):
    program, instance = setup(n)
    result = benchmark.pedantic(
        lambda: run_scheduled(program, instance), rounds=2, iterations=1
    )
    assert result.stats.strata == 3


@pytest.mark.parametrize("n", [8, 16])
def test_scheduled_compiled(benchmark, n):
    program, instance = setup(n)
    result = benchmark.pedantic(
        lambda: run_scheduled_compiled(program, instance), rounds=2, iterations=1
    )
    assert result.stats.strata == 3
    assert result.stats.rules_compiled == 4


SMOKE_SIZES = [6, 10]


def main(sizes=None):
    rows = []
    series = {}
    for n in sizes or [8, 16, 24, 32]:
        program, instance = setup(n)
        t_mono, mono = time_call(run_monolithic, program, instance)
        t_sched, sched = time_call(run_scheduled, program, instance)
        t_comp, comp = time_call(run_scheduled_compiled, program, instance)
        agree = mono.output == sched.output == comp.output
        series[n] = t_comp
        rows.append(
            (
                n,
                len(mono.output.relations["T"]),
                ms(t_mono),
                ms(t_sched),
                ms(t_comp),
                f"{t_sched / t_comp:.1f}×",
                f"{t_mono / t_comp:.1f}×",
                comp.stats.strata,
                comp.stats.rules_compiled,
                "✓" if agree else "✗",
            )
        )
    print_series(
        "E19: mixed closure + filter + assignment stage — "
        "monolithic vs scheduled vs scheduled+compiled",
        ["n", "|T|", "monolithic", "scheduled", "sched+compile",
         "compile speedup", "total speedup", "strata", "compiled", "agree"],
        rows,
    )
    print(
        "  shape: the (★) assignment rule locks the monolithic engine out of\n"
        "  the semi-naive rewriting, so it pays ~n naive re-solves of every\n"
        "  rule; the certified schedule isolates the assignment in its own\n"
        "  stratum and restores semi-naive evaluation for the closure and the\n"
        "  filter — a speedup that grows with n, for the price of one\n"
        "  dependency analysis per program. Compiling the planned bodies into\n"
        "  closure kernels (--compile) multiplies in a further constant\n"
        "  factor; the filter stratum F(x,y) :- T(x,y), T(y,x) gains most —\n"
        "  its fully-bound membership check becomes one hash lookup against\n"
        "  the captured T extension."
    )
    return series


if __name__ == "__main__":
    main()
