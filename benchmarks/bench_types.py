"""E14 — Propositions 2.2.1/6.1: type reduction, and the enumeration costs
that motivate range-restriction.

Claims measured: intersection reduction/elimination is fast and
interpretation-preserving on deep random types; restricted type
interpretations grow combinatorially with nesting (count_type shows the
search space the evaluator would face — the quantitative case for
Definition 5.2).

Run standalone:  python benchmarks/bench_types.py
"""

import random

import pytest

from repro.typesys import (
    D,
    EMPTY,
    classref,
    count_type,
    enumerate_type,
    equivalent_on_samples,
    intersection,
    intersection_free,
    intersection_reduced,
    set_of,
    tuple_of,
    union,
)
from repro.values import Oid

from helpers import ms, print_series, time_call


def random_type(depth, rng):
    if depth == 0:
        return rng.choice([D, classref("P1"), classref("P2"), EMPTY])
    kind = rng.randrange(4)
    if kind == 0:
        return set_of(random_type(depth - 1, rng))
    if kind == 1:
        return tuple_of(
            {f"A{i}": random_type(depth - 1, rng) for i in range(rng.randint(1, 3))}
        )
    if kind == 2:
        return union(random_type(depth - 1, rng), random_type(depth - 1, rng))
    return intersection(random_type(depth - 1, rng), random_type(depth - 1, rng))


@pytest.mark.parametrize("depth", [4, 6])
def test_reduction(benchmark, depth):
    rng = random.Random(depth)
    types = [random_type(depth, rng) for _ in range(50)]
    reduced = benchmark(lambda: [intersection_free(t) for t in types])
    assert all(t.is_intersection_free() for t in reduced)


def test_enumeration(benchmark):
    t = tuple_of(a=set_of(D), b=union(D, classref("P1")))
    pi = {"P1": {Oid(), Oid()}}
    out = benchmark(lambda: enumerate_type(t, ["x", "y", "z"], pi))
    assert len(out) == 8 * 5  # 2^3 subsets × (3 constants + 2 oids)


def main():
    rng = random.Random(7)
    pi = {"P1": {Oid(), Oid()}, "P2": {Oid()}}
    rows = []
    series = {}
    for depth in [3, 4, 5, 6]:
        types = [random_type(depth, rng) for _ in range(100)]
        elapsed, reduced = time_call(lambda types=types: [intersection_free(t) for t in types])
        series[depth] = elapsed
        preserved = all(
            equivalent_on_samples(t, r, pi) for t, r in zip(types[:20], reduced[:20])
        )
        rows.append((depth, 100, ms(elapsed), preserved))
    print_series(
        "E14a: intersection elimination on random types",
        ["depth", "types", "time", "interpretation preserved (sampled)"],
        rows,
    )

    rows = []
    for nesting in range(1, 5):
        t = D
        for _ in range(nesting):
            t = set_of(t)
        size = count_type(t, frozenset(["a", "b", "c"]), {})
        shown = f"≥10^12 (capped)" if size >= 10**12 else size
        rows.append((nesting, f"{{{'{' * (nesting - 1)}D{'}' * (nesting - 1)}}}", shown))
    print_series(
        "E14b: |⟦t⟧ restricted to 3 constants| — the space unrestricted "
        "variables search",
        ["set nesting", "type", "members"],
        rows,
    )
    print(
        "  one more {·} tower level super-exponentiates the space: this is\n"
        "  the quantitative argument for range-restriction (Definition 5.2)."
    )
    return series


if __name__ == "__main__":
    main()
