"""E5 — Example 3.4.3: union-type elimination round trip.

Claims measured: encode → decode is lossless (O-isomorphic) at every size,
and both directions scale polynomially.

Run standalone:  python benchmarks/bench_union_encoding.py
"""

import random

import pytest

from repro.iql import evaluate
from repro.schema import Instance, are_o_isomorphic
from repro.transform import (
    union_decode_program,
    union_encode_program,
    union_instance,
    union_schemas,
)

from helpers import ms, print_series, time_call


def random_links(n, seed=0):
    rng = random.Random(seed)
    names = [f"o{i}" for i in range(n)]
    links = {}
    for name in names:
        kind = rng.randrange(3)
        if kind == 0:
            links[name] = rng.choice(names)
        elif kind == 1:
            links[name] = (rng.choice(names), rng.choice(names))
        else:
            links[name] = None
    return links


def rename_decoded(decoded):
    s, _ = union_schemas()
    renamed = Instance(s)
    for oid in decoded.classes["P_dec"]:
        renamed.add_class_member("P", oid)
    renamed.nu.update(decoded.nu)
    return renamed


@pytest.mark.parametrize("n", [4, 8])
def test_round_trip(benchmark, n):
    original = union_instance(random_links(n, seed=n))
    encode, decode = union_encode_program(), union_decode_program()

    def round_trip():
        return rename_decoded(evaluate(decode, evaluate(encode, original.copy())))

    renamed = benchmark.pedantic(round_trip, rounds=2, iterations=1)
    assert are_o_isomorphic(original, renamed)


def main():
    encode, decode = union_encode_program(), union_decode_program()
    rows = []
    series = {}
    for n in [4, 8, 12, 16]:
        original = union_instance(random_links(n, seed=n))
        t_enc, encoded = time_call(evaluate, encode, original)
        t_dec, decoded = time_call(evaluate, decode, encoded)
        lossless = are_o_isomorphic(original, rename_decoded(decoded))
        series[n] = t_enc
        rows.append((n, ms(t_enc), ms(t_dec), lossless))
    print_series(
        "E5: Example 3.4.3 — union-type elimination (random instances)",
        ["objects", "encode", "decode", "lossless"],
        rows,
    )
    print("  'no information is lost when using the first program' ✓")
    return series


if __name__ == "__main__":
    main()
