"""E13 — Section 7: φ/ψ and bisimulation minimization at scale.

Claims measured: ψ (objects → regular trees, with duplicate elimination by
partition refinement) and φ (values → objects) scale near-linearly in the
number of objects; the ψ(φ(I)) = I round trip holds at every size; a ring
of k duplicated person-chains collapses k-fold.

Run standalone:  python benchmarks/bench_valuebased.py
"""

import pytest

from repro.schema import Instance, Schema
from repro.typesys import D, classref, tuple_of
from repro.valuebased import phi, psi
from repro.values import Oid, OTuple

from helpers import fit_loglog_slope, ms, print_series, time_call


def ring_instance(n, copies=1):
    """``copies`` structurally identical rings of n persons each: ψ must
    collapse them to n distinct pure values."""
    schema = Schema(classes={"Person": tuple_of(name=D, next_=classref("Person"))})
    instance = Instance(schema)
    for c in range(copies):
        oids = [Oid(f"r{c}_{i}") for i in range(n)]
        for o in oids:
            instance.add_class_member("Person", o)
        for i, o in enumerate(oids):
            instance.assign(o, OTuple(name=f"p{i}", next_=oids[(i + 1) % n]))
    return instance


@pytest.mark.parametrize("n", [16, 64])
def test_psi(benchmark, n):
    instance = ring_instance(n)
    vinstance = benchmark.pedantic(lambda: psi(instance), rounds=3, iterations=1)
    assert len(vinstance.assignment["Person"]) == n


@pytest.mark.parametrize("n", [16, 64])
def test_round_trip(benchmark, n):
    instance = ring_instance(n)
    vinstance = psi(instance)

    def round_trip():
        return psi(phi(vinstance))

    back = benchmark.pedantic(round_trip, rounds=2, iterations=1)
    assert back == vinstance


def test_duplicate_collapse(benchmark):
    instance = ring_instance(8, copies=4)
    vinstance = benchmark.pedantic(lambda: psi(instance), rounds=3, iterations=1)
    assert len(vinstance.canonical_assignment()["Person"]) == 8


def main():
    rows = []
    sizes = [16, 32, 64, 128]
    times = []
    series = {}
    for n in sizes:
        instance = ring_instance(n)
        t_psi, vinstance = time_call(psi, instance)
        series[n] = t_psi
        t_phi, obj = time_call(phi, vinstance)
        ok = psi(obj) == vinstance
        times.append(t_psi)
        rows.append((n, ms(t_psi), ms(t_phi), ok))
    print_series(
        "E13a: rings of n persons — ψ, φ, and Proposition 7.1.4",
        ["objects", "ψ", "φ", "ψ(φ(I)) = I"],
        rows,
    )
    print(f"  ψ log-log slope ≈ {fit_loglog_slope(sizes, times):.2f}")

    rows = []
    for copies in [1, 2, 4, 8]:
        instance = ring_instance(8, copies=copies)
        t, vinstance = time_call(psi, instance)
        rows.append(
            (
                copies,
                8 * copies,
                len(vinstance.canonical_assignment()["Person"]),
                ms(t),
            )
        )
    print_series(
        "E13b: duplicate elimination by bisimilarity (8-rings × k copies)",
        ["copies", "oids", "distinct values", "ψ"],
        rows,
    )
    print("  the value-based view collapses copies for free — the reason IQLv\n"
          "  is vdio-complete without choose (Theorem 7.1.5).")
    return series


if __name__ == "__main__":
    main()
