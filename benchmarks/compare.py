"""Diff two benchmark trajectory files (BENCH_*.json) and flag regressions.

The trajectory files are what ``run_all.py --json`` writes:
``{experiment: {size: seconds}}``. This tool compares the series point by
point over the keys both files share::

    python benchmarks/compare.py BENCH_PR2.json BENCH_PR3.json
    python benchmarks/compare.py OLD.json NEW.json --threshold 2.0
    python benchmarks/compare.py OLD.json NEW.json --warn-only   # CI guard

Speedup is old/new: >1 means the new run is faster. A point regresses when
``new > threshold * old``; any regression makes the exit status 1 unless
``--warn-only`` (the CI bench-smoke job runs warn-only — a noisy shared
runner should flag, not fail).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple


def load_trajectory(path: str) -> Dict[str, Dict[str, float]]:
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected {{experiment: {{size: seconds}}}}")
    return data


def _size_key(size: str):
    try:
        return (0, float(size))
    except ValueError:
        return (1, size)


def compare(
    old: Dict[str, Dict[str, float]],
    new: Dict[str, Dict[str, float]],
    threshold: float,
) -> Tuple[List[Tuple[str, str, float, float, float]], List[Tuple[str, str, float]]]:
    """Point-by-point comparison over the shared (experiment, size) keys.

    Returns (rows, regressions); each row is (experiment, size, old_s,
    new_s, speedup) with speedup = old/new.
    """
    rows = []
    regressions = []
    for exp in sorted(set(old) & set(new)):
        shared = set(old[exp]) & set(new[exp])
        for size in sorted(shared, key=_size_key):
            old_s, new_s = old[exp][size], new[exp][size]
            speedup = old_s / new_s if new_s else float("inf")
            rows.append((exp, size, old_s, new_s, speedup))
            if new_s > threshold * old_s:
                regressions.append((exp, size, speedup))
    return rows, regressions


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", help="baseline trajectory json")
    parser.add_argument("new", help="candidate trajectory json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="a point regresses when new > threshold * old (default 1.5)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (for noisy CI runners)",
    )
    args = parser.parse_args(argv)

    old = load_trajectory(args.old)
    new = load_trajectory(args.new)
    rows, regressions = compare(old, new, args.threshold)
    if not rows:
        print("no overlapping (experiment, size) points to compare", file=sys.stderr)
        return 0 if args.warn_only else 1

    print(f"{'experiment':<12}{'size':>8}{'old':>12}{'new':>12}{'speedup':>10}")
    for exp, size, old_s, new_s, speedup in rows:
        flag = "  <-- regression" if new_s > args.threshold * old_s else ""
        print(
            f"{exp:<12}{size:>8}{old_s * 1000:>10.1f}ms{new_s * 1000:>10.1f}ms"
            f"{speedup:>9.2f}x{flag}"
        )

    if regressions:
        label = "warning" if args.warn_only else "FAIL"
        print(
            f"\n{label}: {len(regressions)} point(s) slowed past "
            f"{args.threshold:.2f}x: "
            + ", ".join(f"{exp}[{size}] ({s:.2f}x)" for exp, size, s in regressions),
            file=sys.stderr,
        )
        return 0 if args.warn_only else 1
    print(f"\nok: no point slowed past {args.threshold:.2f}x", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
