"""Diff two benchmark trajectory files (BENCH_*.json) and flag regressions.

The trajectory files are what ``run_all.py --json`` writes:
``{experiment: {size: seconds}}``. This tool compares the series point by
point over the keys both files share::

    python benchmarks/compare.py BENCH_PR2.json BENCH_PR3.json
    python benchmarks/compare.py BENCH_SMOKE.json            # auto baseline
    python benchmarks/compare.py OLD.json NEW.json --threshold 2.0
    python benchmarks/compare.py OLD.json NEW.json --warn-only   # CI guard

With a single file argument the baseline is auto-selected: the
``BENCH_PR<n>.json`` with the highest ``n`` next to the candidate (the
candidate itself excluded), so CI never hardcodes the previous PR's
filename. The chosen baseline is always printed.

Speedup is old/new: >1 means the new run is faster. A point regresses when
``new > threshold * old``; any regression makes the exit status 1 unless
``--warn-only`` (the CI bench-smoke job runs warn-only — a noisy shared
runner should flag, not fail).

Keys starting with ``__`` are metadata, not series — ``run_all.py`` writes
``__host__`` (usable CPU count, host-gated backends). When both files carry
host metadata and the CPU counts differ, host-gated experiments (the
parallel-execution series, whose numbers scale with usable CPUs) are
skipped with a note instead of producing spurious regression warnings —
e.g. a 1-CPU CI runner diffed against a 4-CPU baseline host.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import Dict, List, Optional, Tuple


def load_trajectory(path: str) -> Dict[str, Dict[str, float]]:
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected {{experiment: {{size: seconds}}}}")
    return data


def _size_key(size: str):
    try:
        return (0, float(size))
    except ValueError:
        return (1, size)


def compare(
    old: Dict[str, Dict[str, float]],
    new: Dict[str, Dict[str, float]],
    threshold: float,
) -> Tuple[List[Tuple[str, str, float, float, float]], List[Tuple[str, str, float]]]:
    """Point-by-point comparison over the shared (experiment, size) keys.

    Returns (rows, regressions); each row is (experiment, size, old_s,
    new_s, speedup) with speedup = old/new.
    """
    rows = []
    regressions = []
    for exp in sorted(set(old) & set(new)):
        if exp.startswith("__"):  # metadata, not a series
            continue
        shared = set(old[exp]) & set(new[exp])
        for size in sorted(shared, key=_size_key):
            old_s, new_s = old[exp][size], new[exp][size]
            speedup = old_s / new_s if new_s else float("inf")
            rows.append((exp, size, old_s, new_s, speedup))
            if new_s > threshold * old_s:
                regressions.append((exp, size, speedup))
    return rows, regressions


def skip_host_gated(
    old: Dict[str, Dict[str, float]],
    new: Dict[str, Dict[str, float]],
) -> List[str]:
    """Drop host-gated series when the two hosts are not comparable.

    A series is host-gated when either file's ``__host__.backend`` names
    it (run_all records E22/E22p there). Points are dropped — mutating
    ``old``/``new`` in place — only when both files carry a ``__host__``
    with a ``cpu_count`` and the counts differ; trajectories from the
    same host, or legacy files without metadata, compare as before.
    Returns the sorted experiment ids that were skipped.
    """
    old_host = old.get("__host__") or {}
    new_host = new.get("__host__") or {}
    old_cpus = old_host.get("cpu_count")
    new_cpus = new_host.get("cpu_count")
    if old_cpus is None or new_cpus is None or old_cpus == new_cpus:
        return []
    gated = set(old_host.get("backend") or {}) | set(new_host.get("backend") or {})
    skipped = sorted(exp for exp in gated if exp in old and exp in new)
    for exp in skipped:
        old.pop(exp, None)
        new.pop(exp, None)
    return skipped


_PR_FILE = re.compile(r"^BENCH_PR(\d+)\.json$")


def newest_baseline(candidate: str) -> Optional[str]:
    """The ``BENCH_PR<n>.json`` with the highest n beside ``candidate``.

    The candidate file itself is excluded, so comparing a freshly
    regenerated ``BENCH_PR5.json`` auto-selects ``BENCH_PR4.json``.
    """
    directory = os.path.dirname(os.path.abspath(candidate))
    best: Optional[Tuple[int, str]] = None
    for entry in os.listdir(directory):
        match = _PR_FILE.match(entry)
        if not match:
            continue
        path = os.path.join(directory, entry)
        if os.path.abspath(candidate) == path:
            continue
        key = (int(match.group(1)), path)
        if best is None or key > best:
            best = key
    return best[1] if best else None


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files",
        nargs="+",
        metavar="TRAJECTORY",
        help="OLD.json NEW.json, or just NEW.json to auto-select the "
        "newest BENCH_PR*.json beside it as the baseline",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="a point regresses when new > threshold * old (default 1.5)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (for noisy CI runners)",
    )
    args = parser.parse_args(argv)

    if len(args.files) == 2:
        old_path, new_path = args.files
        print(f"baseline: {old_path}", file=sys.stderr)
    elif len(args.files) == 1:
        new_path = args.files[0]
        old_path = newest_baseline(new_path)
        if old_path is None:
            print(
                f"error: no BENCH_PR*.json baseline found beside {new_path}",
                file=sys.stderr,
            )
            return 0 if args.warn_only else 1
        print(f"baseline: {old_path} (auto-selected)", file=sys.stderr)
    else:
        parser.error("expected OLD.json NEW.json or just NEW.json")

    old = load_trajectory(old_path)
    new = load_trajectory(new_path)
    skipped = skip_host_gated(old, new)
    if skipped:
        print(
            "note: skipping host-gated experiment(s) "
            + ", ".join(skipped)
            + " — the two trajectories were recorded on hosts with "
            "different usable CPU counts",
            file=sys.stderr,
        )
    rows, regressions = compare(old, new, args.threshold)
    if not rows:
        print("no overlapping (experiment, size) points to compare", file=sys.stderr)
        return 0 if args.warn_only else 1

    print(f"{'experiment':<12}{'size':>8}{'old':>12}{'new':>12}{'speedup':>10}")
    for exp, size, old_s, new_s, speedup in rows:
        flag = "  <-- regression" if new_s > args.threshold * old_s else ""
        print(
            f"{exp:<12}{size:>8}{old_s * 1000:>10.1f}ms{new_s * 1000:>10.1f}ms"
            f"{speedup:>9.2f}x{flag}"
        )

    if regressions:
        label = "warning" if args.warn_only else "FAIL"
        print(
            f"\n{label}: {len(regressions)} point(s) slowed past "
            f"{args.threshold:.2f}x: "
            + ", ".join(f"{exp}[{size}] ({s:.2f}x)" for exp, size, s in regressions),
            file=sys.stderr,
        )
        return 0 if args.warn_only else 1
    print(f"\nok: no point slowed past {args.threshold:.2f}x", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
