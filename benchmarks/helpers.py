"""Shared helpers for the benchmark harness.

Every benchmark module in this directory corresponds to one experiment of
DESIGN.md's index (E1-E15) and offers two entry points:

* pytest-benchmark tests (``pytest benchmarks/ --benchmark-only``) for
  timing single configurations,
* a ``main()`` that sweeps the experiment's parameter range and prints the
  paper-style series (growth shapes, who-wins factors) — these outputs are
  recorded in EXPERIMENTS.md.

The absolute numbers are a pure-Python naive evaluator's, not the paper's
(the paper has no measured numbers at all — it is a theory paper); what
the benchmarks validate are the *shapes* the theorems predict: polynomial
scaling for IQLpr/IQLrr (Theorem 5.4), exponential blowup for powerset
(Example 3.4.2), constant small factors for the embeddings.
"""

from __future__ import annotations

import gc
import math
import time
from typing import Callable, List, Sequence, Tuple

from repro.iql import columns
from repro.schema import Instance, Schema
from repro.typesys import D
from repro.values import OTuple


def edge_instance(schema: Schema, edges) -> Instance:
    return Instance(
        schema.project(["E"]),
        relations={"E": [OTuple(A01=a, A02=b) for a, b in edges]},
    )


def time_call(fn: Callable, *args, **kwargs) -> Tuple[float, object]:
    """Time one call with the cyclic collector paused (as ``timeit`` does).

    Earlier experiments in a sweep leave cyclic garbage; without the pause
    a full collection can land inside an unrelated timed region and charge
    it for tens of thousands of weakref callbacks. Refcount-driven frees
    (the common case) still happen during the call."""
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return elapsed, result


def fit_loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x) — the empirical
    polynomial degree. A PTIME claim predicts a modest constant; an
    exponential blowup shows as a slope that grows with x."""
    pts = [(math.log(x), math.log(y)) for x, y in zip(xs, ys) if y > 0]
    n = len(pts)
    if n < 2:
        return float("nan")
    mean_x = sum(p[0] for p in pts) / n
    mean_y = sum(p[1] for p in pts) / n
    num = sum((px - mean_x) * (py - mean_y) for px, py in pts)
    den = sum((px - mean_x) ** 2 for px, py in pts)
    return num / den if den else float("nan")


def print_series(title: str, header: Sequence[str], rows: Sequence[Sequence]) -> None:
    print(f"\n## {title}")
    widths = [max(len(str(h)), max((len(str(r[i])) for r in rows), default=0)) for i, h in enumerate(header)]
    print("  " + " | ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    print("  " + "-+-".join("-" * w for w in widths))
    for row in rows:
        print("  " + " | ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}ms"
