"""Run every experiment sweep and print the consolidated report.

This regenerates the tables recorded in EXPERIMENTS.md::

    python benchmarks/run_all.py                      # everything (~2-4 minutes)
    python benchmarks/run_all.py E2 E10               # a subset by experiment id
    python benchmarks/run_all.py --json BENCH.json    # + machine-readable trajectory
    python benchmarks/run_all.py --smoke E2 E11       # CI-sized sweeps (<60s)

Each module's ``main()`` returns its primary series as ``{size: seconds}``;
``--json`` collects those into ``{experiment: {size: seconds}}`` so runs can
be diffed across commits (the BENCH_PR*.json trajectory files at the repo
root). ``--smoke`` asks modules that define ``SMOKE_SIZES`` to sweep only
those sizes — small enough for a CI smoke job.
"""

from __future__ import annotations

import argparse
import gc
import importlib
import json
import os
import sys
import time

#: experiment id → bench entry point, as ``module`` or ``module:function``
#: (default function: ``main``). Two ids may share a module when one sweep
#: produces two series (E22/E22p: thread vs process backend).
EXPERIMENTS = {
    "E1": "bench_instances",
    "E1b": "bench_isomorphism",
    "E2": "bench_graph_encoding",
    "E3": "bench_nest_unnest",
    "E4": "bench_powerset",
    "E5": "bench_union_encoding",
    "E6": "bench_determinacy",
    "E7": "bench_quadrangle",
    "E9": "bench_deletion",
    "E10": "bench_ptime",
    "E11": "bench_datalog",
    "E12": "bench_inheritance",
    "E13": "bench_valuebased",
    "E14": "bench_types",
    "E16": "bench_algebra",
    "E19": "bench_scheduling",
    "E20": "bench_ivm",
    "E21": "bench_planner",
    "E22": "bench_parallel",
    "E22p": "bench_parallel:main_process",
}

#: Host-gated experiments and the executor backend their series records.
#: Their numbers scale with the host's usable CPUs, so compare.py skips
#: them across hosts with different CPU counts instead of warning
#: spuriously (e.g. a 1-CPU CI runner diffed against a 4-CPU dev box).
HOST_GATED_BACKENDS = {"E22": "thread", "E22p": "process"}


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    parser.add_argument(
        "--json", metavar="PATH", help="write {experiment: {size: seconds}} here"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="use each module's SMOKE_SIZES (CI-sized sweeps)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="sweep N times and keep the point-wise minimum — the standard "
        "noise-robust estimator for a shared machine (default 1)",
    )
    args = parser.parse_args(argv)
    selected = set(args.experiments) if args.experiments else set(EXPERIMENTS)
    unknown = selected - set(EXPERIMENTS)
    if unknown:
        print(f"unknown experiment ids: {sorted(unknown)}", file=sys.stderr)
        return 1
    started = time.perf_counter()
    trajectory = {}
    for _round in range(max(1, args.repeat)):
        for exp_id, module_name in EXPERIMENTS.items():
            if exp_id not in selected:
                continue
            print(f"\n{'=' * 72}\n{exp_id}: {module_name}\n{'=' * 72}")
            # Experiments leave cyclic garbage (instances reference their
            # indexes and vice versa) that would otherwise be collected
            # inside a *later* experiment's timed region. Collect at the
            # boundary so each sweep starts with a clean heap.
            gc.collect()
            module_name, _, func_name = module_name.partition(":")
            module = importlib.import_module(module_name)
            entry = getattr(module, func_name or "main")
            if args.smoke and hasattr(module, "SMOKE_SIZES"):
                series = entry(sizes=module.SMOKE_SIZES)
            else:
                series = entry()
            merged = trajectory.setdefault(exp_id, {})
            for k, v in (series or {}).items():
                key = str(k)
                if key not in merged or v < merged[key]:
                    merged[key] = v
    print(f"\ntotal: {time.perf_counter() - started:.1f}s")
    if args.json:
        payload = dict(trajectory)
        # "__"-prefixed keys are metadata, not experiment series; compare.py
        # uses them to skip host-gated points across dissimilar hosts.
        payload["__host__"] = {
            "cpu_count": usable_cpus(),
            "backend": HOST_GATED_BACKENDS,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"trajectory written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, __file__.rsplit("/", 1)[0])
    sys.exit(main(sys.argv[1:]))
