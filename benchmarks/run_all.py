"""Run every experiment sweep and print the consolidated report.

This regenerates the tables recorded in EXPERIMENTS.md::

    python benchmarks/run_all.py            # everything (~2-4 minutes)
    python benchmarks/run_all.py E2 E10     # a subset by experiment id
"""

from __future__ import annotations

import importlib
import sys
import time

#: experiment id → bench module (one main() per module).
EXPERIMENTS = {
    "E1": "bench_instances",
    "E2": "bench_graph_encoding",
    "E3": "bench_nest_unnest",
    "E4": "bench_powerset",
    "E5": "bench_union_encoding",
    "E6": "bench_determinacy",
    "E7": "bench_quadrangle",
    "E9": "bench_deletion",
    "E10": "bench_ptime",
    "E11": "bench_datalog",
    "E12": "bench_inheritance",
    "E13": "bench_valuebased",
    "E14": "bench_types",
    "E16": "bench_algebra",
}


def main(argv) -> int:
    selected = set(argv) if argv else set(EXPERIMENTS)
    unknown = selected - set(EXPERIMENTS)
    if unknown:
        print(f"unknown experiment ids: {sorted(unknown)}", file=sys.stderr)
        return 1
    started = time.perf_counter()
    for exp_id, module_name in EXPERIMENTS.items():
        if exp_id not in selected:
            continue
        print(f"\n{'=' * 72}\n{exp_id}: {module_name}\n{'=' * 72}")
        module = importlib.import_module(module_name)
        module.main()
    print(f"\ntotal: {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, __file__.rsplit("/", 1)[0])
    sys.exit(main(sys.argv[1:]))
