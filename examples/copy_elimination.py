"""Copy elimination and the hen-and-egg query (Sections 4.2-4.4).

The deepest result of the paper, runnable end to end:

1. IQL computes every db-transformation *up to copy* (Theorem 4.2.4):
   we run the Figure-1 quadrangle construction and get two indistinguishable
   copies of the answer.
2. Selecting one copy is NOT expressible in IQL (Theorem 4.3.1): the two
   copies are exchanged by an automorphism of the result, and a generic,
   determinate language cannot break such a tie. We exhibit the
   automorphism.
3. IQL+ ``choose`` restores completeness (Theorem 4.4.1): one copy is
   selected — legally, because the candidates form a single orbit — and
   re-emitted into the output schema. The result matches Figure 1 exactly,
   up to renaming of oids.

Run:  python examples/copy_elimination.py
"""

from repro import evaluate, typecheck_program
from repro.errors import GenericityError
from repro.schema import are_o_isomorphic, automorphisms
from repro.transform import (
    copies_in_output,
    eliminate_copies,
    make_instance_with_copies,
    is_instance_with_copies,
    quadrangle_choose_program,
    quadrangle_copies_program,
    quadrangle_expected_output,
    quadrangle_input,
)


def step1_copies():
    print("=" * 64)
    print("1. Plain IQL: the quadrangle, up to copy (Theorem 4.2.4)")
    print("=" * 64)
    program = typecheck_program(quadrangle_copies_program())
    output = evaluate(program, quadrangle_input("a", "b"))
    print(f"copies produced: {copies_in_output(output)}")
    print(f"corner objects:  {len(output.classes['P_cand'])}")
    print(f"tagged edges:    {len(output.relations['R_copy'])}")
    print()
    return output


def step2_inexpressibility(output):
    print("=" * 64)
    print("2. Why IQL cannot pick one (Theorem 4.3.1)")
    print("=" * 64)
    markers = sorted(output.classes["P_mark"])
    swapping = [
        auto for auto in automorphisms(output) if auto.get(markers[0]) == markers[1]
    ]
    print(
        f"the result has {len(list(automorphisms(output)))} automorphisms, "
        f"{len(swapping)} of which exchange the two copies."
    )
    print(
        "Any IQL program is generic and determinate (Theorem 4.1.3); an\n"
        "output preferring one copy over the other would be moved off\n"
        "itself by the exchanging automorphism — contradiction. This is\n"
        "the hen-and-egg of Figure 1: the corners must all be created at\n"
        "the same instant, and no generic rule can orient the tie-break.\n"
    )


def step3_choose():
    print("=" * 64)
    print("3. IQL+ choose completes the query (Theorem 4.4.1)")
    print("=" * 64)
    program = typecheck_program(quadrangle_choose_program())
    output = evaluate(program, quadrangle_input("a", "b"))
    print("chosen output:")
    print(output)
    expected = quadrangle_expected_output("a", "b")
    print(
        "\nmatches the paper's Figure 1 up to O-isomorphism:",
        are_o_isomorphic(output, expected),
    )
    print()


def step4_genericity_guard():
    print("=" * 64)
    print("4. choose is *deterministic*, not nondeterministic")
    print("=" * 64)
    print(
        "Dropping the symmetry-maintaining rotation rule makes the two\n"
        "copies distinguishable; the evaluator's genericity check then\n"
        "refuses the choose rather than silently picking one:\n"
    )
    from repro.iql import Program

    program = quadrangle_choose_program()
    stages = [
        [rule for rule in stage if rule.label != "rotate"] for stage in program.stages
    ]
    asymmetric = Program(
        program.schema,
        stages=stages,
        input_names=program.input_names,
        output_names=program.output_names,
    )
    try:
        evaluate(asymmetric, quadrangle_input("a", "b"))
    except GenericityError as exc:
        print(f"  GenericityError: {exc}")
    print()


def step5_meta_machinery():
    print("=" * 64)
    print("5. The Definition 4.2.3 machinery, directly")
    print("=" * 64)
    from repro.schema import Instance, Schema
    from repro.typesys import D, classref, tuple_of
    from repro.values import Oid, OTuple

    schema = Schema(classes={"Doc": tuple_of(title=D)})
    doc = Oid("doc")
    original = Instance(schema, classes={"Doc": [doc]}, nu={doc: OTuple(title="Nested Relations")})
    i_bar = make_instance_with_copies(original, 3)
    ok, _ = is_instance_with_copies(i_bar, schema)
    print(f"instance with 3 copies recognized: {ok}")
    chosen = eliminate_copies(i_bar, schema)
    print(f"eliminated down to one copy, isomorphic to the original: "
          f"{are_o_isomorphic(chosen, original)}")


if __name__ == "__main__":
    output = step1_copies()
    step2_inexpressibility(output)
    step3_choose()
    step4_genericity_guard()
    step5_meta_machinery()
