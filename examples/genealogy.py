"""Genealogy: the paper's own motivating domain (Example 1.1, Genesis).

Demonstrates the structural model at full strength — cyclic class types
(spouses point at each other), set-valued attributes, union types in a
relation, incomplete information (an object whose value is unknown) — and
a small library of queries over it, including one that *derives new
objects*: family records, one invented object per couple.

Run:  python examples/genealogy.py
"""

from repro import (
    Instance,
    Program,
    Rule,
    Var,
    evaluate,
    typecheck_program,
)
from repro.iql import Equality, Membership, NameTerm, TupleTerm
from repro.typesys import D, classref, set_of, tuple_of, union
from repro.values import render
from repro.workloads import (
    ANCESTOR,
    FIRST,
    FOUNDED,
    SECOND,
    genesis_instance,
)


def show_instance(instance, oids):
    print("The Genesis instance (Example 1.1):")
    print(instance)
    print()
    other = oids["other"]
    print(f"ν({other!r}) is undefined — incomplete information is first-class.")
    print()


def query_occupations(instance):
    """All (name, occupation) pairs — navigation plus set membership."""
    second = classref(SECOND)
    c = Var("c", second)
    n, o = Var("n", D), Var("o", D)
    occs = Var("occs", set_of(D))
    schema = instance.schema.with_names(relations={"Occ": tuple_of(who=D, what=D)})
    program = typecheck_program(
        Program(
            schema,
            rules=[
                Rule(
                    Membership(NameTerm("Occ"), TupleTerm(who=n, what=o)),
                    [
                        Membership(NameTerm(SECOND), c),
                        Equality(c.hat(), TupleTerm(name=n, occupations=occs)),
                        Membership(occs, o),
                    ],
                )
            ],
            input_names=sorted(instance.schema.names),
            output_names=["Occ"],
        )
    )
    out = evaluate(program, instance)
    print("Occupations:")
    for row in sorted(out.relations["Occ"], key=repr):
        print(f"  {row['who']:>6} — {row['what']}")
    print()


def query_celebrity_links(instance):
    """Union-type branching: descendants given by name vs by spouse."""
    second = classref(SECOND)
    a = Var("a", second)
    w = Var("w", union(D, tuple_of(spouse=D)))
    n, ancestor_name = Var("n", D), Var("an", D)
    occs = Var("occs", set_of(D))
    schema = instance.schema.with_names(
        relations={"Celebrity": tuple_of(ancestor=D, link=D)}
    )
    rules = [
        Rule(
            Membership(
                NameTerm("Celebrity"), TupleTerm(ancestor=ancestor_name, link=n)
            ),
            [
                Membership(NameTerm(ANCESTOR), TupleTerm(anc=a, desc=w)),
                Equality(n, w),  # coercion: w against its D branch
                Equality(a.hat(), TupleTerm(name=ancestor_name, occupations=occs)),
            ],
        ),
        Rule(
            Membership(
                NameTerm("Celebrity"), TupleTerm(ancestor=ancestor_name, link=n)
            ),
            [
                Membership(NameTerm(ANCESTOR), TupleTerm(anc=a, desc=w)),
                Equality(TupleTerm(spouse=n), w),  # the [spouse: D] branch
                Equality(a.hat(), TupleTerm(name=ancestor_name, occupations=occs)),
            ],
        ),
    ]
    program = typecheck_program(
        Program(
            schema,
            rules=rules,
            input_names=sorted(instance.schema.names),
            output_names=["Celebrity"],
        )
    )
    out = evaluate(program, instance)
    print("Celebrity links (through either union branch):")
    for row in sorted(out.relations["Celebrity"], key=repr):
        print(f"  {row['ancestor']:>6} → {row['link']}")
    print()


def derive_family_objects(instance):
    """Invent one Family object per couple: oid invention in the open.

    Family has a recursive flavor too: it records the couple's shared
    children as a set of second-generation objects.
    """
    first, second = classref(FIRST), classref(SECOND)
    fam = classref("Family")
    schema = instance.schema.with_names(
        relations={"FamOf": tuple_of(husband=first, fam=fam)},
        classes={"Family": tuple_of(parents=set_of(first), kids=set_of(second))},
    )
    p, q = Var("p", first), Var("q", first)
    f = Var("f", fam)
    n = Var("n", D)
    kids = Var("kids", set_of(second))
    program = typecheck_program(
        Program(
            schema,
            stages=[
                [
                    # one family per person-with-spouse... the symmetric pair
                    # would create two; dedup by orienting through FamOf and
                    # the head-satisfiability blocking: one per p.
                    Rule(
                        Membership(NameTerm("FamOf"), TupleTerm(husband=p, fam=f)),
                        [
                            Membership(NameTerm(FIRST), p),
                            Equality(
                                p.hat(), TupleTerm(name=n, spouse=q, children=kids)
                            ),
                        ],
                    )
                ],
                [
                    Rule(
                        Equality(
                            f.hat(),
                            TupleTerm(parents=SetTermOf(p, q), kids=kids),
                        ),
                        [
                            Membership(NameTerm("FamOf"), TupleTerm(husband=p, fam=f)),
                            Equality(
                                p.hat(), TupleTerm(name=n, spouse=q, children=kids)
                            ),
                        ],
                    )
                ],
            ],
            input_names=sorted(instance.schema.names),
            output_names=["Family", FIRST, SECOND],
        )
    )
    out = evaluate(program, instance)
    print("Derived Family objects (invented oids, set-valued attributes):")
    for oid in sorted(out.classes["Family"], key=lambda o: o.serial):
        value = out.value_of(oid)
        print(f"  {oid!r} = {render(value) if value is not None else '⊥'}")
    print(
        "  note: one Family per *person* — the couple yields two\n"
        "  indistinguishable copies. Selecting exactly one per couple is\n"
        "  copy elimination, which Section 4.3 proves plain IQL cannot do;\n"
        "  see examples/copy_elimination.py for the IQL+ way out.\n"
    )


def SetTermOf(*terms):
    from repro.iql import SetTerm

    return SetTerm(*terms)


if __name__ == "__main__":
    instance, oids = genesis_instance()
    instance.validate()
    show_instance(instance, oids)
    query_occupations(instance)
    query_celebrity_links(instance)
    derive_family_objects(instance)
