"""Quickstart: schemas, instances, and your first IQL programs.

This walks the core loop of the library in five minutes:

1. declare a schema (relations + classes, cyclic types welcome),
2. load an instance,
3. write an IQL program — here transitive closure, then a program that
   *invents objects* to re-represent the graph cyclically (the paper's
   Example 1.2),
4. type check, classify (IQLrr/IQLpr/full IQL), evaluate, inspect.

Run:  python examples/quickstart.py
"""

from repro import (
    Instance,
    Program,
    Rule,
    Schema,
    Var,
    atom,
    classify,
    columns,
    evaluate,
    evaluate_full,
    typecheck_program,
)
from repro.iql import Equality, Membership, TupleTerm
from repro.typesys import D, classref, set_of, tuple_of
from repro.values import OTuple


def transitive_closure_demo():
    print("=" * 64)
    print("1. Transitive closure — Datalog is a sublanguage of IQL")
    print("=" * 64)

    schema = Schema(relations={"E": columns(D, D), "T": columns(D, D)})
    x, y, z = Var("x", D), Var("y", D), Var("z", D)
    program = typecheck_program(
        Program(
            schema,
            rules=[
                Rule(atom(schema, "T", x, y), [atom(schema, "E", x, y)]),
                Rule(
                    atom(schema, "T", x, z),
                    [atom(schema, "T", x, y), atom(schema, "E", y, z)],
                ),
            ],
            input_names=["E"],
            output_names=["T"],
        )
    )
    print(f"program:\n{program}\n")
    print("classification:", classify(program).summary())

    edges = [("a", "b"), ("b", "c"), ("c", "d")]
    instance = Instance(
        program.input_schema,
        relations={"E": [OTuple(A01=s, A02=t) for s, t in edges]},
    )
    result = evaluate_full(program, instance)
    closure = sorted((t["A01"], t["A02"]) for t in result.output.relations["T"])
    print("closure:", closure)
    print("stats:  ", result.stats, "\n")


def object_invention_demo():
    print("=" * 64)
    print("2. Object invention — Example 1.2: a graph becomes objects")
    print("=" * 64)

    # Output: a class P whose objects ARE the nodes; T(P) = [A1: D, A2: {P}]
    # is recursive — each node carries its name and its set of successors.
    P, Paux = classref("P"), classref("Paux")
    schema = Schema(
        relations={
            "R": columns(D, D),
            "R0": columns(D),
            "Rp": columns(D, P, Paux),
        },
        classes={"P": tuple_of(A1=D, A2=set_of(P)), "Paux": set_of(P)},
    )
    x, y = Var("x", D), Var("y", D)
    p, q = Var("p", P), Var("q", P)
    pp, qq = Var("pp", Paux), Var("qq", Paux)
    program = typecheck_program(
        Program(
            schema,
            stages=[
                [  # stage 1: collect node names
                    Rule(atom(schema, "R0", x), [atom(schema, "R", x, y)]),
                    Rule(atom(schema, "R0", x), [atom(schema, "R", y, x)]),
                ],
                [  # stage 2: invent two oids per node (p, pp head-only!)
                    Rule(atom(schema, "Rp", x, p, pp), [atom(schema, "R0", x)]),
                ],
                [  # stage 3: pour successors into the auxiliary set objects
                    Rule(
                        Membership(pp.hat(), q),
                        [
                            atom(schema, "Rp", x, p, pp),
                            atom(schema, "Rp", y, q, qq),
                            atom(schema, "R", x, y),
                        ],
                    ),
                ],
                [  # stage 4: weak assignment builds the final values
                    Rule(
                        Equality(p.hat(), TupleTerm(A1=x, A2=pp.hat())),
                        [atom(schema, "Rp", x, p, pp)],
                    ),
                ],
            ],
            input_names=["R"],
            output_names=["P"],
        )
    )
    print("classification:", classify(program).summary())

    triangle = [("a", "b"), ("b", "c"), ("c", "a")]
    instance = Instance(
        program.input_schema,
        relations={"R": [OTuple(A01=s, A02=t) for s, t in triangle]},
    )
    output = evaluate(program, instance)
    print("\nThe cyclic graph as a cyclic instance:")
    print(output)
    output.validate()
    print("\noutput validates against the recursive class type ✓\n")


def surface_syntax_demo():
    print("=" * 64)
    print("3. The same program in surface syntax, types inferred")
    print("=" * 64)

    from repro import program_from_source

    source = """
    schema {
      relation E: [A1: D, A2: D];
      relation T: [A1: D, A2: D];
    }
    input E
    output T
    rules {
      T(x, y) :- E(x, y).
      T(x, z) :- T(x, y), E(y, z).
    }
    """
    program = typecheck_program(program_from_source(source))
    instance = Instance(
        program.input_schema,
        relations={"E": [OTuple(A1="u", A2="v"), OTuple(A1="v", A2="w")]},
    )
    out = evaluate(program, instance)
    print("T =", sorted((t["A1"], t["A2"]) for t in out.relations["T"]))


if __name__ == "__main__":
    transitive_closure_demo()
    object_invention_demo()
    surface_syntax_demo()
