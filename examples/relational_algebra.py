"""Relational algebra compiled to IQL (Section 3.4).

"Relational calculus queries and Datalog with stratified negation are
expressible in IQL almost verbatim" — this example makes the algebra side
of that claim concrete: queries over a small company database are written
as algebra expressions, compiled to IQL programs (every one of them lands
in the PTIME fragment IQLrr), and evaluated.

Run:  python examples/relational_algebra.py
"""

from repro import Instance, Schema, evaluate, typecheck_program
from repro.iql import classify
from repro.iql.algebra import (
    Diff,
    Join,
    Project,
    Rel,
    Rename,
    Select,
    UnionOp,
    compile_query,
    eq_attr,
    eq_const,
    neq_const,
)
from repro.typesys import D, tuple_of
from repro.values import OTuple


def company_db():
    schema = Schema(
        relations={
            "Emp": tuple_of(name=D, dept=D, level=D),
            "Dept": tuple_of(dept=D, head=D, site=D),
            "Alumni": tuple_of(name=D, dept=D, level=D),
        }
    )
    def row(**kw):
        return OTuple(kw)

    data = Instance(
        schema,
        relations={
            "Emp": [
                row(name="ada", dept="eng", level="senior"),
                row(name="bob", dept="eng", level="junior"),
                row(name="cyn", dept="ops", level="senior"),
                row(name="dee", dept="sci", level="senior"),
            ],
            "Dept": [
                row(dept="eng", head="ada", site="paris"),
                row(dept="ops", head="cyn", site="lyon"),
                row(dept="sci", head="dee", site="paris"),
            ],
            "Alumni": [row(name="bob", dept="eng", level="junior")],
        },
    )
    return schema, data


def show(title, expr, schema, data):
    program = typecheck_program(compile_query(expr, schema))
    out = evaluate(program, data.project(program.input_schema))
    print(f"-- {title}")
    print(f"   classification: {classify(program).summary()}")
    print(f"   stages: {len(program.stages)}, rules: {len(program.rules)}")
    for row in sorted(out.relations["Answer"], key=repr):
        print("   ", {k: row[k] for k in row.attributes})
    print()


if __name__ == "__main__":
    schema, data = company_db()

    show(
        "σ level='senior' (Emp)",
        Select(Rel("Emp"), eq_const("level", "senior")),
        schema,
        data,
    )
    show(
        "π name,site (Emp ⋈ Dept)",
        Project(Join(Rel("Emp"), Rel("Dept")), ["name", "site"]),
        schema,
        data,
    )
    show(
        "department heads (σ name=head of the join)",
        Project(
            Select(Join(Rel("Emp"), Rel("Dept")), eq_attr("name", "head")),
            ["name", "dept"],
        ),
        schema,
        data,
    )
    seniors_in_paris = Select(
        Join(Rel("Emp"), Rel("Dept")),
        eq_const("level", "senior"),
        eq_const("site", "paris"),
    )
    alumni_in_paris = Select(
        Join(Rel("Alumni"), Rel("Dept")),
        eq_const("level", "senior"),
        eq_const("site", "paris"),
    )
    show(
        "current seniors in Paris who are not alumni (difference ⇒ staging)",
        Project(Diff(seniors_in_paris, alumni_in_paris), ["name"]),
        schema,
        data,
    )
    show(
        "everyone ever in eng (current ∪ alumni)",
        Project(
            Select(UnionOp(Rel("Emp"), Rel("Alumni")), eq_const("dept", "eng")),
            ["name"],
        ),
        schema,
        data,
    )
    show(
        "rename: managers directory",
        Project(Rename(Rel("Dept"), {"head": "manager"}), ["manager", "site"]),
        schema,
        data,
    )
