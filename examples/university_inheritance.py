"""Inheritance without new machinery (Section 6, Example 6.1.2).

The university diamond — ta isa student isa person, ta isa instructor isa
person — declared succinctly (each class states only its *additional*
attributes), expanded by the *-interpretation into full record types,
validated under the inherited oid assignment, compiled away into union
types, and queried by plain IQL.

Run:  python examples/university_inheritance.py
"""

from repro import Instance, Program, Rule, Var, evaluate, typecheck_program
from repro.inheritance import inherited_assignment
from repro.iql import Equality, Membership, NameTerm, TupleTerm
from repro.typesys import D, classref
from repro.workloads import university_instance, university_schema


def show_effective_types(schema):
    print("Succinct declarations (Example 6.2.1) expand to effective types:")
    for name in ("person", "student", "instructor", "ta"):
        print(f"  t_{name:<11} = {schema.effective_type(name)!r}")
    print()


def show_inherited_assignment(schema, instance):
    pi_bar = inherited_assignment(instance.classes, schema.hierarchy)
    print("Inherited oid assignment π̄ (Definition 6.1.1):")
    for name in ("person", "student", "instructor", "ta"):
        print(f"  π̄({name:<10}) has {len(pi_bar[name]):>2} oids "
              f"(π has {len(instance.classes[name])})")
    print()


def validate_both_ways(schema, instance):
    schema.validate_instance(instance)
    print("instance is valid under the inheritance semantics ✓")
    plain_ok = instance.is_valid()
    print(f"...and under plain (non-inherited) validation? {plain_ok} — "
          f"the teaches rows pairing TAs with students need π̄.")
    print()


def query_compiled_schema(schema, instance):
    """All teaching pairs by *name* — over the compiled union-type schema,
    with one rule per union branch (the Example 3.4.3 coercion pattern)."""
    plain = schema.compile_away_isa()
    lifted = Instance(plain)
    for name, members in instance.relations.items():
        lifted.relations[name] = set(members)
    for name, oids in instance.classes.items():
        for oid in oids:
            lifted.add_class_member(name, oid)
    lifted.nu.update(instance.nu)
    lifted.validate()
    print("compiled (isa-free) schema validates the same instance ✓")
    print("compiled teaches type:", plain.relations["teaches"])

    full = plain.with_names(relations={"Pair": None or _pair_type()})
    t_type = plain.relations["teaches"].component("T")
    s_type = plain.relations["teaches"].component("S")
    rules = []
    for teacher_cls, teacher_fields in (("instructor", ("course_taught",)),
                                        ("ta", ("course_taught", "course_taken"))):
        for student_cls, student_fields in (("student", ("course_taken",)),
                                            ("ta", ("course_taken", "course_taught"))):
            t = Var(f"t_{teacher_cls}", classref(teacher_cls))
            s = Var(f"s_{student_cls}", classref(student_cls))
            tn, sn = Var("tn", D), Var("sn", D)
            t_pattern = {"name": tn}
            t_pattern.update({f: Var(f"tf_{f}", D) for f in teacher_fields})
            s_pattern = {"name": sn}
            s_pattern.update({f: Var(f"sf_{f}", D) for f in student_fields})
            rules.append(
                Rule(
                    Membership(NameTerm("Pair"), TupleTerm(teacher=tn, student=sn)),
                    [
                        Membership(NameTerm("teaches"), TupleTerm(T=t, S=s)),
                        Equality(t.hat(), TupleTerm(t_pattern)),
                        Equality(s.hat(), TupleTerm(s_pattern)),
                    ],
                )
            )
    program = typecheck_program(
        Program(
            full,
            rules=rules,
            input_names=sorted(plain.names),
            output_names=["Pair"],
        )
    )
    out = evaluate(program, lifted)
    print("\nWho teaches whom (instructors and TAs alike):")
    for row in sorted(out.relations["Pair"], key=repr):
        print(f"  {row['teacher']:>14} teaches {row['student']}")


def _pair_type():
    from repro.typesys import tuple_of

    return tuple_of(teacher=D, student=D)


if __name__ == "__main__":
    schema = university_schema()
    instance, groups = university_instance(
        people=3, students=4, instructors=2, tas=2, seed=11
    )
    show_effective_types(schema)
    show_inherited_assignment(schema, instance)
    validate_both_ways(schema, instance)
    query_compiled_schema(schema, instance)
