"""Objects versus pure values (Section 7): regular trees, φ, ψ, IQLv.

A social graph where people's values are *cyclic*: unfolded, each person
is an infinite regular tree. This example shows

1. the same data as an object instance and as a v-instance,
2. ψ's automatic duplicate elimination: two objects whose unfoldings are
   bisimilar denote ONE pure value,
3. the ψ(φ(I)) = I round trip (Proposition 7.1.4),
4. using IQL as a value-based query language (Theorem 7.1.5) — the output
   values collapse copies by construction.

Run:  python examples/value_based_views.py
"""

from repro import Instance, Schema
from repro.typesys import D, classref, tuple_of
from repro.valuebased import VInstance, VSchema, phi, psi, run_iqlv
from repro.values import Oid, OTuple


def build_object_instance():
    schema = Schema(classes={"Person": tuple_of(name=D, follows=classref("Person"))})
    a, b, c, d = Oid("ana"), Oid("bo"), Oid("cy"), Oid("dee")
    instance = Instance(
        schema,
        classes={"Person": [a, b, c, d]},
        nu={
            # ana and bo follow each other; cy and dee follow each other —
            # with identical names pairwise, so (a,b) and (c,d) unfold to
            # bisimilar infinite trees.
            a: OTuple(name="x", follows=b),
            b: OTuple(name="y", follows=a),
            c: OTuple(name="x", follows=d),
            d: OTuple(name="y", follows=c),
        },
    )
    return schema, instance


def demo_psi(schema, instance):
    print("=" * 64)
    print("ψ: objects → pure values (regular trees)")
    print("=" * 64)
    vinstance = psi(instance)
    print(f"object instance has {len(instance.classes['Person'])} oids;")
    values = vinstance.canonical_assignment()["Person"]
    print(f"value instance has {len(values)} distinct pure values —")
    print("duplicates eliminated by bisimilarity, exactly as in §7.1.\n")

    system = vinstance.system
    root = next(iter(vinstance.assignment["Person"]))
    print("one value, unfolded three levels (cycles cut with '…'):")
    print(" ", system.unfold(root, 3))
    print(f"\ndistinct subtrees: {system.subtree_count(root)} "
          f"(finite — Proposition 7.1.3: values are regular trees)\n")
    return vinstance


def demo_round_trip(vinstance):
    print("=" * 64)
    print("φ then ψ: the round trip of Proposition 7.1.4")
    print("=" * 64)
    obj = phi(vinstance)
    obj.validate()
    print("φ(V) as objects:")
    print(obj)
    back = psi(obj)
    print(f"\nψ(φ(V)) == V: {back == vinstance}\n")


def demo_iqlv(vinstance):
    print("=" * 64)
    print("IQLv: IQL as a value-based query language (Theorem 7.1.5)")
    print("=" * 64)
    from repro.iql import Equality, Membership, NameTerm, Program, Rule, TupleTerm, Var
    from repro.valuebased import object_schema

    # Mutual(x): people who follow someone who follows them back.
    vschema = VSchema(
        {
            "Person": tuple_of(name=D, follows=classref("Person")),
            "Mutual": tuple_of(name=D, follows=classref("Person")),
        }
    )
    # Rebuild the input v-instance over the extended schema.
    extended = VInstance(vschema, vinstance.system)
    for root in vinstance.assignment["Person"]:
        extended.add_value("Person", root)

    schema = object_schema(vschema)
    p, q = Var("p", classref("Person")), Var("q", classref("Person"))
    m = Var("m", classref("Mutual"))
    n, n2 = Var("n", D), Var("n2", D)
    full = schema.with_names(
        relations={"Map": tuple_of(src=classref("Person"), dst=classref("Mutual"))}
    )
    program = Program(
        full,
        stages=[
            [
                Rule(
                    Membership(NameTerm("Map"), TupleTerm(src=p, dst=m)),
                    [
                        Membership(NameTerm("Person"), p),
                        Equality(p.hat(), TupleTerm(name=n, follows=q)),
                        Equality(q.hat(), TupleTerm(name=n2, follows=p)),
                    ],
                )
            ],
            [
                Rule(
                    Equality(m.hat(), TupleTerm(name=n, follows=q)),
                    [
                        Membership(NameTerm("Map"), TupleTerm(src=p, dst=m)),
                        Equality(p.hat(), TupleTerm(name=n, follows=q)),
                    ],
                )
            ],
        ],
        input_names=["Person"],
        output_names=["Person", "Mutual"],
    )
    result = run_iqlv(program, extended)
    mutual = result.canonical_assignment()["Mutual"]
    print(f"Mutual followers (as pure values): {len(mutual)} distinct value(s)")
    print("IQLv needed no choose: ψ collapses copies automatically.\n")


if __name__ == "__main__":
    schema, instance = build_object_instance()
    instance.validate()
    vinstance = demo_psi(schema, instance)
    demo_round_trip(vinstance)
    demo_iqlv(vinstance)
