"""Setup shim: this offline environment lacks the `wheel` package, so the
PEP 660 editable-install path is unavailable; pip falls back to
`setup.py develop`, which needs this file. Metadata lives in pyproject.toml."""

from setuptools import setup

setup()
