"""repro — a full reproduction of *Object Identity as a Query Language
Primitive* (Abiteboul & Kanellakis, SIGMOD 1989 / JACM 1998).

The package implements the paper end to end:

* :mod:`repro.values` — o-values: constants, oids, tuples, sets (§2.1),
* :mod:`repro.typesys` — the type language and its interpretations (§2.2, §6.2),
* :mod:`repro.schema` — schemas, instances, O-/DO-isomorphisms (§2.3, §4.1),
* :mod:`repro.iql` — the IQL language: syntax, type checking, the naive
  inflationary evaluator, ``choose`` (IQL+), deletions (IQL*), and the
  PTIME sublanguages IQLrr ⊂ IQLpr (§3-§5),
* :mod:`repro.parser` — a textual surface syntax with type inference (§3.3),
* :mod:`repro.datalog` — a standalone Datalog engine and the embedding
  Datalog ⊂ IQL (§3.4),
* :mod:`repro.transform` — db-transformations, copies, and the paper's
  worked examples including the Figure-1 quadrangle query (§4),
* :mod:`repro.inheritance` — isa hierarchies compiled to union types (§6),
* :mod:`repro.valuebased` — regular trees, φ/ψ, and IQLv (§7),
* :mod:`repro.workloads` — the Genesis and university fixtures plus
  benchmark generators,
* :mod:`repro.analysis` — the unified static-analysis subsystem (IQL
  lint): ``analyze(program) -> Report`` with source-spanned ``IQLxxx``
  diagnostics and Definition-5.3 certification.

Quickstart::

    from repro import (Schema, Instance, Program, Rule, Var, atom,
                       evaluate, typecheck_program, columns)
    from repro.typesys import D

    schema = Schema(relations={"E": columns(D, D), "T": columns(D, D)})
    x, y, z = (Var(n, D) for n in "xyz")
    program = typecheck_program(Program(schema, rules=[
        Rule(atom(schema, "T", x, y), [atom(schema, "E", x, y)]),
        Rule(atom(schema, "T", x, z), [atom(schema, "T", x, y), atom(schema, "E", y, z)]),
    ], input_names=["E"], output_names=["T"]))
"""

from repro.diagnostics import CODES, Diagnostic, Span
from repro.errors import (
    EvaluationError,
    GenericityError,
    InstanceError,
    NonTerminationError,
    OValueError,
    ParseError,
    ReproError,
    SchemaError,
    SublanguageError,
    TypeCheckError,
    TypeExpressionError,
)
from repro.iql import (
    Choose,
    Equality,
    Evaluator,
    EvaluatorLimits,
    Membership,
    Program,
    Rule,
    Var,
    atom,
    classify,
    columns,
    evaluate,
    evaluate_full,
    typecheck_program,
)
from repro.parser import program_from_source, schema_from_source
from repro.schema import Instance, Schema, are_o_isomorphic, find_o_isomorphism
from repro.values import Oid, OSet, OTuple, ensure_ovalue

__version__ = "1.0.0"

__all__ = [
    "CODES",
    "Diagnostic",
    "Span",
    "EvaluationError",
    "GenericityError",
    "InstanceError",
    "NonTerminationError",
    "OValueError",
    "ParseError",
    "ReproError",
    "SchemaError",
    "SublanguageError",
    "TypeCheckError",
    "TypeExpressionError",
    "Choose",
    "Equality",
    "Evaluator",
    "EvaluatorLimits",
    "Membership",
    "Program",
    "Rule",
    "Var",
    "atom",
    "classify",
    "columns",
    "evaluate",
    "evaluate_full",
    "typecheck_program",
    "program_from_source",
    "schema_from_source",
    "Instance",
    "Schema",
    "are_o_isomorphic",
    "find_o_isomorphism",
    "Oid",
    "OSet",
    "OTuple",
    "ensure_ovalue",
    "__version__",
]
