"""Command-line driver: run IQL programs against JSON instances.

Usage::

    python -m repro run PROGRAM.iql --input data.json [--output out.json]
    python -m repro maintain PROGRAM.iql --input data.json  # live IVM REPL
    python -m repro check PROGRAM.iql [--json]   # type check + classify
    python -m repro lint PROGRAM.iql [--format text|json] [--strict]
    python -m repro analyze PROGRAM.iql [--format text|json|dot] [--stats]
    python -m repro analyze PROGRAM.iql --plans [--input data.json]
    python -m repro analyze PROGRAM.iql --parallel [--format text|json|dot]
    python -m repro impact PROGRAM.iql [--symbol R] [--op insert|delete]
    python -m repro fmt PROGRAM.iql              # parse + pretty-print
    python -m repro validate data.json           # instance legality
    python -m repro demo                         # the Example 1.2 pipeline

Programs are in the surface syntax (see repro.parser); instances in the
JSON format of repro.io. ``lint`` runs the full repro.analysis pipeline
and exits non-zero on error-severity diagnostics (``--strict`` promotes
warnings to the same treatment, for CI gating). ``analyze`` renders the
per-stage dependency graphs, SCC strata, effect summaries, and the
certified schedule in text, JSON, or GraphViz DOT (``--stats`` adds
per-pass analysis timings on stderr). ``impact`` renders the
update-impact analysis: per updatable base symbol, the affected cone,
the counting/DRed/recompute maintenance classification, and the
machine-checkable maintenance certificates (IQL701–IQL704).

``maintain`` keeps a fixpoint *live*: it loads the instance, evaluates
once, then reads update commands from stdin — ``+R <value>`` stages an
insert, ``-R <value>`` a delete (several ``;``-separated ops on one
line form one batch), ``?R`` prints an extent, ``stats`` the IVM
counters, ``certs`` the per-update-class strategies, ``output`` the
output instance as JSON. Values use the JSON value syntax of repro.io;
for class extents a bare string names an oid (an existing one, or a
fresh one on insert).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import io
from repro.errors import ReproError
from repro.iql.evaluator import Evaluator, EvaluatorLimits
from repro.iql.sublanguages import classify
from repro.iql.typecheck import check_program
from repro.parser.grammar import program_from_source


def _load_program(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return program_from_source(handle.read())


def cmd_check(args: argparse.Namespace) -> int:
    program = _load_program(args.program)
    errors = check_program(program)
    report = classify(program)
    if getattr(args, "json", False):
        from repro.analysis import analyze

        doc = analyze(program).to_json(filename=args.program)
        doc["classification"] = report.summary()
        print(json.dumps(doc, indent=2))
        return 1 if errors else 0
    for error in errors:
        print(f"type error: {error}", file=sys.stderr)
    print(f"rules: {len(program.rules)} in {len(program.stages)} stage(s)")
    print(f"classification: {report.summary()}")
    if program.uses_choose():
        print("features: choose (IQL+)")
    if program.uses_deletion():
        print("features: deletion (IQL*)")
    return 1 if errors else 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import analyze_source

    with open(args.program, "r", encoding="utf-8") as handle:
        text = handle.read()
    report = analyze_source(text, filename=args.program)
    strict_failed = args.strict and bool(report.warnings)
    if args.format == "json":
        doc = report.to_json(filename=args.program)
        if args.strict:
            doc["strict"] = True
            doc["ok"] = doc["ok"] and not strict_failed
        print(json.dumps(doc, indent=2))
    else:
        print(report.render_text(filename=args.program))
        if strict_failed:
            print(
                f"strict mode: {len(report.warnings)} warning(s) treated as errors"
            )
    return 0 if report.ok and not strict_failed else 1


def cmd_analyze(args: argparse.Namespace) -> int:
    import time

    from repro.analysis import (
        analyze,
        compute_schedule,
        graphs_to_dot,
        impact_pass,
        program_cones,
        program_graphs,
        render_graphs_text,
        rule_effects,
    )

    program = _load_program(args.program)
    if args.plans:
        return _dump_plans(program, args)
    if args.parallel:
        return _dump_parallel(program, args)
    timings = {}
    t0 = time.perf_counter()
    for rule in program.rules:
        rule_effects(rule, program.schema)
    timings["effects"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    graphs = program_graphs(program)
    schedule = compute_schedule(program)
    timings["depgraph"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    report = analyze(program)
    timings["lint"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    cones = program_cones(program)
    impact_diagnostics = impact_pass(program, cones=cones)
    timings["impact"] = time.perf_counter() - t0
    if args.stats:
        print(
            "analysis timings:\n"
            + "\n".join(
                f"  {name:<10} {seconds * 1000:8.2f}ms"
                for name, seconds in timings.items()
            ),
            file=sys.stderr,
        )
    if args.format == "json":
        print(
            json.dumps(
                {
                    "file": args.program,
                    "stages": [graph.to_json() for graph in graphs],
                    "schedule": schedule.to_json(),
                    "diagnostics": [d.to_json() for d in report.diagnostics],
                    "impact": {
                        "cones": [cone.to_json() for cone in cones],
                        "diagnostics": [
                            d.to_json() for d in impact_diagnostics
                        ],
                    },
                    "timings_ms": {
                        name: seconds * 1000 for name, seconds in timings.items()
                    },
                },
                indent=2,
            )
        )
    elif args.format == "dot":
        print(graphs_to_dot(graphs))
    else:
        print(render_graphs_text(graphs, schedule))
        for diag in report.diagnostics:
            if diag.code.startswith("IQL6"):
                print(diag.render(args.program))
        for diag in impact_diagnostics:
            print(diag.render(args.program))
    return 0 if report.ok else 1


def _dump_plans(program, args: argparse.Namespace) -> int:
    """``repro analyze --plans``: each rule's cost-based body plan.

    Plans are computed against the ``--input`` instance when given (the
    cardinalities the evaluator would see at stage start), else against
    an empty instance — estimates then reflect sizes of zero, which is
    exactly what the optimizer knows before any facts exist.
    """
    from repro.iql.literals import Choose
    from repro.iql.stats import describe_plan
    from repro.iql.valuation import plan_body
    from repro.schema.instance import Instance

    if args.input:
        instance = io.load(args.input).project(program.input_schema).with_schema(
            program.schema
        )
        source = args.input
    else:
        instance = Instance(program.schema)
        source = "(empty instance)"
    print(f"body plans against {source}, cost-based:")
    for rule in program.rules:
        literals = tuple(
            lit for lit in rule.body if not isinstance(lit, Choose)
        )
        plan = plan_body(literals, frozenset(), instance, use_indexes=True, costed=True)
        print(f"\n{rule.display_label()}")
        for line in describe_plan(plan):
            print(f"  {line}")
    return 0


def _dump_parallel(program, args: argparse.Namespace) -> int:
    """``repro analyze --parallel``: the IQL8xx parallel-safety plan.

    Renders the :class:`~repro.analysis.parallel.ParallelCertificate` —
    conflict groups, partitionable rules, the stratum DAG with its
    concurrency width, and the runtime-surface audit — plus the
    IQL801-804 diagnostics. JSON output carries ``certified``/``clean``
    at top level for CI gating.
    """
    from repro.analysis import (
        build_parallel_certificate,
        parallel_pass,
        parallel_to_dot,
        render_parallel_text,
    )

    certificate = build_parallel_certificate(program)
    diagnostics = parallel_pass(program, certificate=certificate)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "file": args.program,
                    "certified": certificate.certified,
                    "clean": certificate.clean,
                    "width": certificate.width,
                    "certificate": certificate.to_json(),
                    "diagnostics": [d.to_json() for d in diagnostics],
                },
                indent=2,
            )
        )
    elif args.format == "dot":
        print(parallel_to_dot(certificate))
    else:
        print(render_parallel_text(certificate))
        for diag in diagnostics:
            print(diag.render(args.program))
    return 0


def cmd_impact(args: argparse.Namespace) -> int:
    from repro.analysis import (
        build_certificate,
        impact_pass,
        impact_to_dot,
        program_cones,
        program_graphs,
        render_impact_text,
    )
    from repro.analysis.impact import UPDATE_OPS

    program = _load_program(args.program)
    if args.symbol is not None and args.symbol not in program.input_names:
        print(
            f"error: {args.symbol!r} is not an input symbol of the program "
            f"(inputs: {', '.join(program.input_names) or 'none'})",
            file=sys.stderr,
        )
        return 2
    symbols = [args.symbol] if args.symbol is not None else None
    cones = program_cones(program, symbols=symbols)
    ops = [args.op] if args.op is not None else list(UPDATE_OPS)
    certificates = [
        build_certificate(program, cone, op) for cone in cones for op in ops
    ]
    diagnostics = impact_pass(program, cones=cones)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "file": args.program,
                    "certificates": [c.to_json() for c in certificates],
                    "diagnostics": [d.to_json() for d in diagnostics],
                },
                indent=2,
            )
        )
    elif args.format == "dot":
        print(impact_to_dot(cones, program_graphs(program)))
    else:
        print(render_impact_text(cones))
        for diag in diagnostics:
            print(diag.render(args.program))
    return 0


def _parallel_width(text: str):
    """``--parallel`` accepts an int worker count or the word 'auto'."""
    if text == "auto":
        return "auto"
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer worker count or 'auto', got {text!r}"
        ) from None


def cmd_run(args: argparse.Namespace) -> int:
    if args.naive and args.compile:
        print(
            "error: --naive and --compile are contradictory: --naive selects the "
            "reference generate-and-test engine, --compile specializes the "
            "planned/indexed one. Drop one of the two flags.",
            file=sys.stderr,
        )
        return 2
    program = _load_program(args.program)
    errors = check_program(program)
    if errors:
        for error in errors:
            print(f"type error: {error}", file=sys.stderr)
        return 1
    instance = io.load(args.input, schema=program.input_schema if args.strict else None)
    if args.strict and instance.schema != program.input_schema:
        print("input does not match the program's input schema", file=sys.stderr)
        return 1
    if not args.strict:
        instance = instance.project(program.input_schema)
    limits = EvaluatorLimits(max_steps=args.max_steps)
    evaluator = Evaluator(
        program,
        limits=limits,
        choose_mode=args.choose_mode,
        seminaive=not args.naive,
        indexed=not args.naive,
        interned=not args.no_intern,
        schedule=args.schedule,
        compile=args.compile,
        cost_planning=not args.static_plans,
        parallel=args.parallel,
        backend=args.backend,
    )
    try:
        result = evaluator.run(instance)
    finally:
        evaluator.close()
    stats = result.stats
    print(
        f"fixpoint in {stats.steps} step(s); +{stats.facts_added} facts, "
        f"-{stats.facts_deleted}, {stats.oids_invented} oids invented",
        file=sys.stderr,
    )
    if args.stats:
        from repro.values import intern

        plan_total = stats.plan_cache_hits + stats.plan_cache_misses
        live_tuples, live_sets = intern.table_sizes()
        fallbacks = ""
        if stats.compile_fallback_reasons:
            inner = ", ".join(
                f"{reason}: {count}"
                for reason, count in sorted(stats.compile_fallback_reasons.items())
            )
            fallbacks = f" ({inner})"
        print(
            "evaluation stats:\n"
            f"  steps                {stats.steps}\n"
            f"  per-stage steps      {stats.per_stage_steps}\n"
            f"  facts added          {stats.facts_added}\n"
            f"  facts deleted        {stats.facts_deleted}\n"
            f"  oids invented        {stats.oids_invented}\n"
            f"  valuations           {stats.valuations_considered}\n"
            f"  index probes         {stats.index_probes}\n"
            f"  index scans avoided  {stats.index_scans_avoided}\n"
            f"  plan cache           {stats.plan_cache_hits}/{plan_total} hits, "
            f"{stats.plan_cache_entries} entries, "
            f"{stats.plan_cache_evictions} evicted\n"
            f"  plans costed         {stats.plans_costed}\n"
            f"  estimate drifts      {stats.estimate_drifts}\n"
            f"  plan replans         {stats.plan_replans}\n"
            f"  rules compiled       {stats.rules_compiled}\n"
            f"  rules interpreted    {stats.rules_interpreted}\n"
            f"  compile fallbacks    {stats.compile_fallbacks}{fallbacks}\n"
            f"  compile time         {stats.compile_time * 1000:.1f}ms\n"
            f"  kernel cache         {stats.kernel_cache_entries} entries, "
            f"{stats.kernel_cache_evictions} evicted\n"
            f"  intern hits          {stats.intern_hits}\n"
            f"  intern misses        {stats.intern_misses}\n"
            f"  intern live nodes    {live_tuples} tuples, {live_sets} sets\n"
            f"  eq fast paths        {stats.eq_fast_paths}\n"
            f"  strata               {stats.strata}\n"
            f"  rules skipped clean  {stats.rules_skipped_clean}\n"
            f"  schedule fallbacks   {stats.schedule_fallbacks}\n"
            f"  parallel workers     {stats.parallel_workers}"
            f"{' (' + stats.parallel_backend + ')' if stats.parallel_backend else ''}\n"
            f"  parallel strata      {stats.parallel_strata}\n"
            f"  parallel partitioned {stats.parallel_partitioned}\n"
            f"  parallel tasks       {stats.parallel_tasks}\n"
            f"  parallel fallbacks   {stats.parallel_fallbacks}",
            file=sys.stderr,
        )
    text = io.dumps(result.output)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        print(text)
    return 0


def cmd_maintain(args: argparse.Namespace) -> int:
    """The live-fixpoint REPL over :class:`repro.iql.ivm.MaterializedProgram`."""
    import time

    from repro.io import _oid_names, value_from_json, value_to_json
    from repro.iql.ivm import MaterializedProgram
    from repro.values.ovalues import Oid

    program = _load_program(args.program)
    errors = check_program(program)
    if errors:
        for error in errors:
            print(f"type error: {error}", file=sys.stderr)
        return 1
    instance = io.load(args.input).project(program.input_schema)
    evaluator = Evaluator(
        program,
        limits=EvaluatorLimits(max_steps=args.max_steps),
        schedule=True,
        compile=not args.no_compile,
    )
    started = time.perf_counter()
    mp = MaterializedProgram(program, instance, evaluator=evaluator)
    print(
        f"materialized in {(time.perf_counter() - started) * 1000:.1f}ms: "
        f"{mp.instance.fact_count()} facts; strategies: "
        + ", ".join(
            f"{base}:{mp.certificates[(base, 'insert')].strategy}"
            for base in program.input_names
        ),
        file=sys.stderr,
    )
    schema = program.schema

    def parse_value(symbol: str, text: str):
        doc = json.loads(text)
        names = {name: oid for oid, name in _oid_names(mp.instance).items()}
        if schema.is_class(symbol) and isinstance(doc, str):
            return names.get(doc, Oid(doc))
        if isinstance(doc, dict) and set(doc) not in ({"oid"}, {"tuple"}, {"set"}):
            doc = {"tuple": doc}  # REPL shorthand: a bare attribute map
        return value_from_json(doc, names)

    def show_extent(symbol: str) -> None:
        names = _oid_names(mp.instance)
        try:
            extent = mp.extent(symbol)
        except ReproError as exc:
            print(f"error: {exc}")
            return
        docs = [value_to_json(v, names) for v in extent]
        print(json.dumps(sorted(docs, key=json.dumps), default=str))

    source = open(args.script, "r", encoding="utf-8") if args.script else sys.stdin
    try:
        for line in source:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if line in ("quit", "exit"):
                break
            if line == "stats":
                s = mp.stats
                print(
                    f"deltas applied       {s.deltas_applied}\n"
                    f"supports adjusted    {s.supports_adjusted}\n"
                    f"overdeleted          {s.overdeleted}\n"
                    f"rederived            {s.rederived}\n"
                    f"fallbacks            {s.maintenance_fallbacks}\n"
                    f"facts +{s.facts_added} -{s.facts_deleted}"
                )
                continue
            if line == "certs":
                for (base, op), cert in sorted(mp.certificates.items()):
                    print(f"{base} {op}: {cert.strategy}")
                continue
            if line == "output":
                print(io.dumps(mp.output()))
                continue
            if line.startswith("?"):
                show_extent(line[1:].strip())
                continue
            inserts, deletes = [], []
            try:
                for op in line.split(";"):
                    op = op.strip()
                    if not op or op[0] not in "+-":
                        raise ValueError(
                            f"unknown command {op!r} (try +R <value>, -R <value>, "
                            f"?R, stats, certs, output, quit)"
                        )
                    symbol, _, text = op[1:].strip().partition(" ")
                    value = parse_value(symbol, text)
                    (inserts if op[0] == "+" else deletes).append((symbol, value))
                before = (
                    mp.stats.supports_adjusted,
                    mp.stats.overdeleted,
                    mp.stats.rederived,
                    mp.stats.maintenance_fallbacks,
                    mp.stats.deltas_applied,
                )
                t0 = time.perf_counter()
                mp.apply_delta(inserts=inserts, deletes=deletes)
                elapsed = (time.perf_counter() - t0) * 1000
                s = mp.stats
                print(
                    f"ok: {s.deltas_applied - before[4]} net update(s) in "
                    f"{elapsed:.2f}ms (supports {s.supports_adjusted - before[0]:+d}, "
                    f"overdeleted {s.overdeleted - before[1]}, "
                    f"rederived {s.rederived - before[2]}, "
                    f"fallbacks {s.maintenance_fallbacks - before[3]})"
                )
            except (ReproError, ValueError, json.JSONDecodeError) as exc:
                print(f"error: {exc}")
    finally:
        if source is not sys.stdin:
            source.close()
    return 0


def cmd_fmt(args: argparse.Namespace) -> int:
    from repro.parser.unparse import program_to_source

    program = _load_program(args.program)
    print(program_to_source(program))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    instance = io.load(args.instance)
    instance.validate()
    print(f"legal instance: {instance.fact_count()} ground facts")
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.iql.evaluator import evaluate
    from repro.transform.encodings import graph_instance, graph_to_class_program

    edges = {("a", "b"), ("b", "c"), ("c", "a")}
    print(f"input graph: {sorted(edges)}")
    output = evaluate(graph_to_class_program(), graph_instance(edges))
    print("\nExample 1.2 — the graph as mutually-referring objects:")
    print(output)
    print("\nas JSON:")
    print(io.dumps(output))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="type check and classify a program")
    p_check.add_argument("program")
    p_check.add_argument(
        "--json",
        action="store_true",
        help="emit the full analysis report as JSON instead of the text summary",
    )
    p_check.set_defaults(func=cmd_check)

    p_lint = sub.add_parser(
        "lint", help="run all static analyses; non-zero exit on errors"
    )
    p_lint.add_argument("program")
    p_lint.add_argument("--format", choices=["text", "json"], default="text")
    p_lint.add_argument(
        "--strict",
        action="store_true",
        help="treat warning-severity diagnostics as errors (non-zero exit)",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_analyze = sub.add_parser(
        "analyze",
        help="render the per-stage dependency graphs, strata, and schedule",
    )
    p_analyze.add_argument("program")
    p_analyze.add_argument(
        "--format", choices=["text", "json", "dot"], default="text"
    )
    p_analyze.add_argument(
        "--stats",
        action="store_true",
        help="print per-pass analysis timings (lint, effects, depgraph, impact)",
    )
    p_analyze.add_argument(
        "--plans",
        action="store_true",
        help="dump each rule's cost-based body plan with cardinality estimates",
    )
    p_analyze.add_argument(
        "--input",
        help="with --plans: estimate against this JSON instance's cardinalities",
    )
    p_analyze.add_argument(
        "--parallel",
        action="store_true",
        help="render the IQL8xx parallel-safety certificate: conflict "
        "groups, partitionable rules, stratum DAG, runtime-surface audit",
    )
    p_analyze.set_defaults(func=cmd_analyze)

    p_impact = sub.add_parser(
        "impact",
        help="update-impact analysis: affected cones and maintenance certificates",
    )
    p_impact.add_argument("program")
    p_impact.add_argument(
        "--symbol", help="restrict to one updatable base symbol (default: all inputs)"
    )
    p_impact.add_argument(
        "--op",
        choices=["insert", "delete"],
        help="restrict certificates to one update class (default: both)",
    )
    p_impact.add_argument(
        "--format", choices=["text", "json", "dot"], default="text"
    )
    p_impact.set_defaults(func=cmd_impact)

    p_run = sub.add_parser("run", help="evaluate a program on an instance")
    p_run.add_argument("program")
    p_run.add_argument("--input", required=True, help="JSON instance document")
    p_run.add_argument("--output", help="write the output instance here")
    p_run.add_argument("--max-steps", type=int, default=10_000)
    p_run.add_argument(
        "--choose-mode",
        choices=["verify", "trusted", "nondeterministic"],
        default="verify",
    )
    p_run.add_argument(
        "--strict",
        action="store_true",
        help="require the input document's schema to equal Sin exactly",
    )
    p_run.add_argument(
        "--stats",
        action="store_true",
        help="print full evaluation statistics (index probes, plan cache, ...)",
    )
    p_run.add_argument(
        "--naive",
        action="store_true",
        help="disable the indexed/semi-naive join engine (reference semantics)",
    )
    p_run.add_argument(
        "--no-intern",
        action="store_true",
        help="disable o-value hash-consing for this run (A/B escape hatch)",
    )
    p_run.add_argument(
        "--schedule",
        action="store_true",
        help="run one fixpoint per certified dependency stratum (repro analyze)",
    )
    p_run.add_argument(
        "--compile",
        action="store_true",
        help="specialize planned rule bodies into closure kernels "
        "(incompatible with --naive)",
    )
    p_run.add_argument(
        "--parallel",
        type=_parallel_width,
        default=0,
        metavar="N",
        help="run certified stratum batches and partitioned delta rounds "
        "on N workers, or 'auto' for the host's usable CPUs clamped by "
        "the certified width (implies --schedule; serial fallback with a "
        "PreflightWarning on any IQL801-803)",
    )
    p_run.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="parallel worker backend: shared-memory threads, or "
        "shared-nothing processes with per-worker interning and "
        "merge-time re-canonicalization (default: thread)",
    )
    p_run.add_argument(
        "--static-plans",
        action="store_true",
        help="order body literals by the static rank heuristic instead of "
        "the cost model (A/B baseline; disables drift replanning)",
    )
    p_run.set_defaults(func=cmd_run)

    p_maintain = sub.add_parser(
        "maintain",
        help="incremental view maintenance: evaluate once, stream updates",
    )
    p_maintain.add_argument("program")
    p_maintain.add_argument("--input", required=True, help="JSON instance document")
    p_maintain.add_argument("--max-steps", type=int, default=10_000)
    p_maintain.add_argument(
        "--script",
        help="read update commands from this file instead of stdin",
    )
    p_maintain.add_argument(
        "--no-compile",
        action="store_true",
        help="run the maintenance joins interpreted (no closure kernels)",
    )
    p_maintain.set_defaults(func=cmd_maintain)

    p_fmt = sub.add_parser("fmt", help="parse and pretty-print a program")
    p_fmt.add_argument("program")
    p_fmt.set_defaults(func=cmd_fmt)

    p_val = sub.add_parser("validate", help="check an instance document")
    p_val.add_argument("instance")
    p_val.set_defaults(func=cmd_validate)

    p_demo = sub.add_parser("demo", help="run the Example 1.2 pipeline")
    p_demo.set_defaults(func=cmd_demo)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
