"""repro.analysis — the unified static-analysis subsystem (IQL lint).

One entry point, :func:`analyze` (or :func:`analyze_source` for raw
text), runs every static check the repo knows about — well-typedness
(Sections 3.1/3.3), binding hygiene, invention-cycle detection on G(Γ),
dead-code lints, dataflow analysis on the per-stage dependency graph
(:mod:`repro.analysis.depgraph`, built on the per-rule effect summaries
of :mod:`repro.analysis.effects`) — and Definition-5.3 certification,
returning a
:class:`Report` of structured, source-spanned :class:`Diagnostic`
objects with stable ``IQLxxx`` codes. ``repro lint`` is the CLI face of
this package; the raising APIs in :mod:`repro.iql.typecheck` and
:mod:`repro.iql.sublanguages` remain as thin wrappers for programmatic
use.
"""

from repro.analysis.certify import Certificate, certify
from repro.analysis.depgraph import (
    Schedule,
    StageGraph,
    StageSchedule,
    compute_schedule,
    depgraph_pass,
    graphs_to_dot,
    program_graphs,
    render_graphs_text,
    stage_graph,
)
from repro.analysis.effects import RuleEffects, delta_body, rule_effects
from repro.analysis.impact import (
    Hazard,
    ImpactCone,
    SymbolImpact,
    impact_cone,
    impact_pass,
    impact_to_dot,
    program_cones,
    render_impact_text,
)
from repro.analysis.maintenance import (
    COUNTING,
    DRED,
    NOOP,
    RECOMPUTE,
    MaintenanceCertificate,
    build_certificate,
    build_certificates,
    check_certificate,
    classify_cone,
    overall_strategy,
    replay_insert,
    validate_certificate,
)
from repro.analysis.parallel import (
    ParallelCertificate,
    PartitionPlan,
    RuleConflict,
    StagePlan,
    StratumPlan,
    SurfaceCheck,
    audit_runtime_surfaces,
    build_parallel_certificate,
    check_parallel_certificate,
    concurrent_batches,
    parallel_pass,
    parallel_to_dot,
    render_parallel_text,
    validate_parallel_certificate,
)
from repro.analysis.passes import (
    binding_pass,
    certification_pass,
    invention_cycle_pass,
    typecheck_pass,
    unused_pass,
)
from repro.analysis.report import PreflightWarning, Report, analyze, analyze_source
from repro.diagnostics import CODES, Diagnostic, Span, diagnostic, diagnostics_to_json

__all__ = [
    "CODES",
    "COUNTING",
    "Certificate",
    "DRED",
    "Diagnostic",
    "Hazard",
    "ImpactCone",
    "MaintenanceCertificate",
    "NOOP",
    "ParallelCertificate",
    "PartitionPlan",
    "PreflightWarning",
    "RECOMPUTE",
    "Report",
    "RuleConflict",
    "RuleEffects",
    "Schedule",
    "Span",
    "StageGraph",
    "StagePlan",
    "StageSchedule",
    "StratumPlan",
    "SurfaceCheck",
    "SymbolImpact",
    "analyze",
    "analyze_source",
    "audit_runtime_surfaces",
    "binding_pass",
    "build_certificate",
    "build_certificates",
    "build_parallel_certificate",
    "certification_pass",
    "certify",
    "check_certificate",
    "check_parallel_certificate",
    "classify_cone",
    "compute_schedule",
    "concurrent_batches",
    "delta_body",
    "depgraph_pass",
    "diagnostic",
    "diagnostics_to_json",
    "graphs_to_dot",
    "impact_cone",
    "impact_pass",
    "impact_to_dot",
    "invention_cycle_pass",
    "overall_strategy",
    "parallel_pass",
    "parallel_to_dot",
    "program_cones",
    "program_graphs",
    "render_graphs_text",
    "render_impact_text",
    "render_parallel_text",
    "replay_insert",
    "rule_effects",
    "stage_graph",
    "typecheck_pass",
    "unused_pass",
    "validate_certificate",
    "validate_parallel_certificate",
]
