"""repro.analysis — the unified static-analysis subsystem (IQL lint).

One entry point, :func:`analyze` (or :func:`analyze_source` for raw
text), runs every static check the repo knows about — well-typedness
(Sections 3.1/3.3), binding hygiene, invention-cycle detection on G(Γ),
dead-code lints — and Definition-5.3 certification, returning a
:class:`Report` of structured, source-spanned :class:`Diagnostic`
objects with stable ``IQLxxx`` codes. ``repro lint`` is the CLI face of
this package; the raising APIs in :mod:`repro.iql.typecheck` and
:mod:`repro.iql.sublanguages` remain as thin wrappers for programmatic
use.
"""

from repro.analysis.certify import Certificate, certify
from repro.analysis.passes import (
    binding_pass,
    certification_pass,
    invention_cycle_pass,
    typecheck_pass,
    unused_pass,
)
from repro.analysis.report import PreflightWarning, Report, analyze, analyze_source
from repro.diagnostics import CODES, Diagnostic, Span, diagnostic, diagnostics_to_json

__all__ = [
    "CODES",
    "Certificate",
    "Diagnostic",
    "PreflightWarning",
    "Report",
    "Span",
    "analyze",
    "analyze_source",
    "binding_pass",
    "certification_pass",
    "certify",
    "diagnostic",
    "diagnostics_to_json",
    "invention_cycle_pass",
    "typecheck_pass",
    "unused_pass",
]
