"""Program certification: where a program sits in the Section-5 hierarchy.

The certificate condenses :func:`repro.iql.sublanguages.classify` into the
stamps a tool (or a CI gate) wants to assert on: the sublanguage class
``IQLrr`` / ``IQLpr`` / ``unrestricted`` (Definitions 5.1-5.3), plus the
two freedom properties — *invention-free* and *recursion-free* — that
Definition 5.3 lets each stage trade off, reported here only when they
hold for **every** stage. ``IQLrr``/``IQLpr`` certify PTIME data
complexity (Theorem 5.4); ``unrestricted`` programs carry no guarantee
and may diverge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.iql.program import Program
from repro.iql.sublanguages import SublanguageReport, classify


@dataclass(frozen=True)
class Certificate:
    """The analysis layer's stamp on one program."""

    sublanguage: str  # "IQLrr" | "IQLpr" | "unrestricted"
    invention_free: bool
    recursion_free: bool
    uses_choose: bool
    uses_deletion: bool
    stage_count: int
    rule_count: int

    @property
    def ptime(self) -> bool:
        """Does the certificate guarantee PTIME data complexity?"""
        return self.sublanguage in ("IQLrr", "IQLpr")

    @property
    def stamps(self) -> Tuple[str, ...]:
        """The stamp set: sublanguage class plus program-wide freedoms."""
        out = [self.sublanguage]
        if self.invention_free:
            out.append("invention-free")
        if self.recursion_free:
            out.append("recursion-free")
        return tuple(out)

    def summary(self) -> str:
        features = []
        if self.uses_choose:
            features.append("choose (IQL+)")
        if self.uses_deletion:
            features.append("deletion (IQL*)")
        suffix = f"; features: {', '.join(features)}" if features else ""
        return (
            f"{', '.join(self.stamps)}"
            f" ({'PTIME data complexity' if self.ptime else 'no PTIME guarantee'})"
            f"{suffix}"
        )

    def to_json(self) -> dict:
        return {
            "sublanguage": self.sublanguage,
            "stamps": list(self.stamps),
            "ptime": self.ptime,
            "invention_free": self.invention_free,
            "recursion_free": self.recursion_free,
            "uses_choose": self.uses_choose,
            "uses_deletion": self.uses_deletion,
            "stages": self.stage_count,
            "rules": self.rule_count,
        }


def certify(program: Program, report: Optional[SublanguageReport] = None) -> Certificate:
    """Stamp ``program``; ``report`` reuses an existing classification."""
    if report is None:
        report = classify(program)
    if report.is_iql_rr:
        sublanguage = "IQLrr"
    elif report.is_iql_pr:
        sublanguage = "IQLpr"
    else:
        sublanguage = "unrestricted"
    return Certificate(
        sublanguage=sublanguage,
        invention_free=all(stage.invention_free for stage in report.stages),
        recursion_free=all(stage.recursion_free for stage in report.stages),
        uses_choose=program.uses_choose(),
        uses_deletion=program.uses_deletion(),
        stage_count=len(program.stages),
        rule_count=len(program.rules),
    )
