"""Per-stage dependency graphs, SCC strata, and the certified schedule.

For each stage this module builds the polarity-labelled predicate
dependency graph over the symbols of :mod:`repro.analysis.effects`
(relation names, class extents ``P``, value planes ``^P``): a *dependency
edge* runs from every symbol a rule reads to every symbol it writes,
labelled by how the read is observed (monotone-enabling vs
negation/snapshot), and *coupling edges* tie together the symbols one
rule writes simultaneously (its head symbol and its invention targets),
because no schedule can separate their growth.

The SCC condensation of that graph, in topological order, yields the
stage's *strata*: each rule belongs to the SCC of its writes (coupling
makes that unique), and solving one inflationary fixpoint per stratum in
order is equivalent to the paper's single fixpoint over the whole stage —
*provided* the stage is free of the order-sensitive constructs the
inflationary semantics exposes. :func:`compute_schedule` certifies
exactly that, falling back to the monolithic fixpoint (per stage) when:

* a rule deletes (IQL*) or chooses (IQL+) — both observe global state,
* a rule's variables are not range-restricted — evaluation may enumerate
  type interpretations over ``constants(I)``, which any write grows,
* negation occurs inside a recursive SCC (``IQL601`` — the stage is not
  stratified, so the reader and writer cannot be ordered),
* a negation or snapshot read observes *any* stage-written symbol — under
  inflationary semantics a rule may fire off an early partial state and
  keep the fact, which a stratified run would never derive,
* a (★) weak-assignment rule reads a stage-written symbol — whether an
  assignment sticks depends on which step derived it, so firing times
  must not be re-arranged.

An SCC is *recursive* when a dependency edge (not merely a coupling edge)
connects two of its members — every edge inside an SCC lies on a cycle,
so this is exactly "some rule's output feeds its own input".

The diagnostics (``IQL601``–``IQL604``) and the schedule both derive
from the same :class:`StageGraph`, which is what makes the schedule a
*certificate*: ``Evaluator(schedule=True)`` optimizes exactly the stages
the analysis proves re-orderable, and is bit-identical to the monolithic
engine everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.effects import (
    RuleEffects,
    is_plane,
    plane,
    rule_effects,
)
from repro.diagnostics import Diagnostic, diagnostic
from repro.iql.program import Program
from repro.iql.rules import Rule
from repro.iql.sublanguages import is_range_restricted
from repro.schema.schema import Schema


@dataclass(frozen=True)
class DepEdge:
    """One edge of a stage graph. ``positive`` is the read polarity
    (False for negation/snapshot reads); ``coupling`` marks write-write
    ties, which carry no polarity of their own."""

    src: str
    dst: str
    positive: bool
    coupling: bool = False

    def to_json(self) -> dict:
        kind = "coupling" if self.coupling else ("positive" if self.positive else "negative")
        return {"src": self.src, "dst": self.dst, "kind": kind}


@dataclass
class StageGraph:
    """The dependency structure of one stage, fully condensed."""

    index: int  # 0-based stage index
    rules: Tuple[Rule, ...]
    effects: Tuple[RuleEffects, ...]
    nodes: Tuple[str, ...]
    edges: Tuple[DepEdge, ...]
    sccs: Tuple[Tuple[str, ...], ...]  # topological order, members sorted
    scc_of: Dict[str, int]
    recursive: Tuple[bool, ...]  # SCC has an internal dependency edge
    negative_recursive: Tuple[bool, ...]  # ... a negative one (IQL601)
    rule_scc: Tuple[int, ...]  # rule index -> SCC index of its writes
    strata: Tuple[Tuple[int, ...], ...]  # rule indexes per rule-bearing SCC

    @property
    def writes(self) -> FrozenSet[str]:
        out: Set[str] = set()
        for eff in self.effects:
            if not eff.is_delete:
                out |= eff.writes
        return frozenset(out)

    def strata_rules(self) -> List[List[Rule]]:
        return [[self.rules[i] for i in stratum] for stratum in self.strata]

    def to_json(self) -> dict:
        return {
            "stage": self.index + 1,
            "nodes": list(self.nodes),
            "edges": [e.to_json() for e in sorted(
                self.edges, key=lambda e: (e.src, e.dst, e.coupling, not e.positive)
            )],
            "sccs": [
                {
                    "members": list(scc),
                    "recursive": self.recursive[i],
                    "negative_recursive": self.negative_recursive[i],
                }
                for i, scc in enumerate(self.sccs)
            ],
            "strata": [
                [self.rules[i].display_label() for i in stratum]
                for stratum in self.strata
            ],
            "effects": [eff.to_json() for eff in self.effects],
        }


def _tarjan(nodes: Sequence[str], successors: Dict[str, Set[str]]) -> List[List[str]]:
    """Iterative Tarjan: SCCs in *reverse* topological order."""
    index_of: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for root in nodes:
        if root in index_of:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index_of[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            succs = sorted(successors.get(node, ()))
            for next_index in range(child_index, len(succs)):
                succ = succs[next_index]
                if succ not in index_of:
                    work.append((node, next_index + 1))
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            if low[node] == index_of[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def stage_graph(
    rules: Sequence[Rule], schema: Optional[Schema] = None, index: int = 0
) -> StageGraph:
    """Build the condensed dependency graph of one stage."""
    rules = tuple(rules)
    effects = tuple(rule_effects(rule, schema) for rule in rules)

    nodes: Set[str] = set()
    dep_edges: Dict[Tuple[str, str], bool] = {}  # (src, dst) -> all-positive?
    coupling: Set[Tuple[str, str]] = set()
    for eff in effects:
        nodes |= eff.reads | eff.writes
        for dst in eff.writes:
            for src in eff.positive_reads:
                dep_edges.setdefault((src, dst), True)
            for src in eff.nonmonotone_reads:
                dep_edges[(src, dst)] = False
        writes = sorted(eff.writes)
        for i, a in enumerate(writes):
            for b in writes[i + 1:]:
                coupling.add((a, b))
                coupling.add((b, a))

    successors: Dict[str, Set[str]] = {node: set() for node in nodes}
    for src, dst in dep_edges:
        successors[src].add(dst)
    for src, dst in coupling:
        successors[src].add(dst)

    sccs = [tuple(c) for c in reversed(_tarjan(sorted(nodes), successors))]
    scc_of = {node: i for i, scc in enumerate(sccs) for node in scc}

    recursive = [False] * len(sccs)
    negative_recursive = [False] * len(sccs)
    for (src, dst), positive in dep_edges.items():
        if scc_of[src] == scc_of[dst]:
            recursive[scc_of[src]] = True
            if not positive:
                negative_recursive[scc_of[src]] = True

    rule_scc: List[int] = []
    for eff in effects:
        owners = {scc_of[w] for w in eff.writes}
        # Coupling edges merge all of a rule's writes into one SCC.
        assert len(owners) == 1, f"rule writes span SCCs: {sorted(eff.writes)}"
        rule_scc.append(owners.pop())
    strata = tuple(
        tuple(r for r, owner in enumerate(rule_scc) if owner == i)
        for i in range(len(sccs))
        if any(owner == i for owner in rule_scc)
    )

    edges = tuple(
        [DepEdge(src, dst, positive) for (src, dst), positive in dep_edges.items()]
        + [DepEdge(src, dst, True, coupling=True) for src, dst in coupling]
    )
    return StageGraph(
        index=index,
        rules=rules,
        effects=effects,
        nodes=tuple(sorted(nodes)),
        edges=edges,
        sccs=tuple(sccs),
        scc_of=scc_of,
        recursive=tuple(recursive),
        negative_recursive=tuple(negative_recursive),
        rule_scc=tuple(rule_scc),
        strata=strata,
    )


def program_graphs(program: Program, schema: Optional[Schema] = None) -> List[StageGraph]:
    """One :class:`StageGraph` per stage of ``program``."""
    schema = schema if schema is not None else program.schema
    return [
        stage_graph(stage, schema, index)
        for index, stage in enumerate(program.stages)
    ]


# -- the IQL6xx dataflow pass -------------------------------------------------------


def depgraph_pass(
    program: Program,
    schema: Optional[Schema] = None,
    graphs: Optional[List[StageGraph]] = None,
) -> List[Diagnostic]:
    """Dataflow diagnostics over the per-stage dependency graphs.

    * ``IQL601`` — negation inside a recursive SCC: the stage cannot be
      stratified, so the scheduled engine must fall back,
    * ``IQL602`` — a rule gated on a symbol that is empty at stage entry
      and written by no (transitively live) rule: it can never fire,
    * ``IQL603`` — oid invention inside a recursive SCC: creation can
      feed its own enabling condition (the Section 5 divergence),
    * ``IQL604`` — invention confined to non-recursive SCCs: the number
      of invented oids is polynomial in the stage's input (info).
    """
    schema = schema if schema is not None else program.schema
    if graphs is None:
        graphs = program_graphs(program, schema)
    out: List[Diagnostic] = []

    available: Set[str] = set()
    for name in program.input_names:
        available.add(name)
        if schema.is_class(name):
            available.add(plane(name))

    for graph in graphs:
        stage_no = graph.index + 1

        # IQL601: a negative dependency edge inside an SCC.
        for scc_index, scc in enumerate(graph.sccs):
            if not graph.negative_recursive[scc_index]:
                continue
            witness = next(
                (
                    graph.rules[r]
                    for r, eff in enumerate(graph.effects)
                    if graph.rule_scc[r] == scc_index
                    and eff.nonmonotone_reads & set(scc)
                ),
                graph.rules[0],
            )
            out.append(
                diagnostic(
                    "IQL601",
                    f"stage {stage_no} reads {{{', '.join(scc)}}} under negation "
                    f"inside the same recursive SCC; the stage is not stratified "
                    f"and only the monolithic fixpoint is sound",
                    span=witness.span,
                    rule_label=witness.display_label(),
                )
            )

        # IQL602: liveness fixpoint — a rule is live when every gating
        # read is available (input, written earlier, or written by a live
        # rule of this stage).
        live: Set[int] = set()
        live_writes: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for r, eff in enumerate(graph.effects):
                if r in live:
                    continue
                if eff.gating_reads <= available | live_writes:
                    live.add(r)
                    if not eff.is_delete:
                        live_writes |= eff.writes
                    changed = True
        for r, eff in enumerate(graph.effects):
            if r in live:
                continue
            missing = sorted(eff.gating_reads - available - live_writes)
            rule = graph.rules[r]
            out.append(
                diagnostic(
                    "IQL602",
                    f"rule can never fire: {', '.join(missing)} "
                    f"{'is' if len(missing) == 1 else 'are'} empty at stage "
                    f"{stage_no} entry and written by no earlier rule",
                    span=rule.span,
                    rule_label=rule.display_label(),
                )
            )
        available |= live_writes

        # IQL603 / IQL604: where does invention sit relative to recursion?
        inventors = [
            r for r, eff in enumerate(graph.effects) if eff.invention_classes
        ]
        recursive_inventors = [
            r for r in inventors if graph.recursive[graph.rule_scc[r]]
        ]
        for r in recursive_inventors:
            rule, eff = graph.rules[r], graph.effects[r]
            scc = graph.sccs[graph.rule_scc[r]]
            out.append(
                diagnostic(
                    "IQL603",
                    f"stage {stage_no} invents oids (into "
                    f"{', '.join(sorted(eff.invention_classes))}) inside the "
                    f"recursive SCC {{{', '.join(scc)}}}; oid creation can "
                    f"re-enable itself and the fixpoint may diverge",
                    span=rule.span,
                    rule_label=rule.display_label(),
                )
            )
        if inventors and not recursive_inventors:
            degree = max(
                sum(1 for lit in graph.rules[r].body if lit.positive)
                for r in inventors
            )
            bound = f"O(n^{degree})" if degree else "O(1)"
            out.append(
                diagnostic(
                    "IQL604",
                    f"stage {stage_no} invention is recursion-free: every "
                    f"inventing rule sits outside the recursive SCCs, so it "
                    f"fires at most once per body valuation and invents "
                    f"{bound} oids in the size of the stage input",
                )
            )
    return out


# -- the certified schedule ---------------------------------------------------------


@dataclass(frozen=True)
class StageSchedule:
    """How the evaluator should run one stage: SCC strata in topological
    order, or ``None`` with the reason the monolithic fixpoint is
    required."""

    index: int
    strata: Optional[Tuple[Tuple[Rule, ...], ...]]
    fallback_reason: Optional[str] = None

    @property
    def scheduled(self) -> bool:
        return self.strata is not None

    def to_json(self) -> dict:
        if self.strata is not None:
            return {
                "stage": self.index + 1,
                "strata": [len(stratum) for stratum in self.strata],
            }
        return {"stage": self.index + 1, "fallback": self.fallback_reason}


@dataclass(frozen=True)
class Schedule:
    """The full program schedule, one entry per stage."""

    stages: Tuple[StageSchedule, ...]

    @property
    def fully_scheduled(self) -> bool:
        return all(stage.scheduled for stage in self.stages)

    @property
    def stratum_count(self) -> int:
        return sum(len(s.strata) for s in self.stages if s.strata is not None)

    def to_json(self) -> List[dict]:
        return [stage.to_json() for stage in self.stages]


def _stage_fallback(graph: StageGraph) -> Optional[str]:
    """Why this stage must run as one monolithic fixpoint, or ``None``."""
    for eff in graph.effects:
        if eff.is_delete:
            return "IQL* deletion: steps are not monotone"
        if eff.has_choose:
            return "IQL+ choose observes the whole instance (genericity)"
    for rule in graph.rules:
        if not is_range_restricted(rule):
            return (
                "a rule may enumerate type interpretations over constants(I), "
                "which every stage write grows"
            )
    for scc_index, scc in enumerate(graph.sccs):
        if graph.negative_recursive[scc_index]:
            return f"IQL601: negation inside the recursive SCC {{{', '.join(scc)}}}"
    stage_writes = graph.writes
    for r_index, eff in enumerate(graph.effects):
        hazardous = eff.nonmonotone_reads & stage_writes
        if hazardous:
            return (
                f"non-monotone read of stage-written "
                f"{', '.join(sorted(hazardous))}: inflationary firings are "
                f"order-sensitive"
            )
        if eff.is_assignment and eff.reads & stage_writes:
            return (
                "a weak-assignment (★) rule reads stage-written symbols: "
                "whether an assignment sticks depends on firing times"
            )
        if eff.invention_classes:
            # The valuation-domain blocking condition of an inventing rule
            # is a negated existential read of its head symbol: how many
            # oids it invents depends on *when* each body valuation first
            # becomes enabled relative to the head's growth. Timing is
            # schedule-invariant only when the rule's enablement is fixed
            # for the whole stage and nothing else grows its head.
            if eff.reads & stage_writes:
                return (
                    f"oid-inventing rule reads stage-written "
                    f"{', '.join(sorted(eff.reads & stage_writes))}: its "
                    f"blocking condition makes invention counts depend on "
                    f"firing times"
                )
            for o_index, other in enumerate(graph.effects):
                if (
                    o_index != r_index
                    and not other.is_delete
                    and other.writes & eff.writes
                ):
                    return (
                        f"{', '.join(sorted(other.writes & eff.writes))} is "
                        f"written both by an oid-inventing rule and by "
                        f"another rule: the inventing rule's blocking "
                        f"condition is order-sensitive"
                    )
    return None


def compute_schedule(program: Program, schema: Optional[Schema] = None) -> Schedule:
    """Certify a per-stage schedule for ``program``.

    Each schedulable stage is decomposed into its SCC strata; every other
    stage carries the reason it must stay monolithic. The scheduled run
    is equivalent to the monolithic one by construction: strata only
    re-order firings whose enabling reads are proved monotone.
    """
    schema = schema if schema is not None else program.schema
    stages: List[StageSchedule] = []
    for graph in program_graphs(program, schema):
        reason = _stage_fallback(graph)
        if reason is not None:
            stages.append(StageSchedule(graph.index, None, reason))
        else:
            stages.append(
                StageSchedule(
                    graph.index,
                    tuple(tuple(stratum) for stratum in graph.strata_rules()),
                )
            )
    return Schedule(tuple(stages))


# -- renderings ---------------------------------------------------------------------


def render_graphs_text(
    graphs: Sequence[StageGraph], schedule: Optional[Schedule] = None
) -> str:
    """The ``repro analyze`` text listing: per stage, the graph, its
    condensation, the strata, and every rule's effect summary."""
    lines: List[str] = []
    for graph in graphs:
        lines.append(f"stage {graph.index + 1}:")
        dep = sorted(
            (e for e in graph.edges if not e.coupling), key=lambda e: (e.src, e.dst)
        )
        lines.append(f"  symbols: {', '.join(graph.nodes)}")
        for edge in dep:
            arrow = "→" if edge.positive else "−→"  # negated/snapshot reads
            lines.append(f"    {edge.src} {arrow} {edge.dst}")
        for i, scc in enumerate(graph.sccs):
            mark = ""
            if graph.negative_recursive[i]:
                mark = "  [recursive, negated]"
            elif graph.recursive[i]:
                mark = "  [recursive]"
            lines.append(f"  scc {i + 1}: {{{', '.join(scc)}}}{mark}")
        for i, stratum in enumerate(graph.strata):
            labels = [graph.rules[r].display_label() for r in stratum]
            lines.append(f"  stratum {i + 1}: {'; '.join(labels)}")
        for r, eff in enumerate(graph.effects):
            lines.append(f"  rule {graph.rules[r].display_label()}")
            lines.append(f"    {eff.summary()}")
        if schedule is not None:
            stage_schedule = schedule.stages[graph.index]
            if stage_schedule.strata is not None:
                lines.append(
                    f"  schedule: {len(stage_schedule.strata)} "
                    f"stratum/strata (certified)"
                )
            else:
                lines.append(
                    f"  schedule: monolithic fallback — {stage_schedule.fallback_reason}"
                )
    return "\n".join(lines)


def graphs_to_dot(graphs: Sequence[StageGraph]) -> str:
    """GraphViz DOT output: one cluster per stage, dashed red edges for
    negation/snapshot reads, dotted edges for write couplings, doubled
    borders on recursive-SCC members."""
    lines = ["digraph depgraph {", "  rankdir=LR;", "  node [shape=box];"]
    for graph in graphs:
        prefix = f"s{graph.index}_"

        def node_id(symbol: str, prefix: str = prefix) -> str:
            return prefix + symbol.replace("^", "hat_")

        lines.append(f"  subgraph cluster_stage{graph.index + 1} {{")
        lines.append(f'    label="stage {graph.index + 1}";')
        for symbol in graph.nodes:
            scc_index = graph.scc_of[symbol]
            attrs = [f'label="{symbol}"']
            if graph.recursive[scc_index]:
                attrs.append("peripheries=2")
            if is_plane(symbol):
                attrs.append("style=rounded")
            lines.append(f"    {node_id(symbol)} [{', '.join(attrs)}];")
        for edge in sorted(
            graph.edges, key=lambda e: (e.coupling, e.src, e.dst)
        ):
            attrs = []
            if edge.coupling:
                attrs.append("style=dotted")
                attrs.append("dir=none")
            elif not edge.positive:
                attrs.append("style=dashed")
                attrs.append("color=red")
            suffix = f" [{', '.join(attrs)}]" if attrs else ""
            lines.append(f"    {node_id(edge.src)} -> {node_id(edge.dst)}{suffix};")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
