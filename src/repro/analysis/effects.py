"""Per-rule effect summaries: what a rule reads, writes, and invents.

This module is the single source of truth for literal polarity and
read/write-set extraction. It unifies the ad-hoc read-set derivation that
used to live in :mod:`repro.analysis.passes` (``_rule_reads``) with the
name-mention tests re-derived inside :mod:`repro.iql.seminaive`, and it
feeds the per-stage dependency graphs of
:mod:`repro.analysis.depgraph`.

Symbols are the nodes of the paper's dependency graph G(Γ), generalized
per its footnote 6: a relation name ``R``, a class *extent* ``P``, or a
class *value plane* ``^P`` (the ν entries of P's oids — grown by ``x̂(t)``
and ``x̂ = t`` heads, never by rules that only grow the extent).

Reads are split by how the inflationary fixpoint may observe them:

* ``positive_reads`` — *monotone-enabling* reads: a positive membership
  over a name or deref container, the class extents enumerated by a
  variable's type, and dereferences of non-set-valued oids in value
  position (ν is written at most once per such oid, by the (★) rule, so
  once a binding exists it never changes).
* ``negative_reads`` — reads under a negative literal: more facts can
  only make the literal *falser*.
* ``extension_reads`` — snapshot reads: a relation/class *name in value
  position* (its value is the whole current extension) and dereferences
  of set-valued oids in value position (ν(o) keeps growing). A fact
  derived from such a read embeds the state of the symbol at firing
  time, so it is order-sensitive exactly like negation.

``gating_reads`` are the subset of positive reads whose emptiness makes
the rule unsatisfiable (containers of positive body memberships) — the
input to the ``IQL602`` dead-at-entry analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.iql.literals import Choose, Equality, Literal, Membership
from repro.iql.rules import Rule
from repro.iql.terms import Deref, NameTerm, SetTerm, Term, TupleTerm, Var
from repro.schema.schema import Schema
from repro.typesys.expressions import ClassRef, SetOf


# -- symbol naming ------------------------------------------------------------------


def plane(class_name: str) -> str:
    """The value-plane symbol ``^P`` of class ``P``."""
    return f"^{class_name}"


def is_plane(symbol: str) -> bool:
    return symbol.startswith("^")


def plane_class(symbol: str) -> str:
    """The class name behind a symbol: ``^P`` → ``P``, anything else as-is."""
    return symbol[1:] if symbol.startswith("^") else symbol


def head_symbol(rule: Rule) -> str:
    """The paper's "leftmost symbol" of a rule, footnote-6 generalized.

    ``R``/``P`` for relation/class heads, ``^P`` for value heads ``x̂(t)``
    and ``x̂ = t`` (they grow ν, not the extent π).
    """
    name = rule.head_name()
    if name is not None:
        return name
    deref = rule.head_deref()
    if deref is not None:
        return plane(deref.var.type.name)
    raise ValueError(f"cannot determine the head symbol of {rule!r}")


# -- term walking -------------------------------------------------------------------


def literal_terms(literal: Literal) -> Iterator[Term]:
    """The top-level terms of a membership or equality literal."""
    if isinstance(literal, Membership):
        yield literal.container
        yield literal.element
    elif isinstance(literal, Equality):
        yield literal.left
        yield literal.right


def walk_term(term: Term) -> Iterator[Term]:
    """``term`` and every sub-term, dereferenced variables included."""
    yield term
    if isinstance(term, SetTerm):
        for sub in term.terms:
            yield from walk_term(sub)
    elif isinstance(term, TupleTerm):
        for _, sub in term.fields:
            yield from walk_term(sub)
    elif isinstance(term, Deref):
        yield term.var


def mentions_name(term: Term) -> bool:
    """Does ``term`` contain a relation/class name term at any depth?

    A name term evaluates to the *current* extension, so any literal whose
    truth depends on one through a value position is instance-dependent in
    a way delta rewritings and schedules cannot treat as monotone.
    """
    if isinstance(term, NameTerm):
        return True
    if isinstance(term, SetTerm):
        return any(mentions_name(sub) for sub in term.terms)
    if isinstance(term, TupleTerm):
        return any(mentions_name(sub) for _, sub in term.fields)
    return False


def term_names(term: Term) -> FrozenSet[str]:
    """All relation/class names mentioned anywhere inside ``term``."""
    return frozenset(
        sub.name for sub in walk_term(term) if isinstance(sub, NameTerm)
    )


# -- the effect summary -------------------------------------------------------------


@dataclass(frozen=True)
class RuleEffects:
    """What one rule consumes and produces, per dependency-graph symbol."""

    rule: Rule
    positive_reads: FrozenSet[str]
    negative_reads: FrozenSet[str]
    extension_reads: FrozenSet[str]
    gating_reads: FrozenSet[str]
    writes: FrozenSet[str]
    invention_classes: FrozenSet[str]
    schema_reads: FrozenSet[str]
    is_delete: bool
    has_choose: bool
    is_assignment: bool

    @property
    def reads(self) -> FrozenSet[str]:
        """Every symbol whose state can influence this rule's firings."""
        return self.positive_reads | self.negative_reads | self.extension_reads

    @property
    def nonmonotone_reads(self) -> FrozenSet[str]:
        """Reads whose observation is order-sensitive under the
        inflationary semantics: negation and whole-extension snapshots."""
        return self.negative_reads | self.extension_reads

    @property
    def mentions(self) -> FrozenSet[str]:
        """Every schema name this rule touches at all (for dead-code lints)."""
        out = set(self.schema_reads) | self.invention_classes
        for symbol in self.writes:
            out.add(plane_class(symbol))
        return frozenset(out)

    def summary(self) -> str:
        def fmt(symbols: FrozenSet[str]) -> str:
            return "{" + ", ".join(sorted(symbols)) + "}" if symbols else "∅"

        parts = [f"reads+ {fmt(self.positive_reads)}"]
        if self.negative_reads:
            parts.append(f"reads− {fmt(self.negative_reads)}")
        if self.extension_reads:
            parts.append(f"reads≡ {fmt(self.extension_reads)}")
        parts.append(f"writes {fmt(self.writes)}")
        if self.invention_classes:
            parts.append(f"invents {fmt(self.invention_classes)}")
        if self.is_delete:
            parts.append("deletes")
        if self.has_choose:
            parts.append("chooses")
        if self.is_assignment:
            parts.append("assigns (★)")
        return "; ".join(parts)

    def to_json(self) -> dict:
        return {
            "rule": self.rule.display_label(),
            "reads_positive": sorted(self.positive_reads),
            "reads_negative": sorted(self.negative_reads),
            "reads_extension": sorted(self.extension_reads),
            "gating_reads": sorted(self.gating_reads),
            "writes": sorted(self.writes),
            "invents": sorted(self.invention_classes),
            "delete": self.is_delete,
            "choose": self.has_choose,
            "assignment": self.is_assignment,
        }


def _set_valued(schema: Optional[Schema], class_name: str) -> bool:
    if schema is None:
        return True  # unknown content type: assume the hazardous case
    return isinstance(schema.classes.get(class_name), SetOf)


def _value_reads(
    term: Term,
    schema: Optional[Schema],
    positive_literal: bool,
    skip: FrozenSet[Var],
    positive: Set[str],
    negative: Set[str],
    extension: Set[str],
) -> None:
    """Classify the reads of ``term`` used in *value position*."""
    for sub in walk_term(term):
        if isinstance(sub, NameTerm):
            # A name in value position reads the whole current extension.
            (extension if positive_literal else negative).add(sub.name)
        elif isinstance(sub, Var) and sub not in skip:
            # The variable's enumeration domain: class extents only ever
            # grow, so this is monotone-enabling even under negation.
            positive.update(sub.type.class_names())
        elif isinstance(sub, Deref):
            symbol = plane(sub.var.type.name)
            if not positive_literal:
                negative.add(symbol)
            elif _set_valued(schema, sub.var.type.name):
                extension.add(symbol)  # ν(o) keeps growing: snapshot read
            else:
                positive.add(symbol)  # (★)-assigned at most once: enabling


def rule_effects(rule: Rule, schema: Optional[Schema] = None) -> RuleEffects:
    """The effect summary of one rule.

    ``schema`` refines set-valuedness of dereferenced classes (without it
    every deref in value position is conservatively a snapshot read).
    """
    positive: Set[str] = set()
    negative: Set[str] = set()
    extension: Set[str] = set()
    gating: Set[str] = set()
    has_choose = rule.has_choose()
    invention = rule.invention_variables() if not has_choose else frozenset()

    for literal in rule.body:
        if isinstance(literal, Choose):
            continue
        if isinstance(literal, Membership):
            container = literal.container
            if isinstance(container, NameTerm):
                if literal.positive:
                    positive.add(container.name)
                    gating.add(container.name)
                else:
                    negative.add(container.name)
            elif isinstance(container, Deref):
                symbol = plane(container.var.type.name)
                positive.update(container.var.type.class_names())
                if literal.positive:
                    positive.add(symbol)
                    gating.add(symbol)
                else:
                    negative.add(symbol)
            else:
                _value_reads(
                    container, schema, literal.positive, frozenset(),
                    positive, negative, extension,
                )
            _value_reads(
                literal.element, schema, literal.positive, frozenset(),
                positive, negative, extension,
            )
        elif isinstance(literal, Equality):
            for side in (literal.left, literal.right):
                _value_reads(
                    side, schema, literal.positive, frozenset(),
                    positive, negative, extension,
                )

    # Head: the write target plus any values *read* while deriving.
    head = rule.head
    writes: Set[str] = {head_symbol(rule)}
    for var in invention:
        if isinstance(var.type, ClassRef):
            writes.add(var.type.name)
    is_assignment = isinstance(head, Equality) and not rule.delete
    head_values: List[Term] = []
    if isinstance(head, Membership):
        head_values.append(head.element)
        if isinstance(head.container, Deref):
            positive.update(head.container.var.type.class_names())
    elif isinstance(head, Equality):
        head_values.append(head.right)
        if isinstance(head.left, Deref):
            positive.update(head.left.var.type.class_names())
    for term in head_values:
        _value_reads(
            term, schema, True, frozenset(invention),
            positive, negative, extension,
        )

    return RuleEffects(
        rule=rule,
        positive_reads=frozenset(positive),
        negative_reads=frozenset(negative),
        extension_reads=frozenset(extension),
        gating_reads=frozenset(gating),
        writes=frozenset(writes),
        invention_classes=frozenset(
            var.type.name for var in invention if isinstance(var.type, ClassRef)
        ),
        schema_reads=schema_reads(rule),
        is_delete=rule.delete,
        has_choose=has_choose,
        is_assignment=is_assignment,
    )


def schema_reads(rule: Rule) -> FrozenSet[str]:
    """Every plain schema name a rule consumes: names in its body, names
    read in head terms, and the classes of its (non-invention) variable
    types — the dead-code lint's notion of "read"."""
    reads: Set[str] = set()
    invention = rule.invention_variables()
    for literal in rule.body:
        for top in literal_terms(literal):
            for term in walk_term(top):
                if isinstance(term, NameTerm):
                    reads.add(term.name)
                elif isinstance(term, Var):
                    reads |= term.type.class_names()
    head = rule.head
    head_terms: List[Term] = []
    if isinstance(head, Membership):
        head_terms.append(head.element)
        if isinstance(head.container, Deref):
            head_terms.append(head.container)
    elif isinstance(head, Equality):
        head_terms.extend([head.left, head.right])
    for top in head_terms:
        for term in walk_term(top):
            if isinstance(term, NameTerm):
                reads.add(term.name)
            elif isinstance(term, Var) and term not in invention:
                reads |= term.type.class_names()
    return frozenset(reads)


# -- delta-rewriting body classification --------------------------------------------


@dataclass(frozen=True)
class DeltaBody:
    """The body of a rule as the semi-naive rewriting sees it.

    ``relation_positions`` index the delta-driven generators (positive
    memberships over relation names); ``constant_generators`` are positive
    memberships whose container is constant within an eligible stage
    (class extents, dereferences); ``equalities`` the positive equality
    binders. ``None`` from :func:`delta_body` means the rule's body shape
    is outside the delta-rewritable fragment.
    """

    relation_positions: Tuple[int, ...]
    relation_generators: Tuple[Membership, ...]
    constant_generators: Tuple[Membership, ...]
    equalities: Tuple[Equality, ...]


def delta_body(rule: Rule, schema: Schema) -> Optional[DeltaBody]:
    """Classify ``rule``'s body literals for the delta rewriting.

    Returns ``None`` when any literal falls outside the fragment: a name
    term in value position (the element of a membership or a side of an
    equality — its value is the *growing* extension), a non-name container
    that mentions a name, or a literal kind the rewriting does not know.
    """
    relation_positions: List[int] = []
    relation_generators: List[Membership] = []
    constant_generators: List[Membership] = []
    equalities: List[Equality] = []
    for position, literal in enumerate(rule.body):
        if isinstance(literal, Membership):
            if mentions_name(literal.element):
                return None  # e.g. R(S): the element is a growing extension
            if isinstance(literal.container, NameTerm):
                if literal.positive and schema.is_relation(literal.container.name):
                    relation_positions.append(position)
                    relation_generators.append(literal)
                elif literal.positive:
                    constant_generators.append(literal)  # class extent: constant
                # negative name-container memberships: filters
            else:
                if mentions_name(literal.container):
                    return None
                if literal.positive:
                    constant_generators.append(literal)  # x̂(t): ν is constant
        elif isinstance(literal, Equality):
            if mentions_name(literal.left) or mentions_name(literal.right):
                return None
            if literal.positive:
                equalities.append(literal)
        else:
            return None  # Choose or unknown literal kinds
    return DeltaBody(
        relation_positions=tuple(relation_positions),
        relation_generators=tuple(relation_generators),
        constant_generators=tuple(constant_generators),
        equalities=tuple(equalities),
    )
