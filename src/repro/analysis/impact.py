"""Update-impact analysis: what one base-fact update can reach (IQL7xx).

The serving-era question behind incremental view maintenance is static:
when a tuple is inserted into (or deleted from) a base relation or a
class extent, *which* derived symbols can change, and through what kind
of dependency?  This module answers it on the polarity-labelled
dependency graphs of :mod:`repro.analysis.depgraph`: for every updatable
base symbol it computes the **affected cone** — the forward closure of
the update under the per-rule read/write summaries of
:mod:`repro.analysis.effects` — tracking, per reached symbol,

* whether some path crosses a *non-monotone* read (negation or a
  whole-extension snapshot): the delta arriving there is sign-flipped,
  so an insert can retract derived facts,
* whether the symbol is written inside a *recursive* SCC: its deltas
  feed back into its own derivation,
* and every **maintenance hazard** on the way: oid invention, weak
  assignment (★), IQL* deletion, ``choose``, a stage the schedule
  analysis refuses to certify, a write into a non-relation symbol or
  into an input symbol, or a non-range-restricted rule anywhere in the
  program (its enumeration over ``constants(I)`` observes *every*
  insert, so no cone is closed).

The cone is a symbol-level over-approximation (stage boundaries are
ignored, so a symbol read in stage 1 but written in stage 2 still lands
in the cone); over-approximation is sound for everything built on top —
a larger cone only ever means re-running more strata.

:mod:`repro.analysis.maintenance` classifies each cone symbol into the
counting/DRed/recompute trichotomy and packages the result as a
:class:`~repro.analysis.maintenance.MaintenanceCertificate`;
:func:`impact_pass` turns the certificates into the ``IQL701``–``IQL704``
diagnostics; ``repro impact`` is the CLI face.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.depgraph import (
    Schedule,
    StageGraph,
    compute_schedule,
    program_graphs,
)
from repro.analysis.effects import RuleEffects, is_plane, plane
from repro.diagnostics import Diagnostic, Span, diagnostic
from repro.iql.program import Program
from repro.iql.rules import Rule
from repro.iql.sublanguages import is_range_restricted
from repro.schema.schema import Schema

#: The two update classes of a base symbol.
UPDATE_OPS: Tuple[str, str] = ("insert", "delete")


@dataclass(frozen=True)
class Hazard:
    """One non-maintainable construct on a path from the update.

    ``tag`` is a stable machine identifier; ``detail`` the human-readable
    form; ``rule_label``/``span`` locate a witness rule when one exists.
    """

    tag: str
    detail: str
    rule_label: Optional[str] = None
    span: Optional[Span] = None

    def to_json(self) -> dict:
        doc: dict = {"tag": self.tag, "detail": self.detail}
        if self.rule_label is not None:
            doc["rule"] = self.rule_label
        return doc


@dataclass(frozen=True)
class SymbolImpact:
    """How one symbol is affected by updates to the cone's base symbol."""

    symbol: str
    is_seed: bool
    written: bool
    via_negation: bool
    recursive: bool
    hazards: Tuple[Hazard, ...]

    def to_json(self) -> dict:
        return {
            "symbol": self.symbol,
            "seed": self.is_seed,
            "written": self.written,
            "via_negation": self.via_negation,
            "recursive": self.recursive,
            "hazards": [h.to_json() for h in self.hazards],
        }


@dataclass(frozen=True)
class StratumRef:
    """One schedule unit of the maintenance slice: stage ``stage`` (0-based),
    stratum ordinal ``stratum`` within that stage's certified strata."""

    stage: int
    stratum: int
    rules: Tuple[str, ...]  # display labels

    def to_json(self) -> dict:
        return {
            "stage": self.stage + 1,
            "stratum": self.stratum + 1,
            "rules": list(self.rules),
        }


@dataclass(frozen=True)
class ImpactCone:
    """The affected cone of one updatable base symbol (op-independent:
    insert and delete reach the same symbols; only the classification of
    :mod:`repro.analysis.maintenance` distinguishes the two)."""

    base: str
    seeds: Tuple[str, ...]
    impacts: Dict[str, SymbolImpact]  # every reached symbol, seeds included
    derived: Tuple[str, ...]  # reached symbols some rule writes, sorted
    triggered_rules: Tuple[Tuple[int, int], ...]  # (stage index, rule index)
    slice: Tuple[StratumRef, ...]  # strata writing into the cone, in order
    slice_rules: Tuple[Tuple[Rule, ...], ...]  # the same strata, as rules

    @property
    def hazards(self) -> Tuple[Hazard, ...]:
        """Every distinct hazard anywhere in the cone, deterministic order."""
        seen: Set[Tuple[str, str]] = set()
        out: List[Hazard] = []
        for symbol in sorted(self.impacts):
            for hazard in self.impacts[symbol].hazards:
                key = (hazard.tag, hazard.detail)
                if key not in seen:
                    seen.add(key)
                    out.append(hazard)
        return tuple(out)

    @property
    def via_negation(self) -> Tuple[str, ...]:
        """The derived symbols reached through a non-monotone read."""
        return tuple(
            s for s in self.derived if self.impacts[s].via_negation
        )

    def to_json(self) -> dict:
        return {
            "base": self.base,
            "seeds": list(self.seeds),
            "symbols": [self.impacts[s].to_json() for s in sorted(self.impacts)],
            "derived": list(self.derived),
            "slice": [ref.to_json() for ref in self.slice],
        }


def updatable_symbols(program: Program, schema: Optional[Schema] = None) -> Tuple[str, ...]:
    """The base symbols an update class can target: the program's inputs."""
    return tuple(program.input_names)


def _rule_hazards(eff: RuleEffects, rule: Rule) -> List[Hazard]:
    """The hazards a single rule contributes to everything it writes."""
    out: List[Hazard] = []
    label, span = rule.display_label(), rule.span
    if eff.invention_classes:
        out.append(
            Hazard(
                "invention",
                f"oid invention into {', '.join(sorted(eff.invention_classes))}",
                label,
                span,
            )
        )
    if eff.is_assignment:
        out.append(Hazard("weak-assignment", "weak assignment (★) head", label, span))
    if eff.is_delete:
        out.append(Hazard("deletion", "IQL* deletion rule", label, span))
    if eff.has_choose:
        out.append(Hazard("choose", "IQL+ choose rule", label, span))
    return out


def _write_hazards(
    symbol: str, program: Program, schema: Schema, rule: Rule
) -> List[Hazard]:
    """Hazards attached to the *written symbol* itself: the maintenance
    replay clears and re-derives relation extents only, and it must not
    clear a symbol that also carries base facts."""
    out: List[Hazard] = []
    label, span = rule.display_label(), rule.span
    if is_plane(symbol) or not schema.is_relation(symbol):
        kind = "value plane" if is_plane(symbol) else "class extent"
        out.append(
            Hazard(
                "non-relational-write",
                f"derives into the {kind} {symbol}, which cannot be cleared "
                f"and re-derived like a relation",
                label,
                span,
            )
        )
    if symbol in program.input_names:
        out.append(
            Hazard(
                "writes-input",
                f"derives into the input symbol {symbol}: base facts and "
                f"derived facts are indistinguishable without counts",
                label,
                span,
            )
        )
    return out


def impact_cone(
    program: Program,
    base: str,
    schema: Optional[Schema] = None,
    graphs: Optional[List[StageGraph]] = None,
    schedule: Optional[Schedule] = None,
) -> ImpactCone:
    """The affected cone of updates to base symbol ``base``.

    ``base`` must be an input relation or class name; a class update
    seeds both the extent ``P`` and its value plane ``^P`` (a fresh oid
    arrives with its ν entry).
    """
    schema = schema if schema is not None else program.schema
    if base not in schema.names:
        raise ValueError(f"unknown base symbol {base!r}")
    if graphs is None:
        graphs = program_graphs(program, schema)
    if schedule is None:
        schedule = compute_schedule(program, schema)

    seeds: Tuple[str, ...] = (base,)
    if schema.is_class(base):
        seeds = (base, plane(base))

    # One program-wide hazard: a non-range-restricted rule enumerates
    # constants(I), which every insert grows — no cone is closed.
    global_hazards: List[Hazard] = []
    for rule in program.rules:
        if not is_range_restricted(rule):
            global_hazards.append(
                Hazard(
                    "enumeration",
                    "a rule is not range-restricted: it enumerates type "
                    "interpretations over constants(I), which any insert grows",
                    rule.display_label(),
                    rule.span,
                )
            )
            break

    # Mutable propagation state, frozen into SymbolImpact at the end.
    reached: Dict[str, dict] = {
        seed: {"neg": False, "rec": False, "hazards": [], "written": False}
        for seed in seeds
    }

    changed = True
    triggered: Set[Tuple[int, int]] = set()
    while changed:
        changed = False
        for graph in graphs:
            fallback = schedule.stages[graph.index].fallback_reason
            for r, eff in enumerate(graph.effects):
                trig = eff.reads & reached.keys()
                if not trig:
                    continue
                triggered.add((graph.index, r))
                rule = graph.rules[r]
                neg = any(
                    reached[s]["neg"] or s in eff.nonmonotone_reads for s in trig
                )
                hazards: List[Hazard] = []
                for s in trig:
                    hazards.extend(reached[s]["hazards"])
                hazards.extend(_rule_hazards(eff, rule))
                if fallback is not None:
                    hazards.append(
                        Hazard(
                            "uncertified-stage",
                            f"stage {graph.index + 1} is not certifiable for "
                            f"stratified re-execution ({fallback})",
                            rule.display_label(),
                            rule.span,
                        )
                    )
                recursive = graph.recursive[graph.rule_scc[r]]
                for symbol in eff.writes:
                    node = reached.setdefault(
                        symbol,
                        {"neg": False, "rec": False, "hazards": [], "written": False},
                    )
                    before = (
                        node["neg"],
                        node["rec"],
                        len(node["hazards"]),
                        node["written"],
                    )
                    node["neg"] = node["neg"] or neg
                    node["rec"] = node["rec"] or recursive
                    node["written"] = True
                    known = {(h.tag, h.detail) for h in node["hazards"]}
                    for hazard in hazards + _write_hazards(
                        symbol, program, schema, rule
                    ):
                        if (hazard.tag, hazard.detail) not in known:
                            known.add((hazard.tag, hazard.detail))
                            node["hazards"].append(hazard)
                    if before != (
                        node["neg"],
                        node["rec"],
                        len(node["hazards"]),
                        node["written"],
                    ):
                        changed = True

    derived = tuple(sorted(s for s, node in reached.items() if node["written"]))
    derived_set = set(derived)

    # Post-fixpoint hazards over the *slice* rules — every rule writing a
    # cone symbol re-runs during maintenance replay, whether or not the
    # update triggers it:
    #
    # * its own constructs (invention, ★, deletion, choose) fire again,
    # * a write straddling the cone boundary would double-derive into the
    #   uncleared outside symbol,
    # * replay runs against the *final* state of every out-of-cone
    #   symbol, so a stage-k slice rule reading one that a later stage
    #   still grows would observe more than the original stage-k
    #   fixpoint did.
    stage_writes: List[Set[str]] = [set() for _ in graphs]
    for graph in graphs:
        for eff in graph.effects:
            stage_writes[graph.index] |= eff.writes
    for graph in graphs:
        later: Set[str] = set()
        for j in range(graph.index + 1, len(graphs)):
            later |= stage_writes[j]
        for r, eff in enumerate(graph.effects):
            inside = eff.writes & derived_set
            if not inside:
                continue
            rule = graph.rules[r]
            extra: List[Hazard] = _rule_hazards(eff, rule)
            outside = eff.writes - derived_set
            if outside:
                extra.append(
                    Hazard(
                        "partial-cone-write",
                        f"writes both into the cone and into "
                        f"{', '.join(sorted(outside))} outside it: re-running "
                        f"it would double-derive into the uncleared symbol",
                        rule.display_label(),
                        rule.span,
                    )
                )
            crossing = (eff.reads - reached.keys()) & later
            if crossing:
                extra.append(
                    Hazard(
                        "stage-crossing-read",
                        f"stage {graph.index + 1} reads "
                        f"{', '.join(sorted(crossing))}, which a later stage "
                        f"still writes: replay would observe post-stage growth",
                        rule.display_label(),
                        rule.span,
                    )
                )
            for symbol in inside:
                node = reached[symbol]
                known = {(h.tag, h.detail) for h in node["hazards"]}
                for hazard in extra + _write_hazards(symbol, program, schema, rule):
                    if (hazard.tag, hazard.detail) not in known:
                        known.add((hazard.tag, hazard.detail))
                        node["hazards"].append(hazard)

    if derived and global_hazards:
        for node in reached.values():
            if node["written"]:
                known = {(h.tag, h.detail) for h in node["hazards"]}
                for hazard in global_hazards:
                    if (hazard.tag, hazard.detail) not in known:
                        node["hazards"].append(hazard)

    impacts = {
        symbol: SymbolImpact(
            symbol=symbol,
            is_seed=symbol in seeds,
            written=node["written"],
            via_negation=node["neg"],
            recursive=node["rec"],
            hazards=tuple(node["hazards"]),
        )
        for symbol, node in reached.items()
    }

    # The maintenance slice: every stratum (in stage, then topological
    # order) containing a rule that writes into the cone. Rules outside
    # the cone's trigger set are included too — clearing a derived symbol
    # obligates *every* writer of it to re-run.
    slice_refs: List[StratumRef] = []
    slice_rules: List[Tuple[Rule, ...]] = []
    for graph in graphs:
        for k, stratum in enumerate(graph.strata):
            members = [graph.rules[i] for i in stratum]
            if any(
                graph.effects[i].writes & derived_set for i in stratum
            ):
                slice_refs.append(
                    StratumRef(
                        stage=graph.index,
                        stratum=k,
                        rules=tuple(r.display_label() for r in members),
                    )
                )
                slice_rules.append(tuple(members))

    return ImpactCone(
        base=base,
        seeds=seeds,
        impacts=impacts,
        derived=derived,
        triggered_rules=tuple(sorted(triggered)),
        slice=tuple(slice_refs),
        slice_rules=tuple(slice_rules),
    )


def program_cones(
    program: Program,
    schema: Optional[Schema] = None,
    symbols: Optional[Sequence[str]] = None,
) -> List[ImpactCone]:
    """One :class:`ImpactCone` per updatable base symbol."""
    schema = schema if schema is not None else program.schema
    graphs = program_graphs(program, schema)
    schedule = compute_schedule(program, schema)
    names = tuple(symbols) if symbols is not None else updatable_symbols(program, schema)
    return [
        impact_cone(program, name, schema, graphs, schedule) for name in names
    ]


# -- the IQL7xx diagnostics pass -----------------------------------------------------


def impact_pass(
    program: Program,
    schema: Optional[Schema] = None,
    cones: Optional[Sequence[ImpactCone]] = None,
) -> List[Diagnostic]:
    """Update-impact diagnostics over the per-base affected cones.

    * ``IQL701`` — an update reaches a non-maintainable construct
      (invention, ★, IQL* deletion, choose, an uncertifiable stage, a
      non-relational or input write): only a full recompute is sound,
    * ``IQL702`` — a *delete* reaches derived symbols through negation:
      maintenance needs DRed's over-delete/re-derive phases,
    * ``IQL703`` — the cone is empty: no rule reads the symbol, so it is
      static and updates never invalidate derived state (info),
    * ``IQL704`` — the cone is bounded and hazard-free: incremental
      maintenance is possible and only the listed strata re-run (info).
    """
    from repro.analysis.maintenance import DRED, RECOMPUTE, classify_cone

    schema = schema if schema is not None else program.schema
    if cones is None:
        cones = program_cones(program, schema)
    out: List[Diagnostic] = []
    for cone in cones:
        if not cone.derived:
            out.append(
                diagnostic(
                    "IQL703",
                    f"updates to {cone.base!r} reach no derived symbol: the "
                    f"symbol is static and no strata need re-running",
                )
            )
            continue
        strategies = classify_cone(cone)
        if any(s == RECOMPUTE for s in strategies.values()):
            witness = next(
                (h for h in cone.hazards if h.span is not None), cone.hazards[0]
            )
            hit = sorted(
                s for s, strat in strategies.items() if strat == RECOMPUTE
            )
            out.append(
                diagnostic(
                    "IQL701",
                    f"an update to {cone.base!r} reaches "
                    f"{{{', '.join(hit)}}} through a non-maintainable "
                    f"construct ({witness.detail}); incremental maintenance "
                    f"is impossible — full recompute required",
                    span=witness.span,
                    rule_label=witness.rule_label,
                )
            )
            continue
        negated = cone.via_negation
        if negated:
            witness_rule = _negation_witness(program, schema, cone)
            out.append(
                diagnostic(
                    "IQL702",
                    f"deleting from {cone.base!r} reaches "
                    f"{{{', '.join(negated)}}} through negation; derived "
                    f"facts may need retraction — maintenance requires "
                    f"DRed's over-delete/re-derive phases",
                    span=witness_rule.span if witness_rule is not None else None,
                    rule_label=(
                        witness_rule.display_label()
                        if witness_rule is not None
                        else None
                    ),
                )
            )
        strata_list = ", ".join(
            f"stage {ref.stage + 1} stratum {ref.stratum + 1}" for ref in cone.slice
        )
        by_strategy: Dict[str, List[str]] = {}
        for symbol, strategy in sorted(strategies.items()):
            by_strategy.setdefault(strategy, []).append(symbol)
        summary = "; ".join(
            f"{strategy}: {{{', '.join(symbols)}}}"
            for strategy, symbols in sorted(by_strategy.items())
        )
        out.append(
            diagnostic(
                "IQL704",
                f"updates to {cone.base!r} affect only "
                f"{{{', '.join(cone.derived)}}} ({summary}); re-running "
                f"{strata_list} maintains the fixpoint"
                + (
                    " (DRed strata need over-delete/re-derive on deletes)"
                    if any(s == DRED for s in strategies.values())
                    else ""
                ),
            )
        )
    return out


def _negation_witness(
    program: Program, schema: Schema, cone: ImpactCone
) -> Optional[Rule]:
    """A rule whose non-monotone read observes the cone (for IQL702 spans)."""
    from repro.analysis.effects import rule_effects

    members: FrozenSet[str] = frozenset(cone.impacts)
    for rule in program.rules:
        eff = rule_effects(rule, schema)
        if eff.nonmonotone_reads & members and eff.writes & set(cone.derived):
            return rule
    return None


# -- renderings ----------------------------------------------------------------------


def render_impact_text(cones: Sequence[ImpactCone]) -> str:
    """The ``repro impact`` text listing: per base symbol, the cone, the
    per-symbol classification, and the maintenance slice."""
    from repro.analysis.maintenance import classify_cone, overall_strategy

    lines: List[str] = []
    for cone in cones:
        strategies = classify_cone(cone)
        lines.append(
            f"update {cone.base} (insert|delete) — "
            f"strategy: {overall_strategy(cone)}"
        )
        if not cone.derived:
            lines.append("  cone: empty (symbol is static)")
            continue
        for symbol in cone.derived:
            impact = cone.impacts[symbol]
            notes = []
            if impact.recursive:
                notes.append("recursive")
            if impact.via_negation:
                notes.append("via negation")
            for hazard in impact.hazards:
                notes.append(hazard.tag)
            suffix = f"  [{', '.join(notes)}]" if notes else ""
            lines.append(f"  {symbol}: {strategies[symbol]}{suffix}")
        if cone.slice:
            for ref in cone.slice:
                lines.append(
                    f"  re-run stage {ref.stage + 1} stratum {ref.stratum + 1}: "
                    f"{'; '.join(ref.rules)}"
                )
    return "\n".join(lines)


def impact_to_dot(cones: Sequence[ImpactCone], graphs: Sequence[StageGraph]) -> str:
    """GraphViz DOT of the affected cones: one cluster per base symbol,
    nodes coloured by maintenance strategy (counting: solid, DRed:
    orange, recompute: red), dependency edges restricted to the cone."""
    from repro.analysis.maintenance import COUNTING, DRED, classify_cone

    lines = ["digraph impact {", "  rankdir=LR;", "  node [shape=box];"]
    for index, cone in enumerate(cones):
        strategies = classify_cone(cone)
        prefix = f"u{index}_"

        def node_id(symbol: str, prefix: str = prefix) -> str:
            return prefix + symbol.replace("^", "hat_")

        lines.append(f"  subgraph cluster_update{index} {{")
        lines.append(f'    label="update {cone.base}";')
        members = set(cone.impacts)
        if not members:
            lines.append(f'    {prefix}empty [label="(empty cone)", style=dashed];')
        for symbol in sorted(members):
            attrs = [f'"{symbol}"']
            if symbol in cone.seeds:
                lines.append(
                    f"    {node_id(symbol)} [label={attrs[0]}, peripheries=2];"
                )
                continue
            strategy = strategies.get(symbol)
            if strategy == COUNTING:
                lines.append(f"    {node_id(symbol)} [label={attrs[0]}];")
            elif strategy == DRED:
                lines.append(
                    f"    {node_id(symbol)} [label={attrs[0]}, color=orange];"
                )
            elif strategy is not None:
                lines.append(
                    f"    {node_id(symbol)} [label={attrs[0]}, color=red];"
                )
            else:  # read-only member of the cone
                lines.append(
                    f"    {node_id(symbol)} [label={attrs[0]}, style=rounded];"
                )
        emitted: Set[Tuple[str, str, bool]] = set()
        for graph in graphs:
            for edge in graph.edges:
                if edge.coupling:
                    continue
                if edge.src in members and edge.dst in members:
                    key = (edge.src, edge.dst, edge.positive)
                    if key in emitted:
                        continue
                    emitted.add(key)
                    suffix = "" if edge.positive else " [style=dashed, color=red]"
                    lines.append(
                        f"    {node_id(edge.src)} -> {node_id(edge.dst)}{suffix};"
                    )
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
