"""Maintenance certificates: how to keep a fixpoint live under updates.

Built on the affected cones of :mod:`repro.analysis.impact`, this module
classifies every derived symbol of an update class ``(base symbol,
insert | delete)`` into the incremental-maintenance trichotomy:

* **counting** — the symbol's own defining rules are non-recursive and
  every path from the update is positive: given the upstream deltas,
  counting maintenance (track derivation counts, decrement on retraction)
  keeps it exact under both inserts and deletes,
* **dred** — the symbol is derived in a recursive SCC, or some path from
  the update crosses negation or a snapshot read (the delta arriving is
  sign-flipped): maintenance needs DRed's over-delete/re-derive phases,
* **recompute** — a maintenance hazard sits on some path (oid invention,
  weak assignment ★, IQL* deletion, ``choose``, an uncertifiable stage,
  a non-relational or straddling write, a stage-crossing read, or a
  non-range-restricted rule anywhere): no incremental strategy is sound
  and the fixpoint must be recomputed from scratch,

plus **noop** for the empty cone (the symbol is static).

A :class:`MaintenanceCertificate` packages one update class's strategy,
cone, stratum slice, and per-rule delta summaries (reusing
:func:`repro.analysis.effects.delta_body`) into the machine-checkable
form the future IVM runtime will consume. Two consumers exist today:

* :func:`check_certificate` re-validates a certificate against the
  program — cone closure, slice completeness and ordering, hazard
  freedom — returning the list of violations (empty = sound);
  :func:`validate_certificate` is its memoized front (one static-
  analysis pass per certificate, not one per replay),
* :func:`replay_insert` executes a certificate's maintenance plan for a
  single-fact insert: validate, apply the fact, clear the cone's derived
  relation extents, and re-run exactly the slice strata via
  :meth:`repro.iql.evaluator.Evaluator.solve_stratum`. For a sound
  certificate the result equals a full re-evaluation (up to
  O-isomorphism), which is what the differential property tests check.

The replay is deliberately the *semantics* of a certificate, not its
cheapest implementation — it is the differential oracle that the real
IVM runtime (:class:`repro.iql.ivm.MaterializedProgram`, with its
counting and DRed fast paths) is tested against without changing what
both must produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.effects import delta_body, head_symbol, rule_effects
from repro.analysis.impact import ImpactCone, UPDATE_OPS, program_cones
from repro.iql.evaluator import EvaluationStats, Evaluator
from repro.iql.program import Program
from repro.iql.rules import Rule
from repro.schema.instance import Instance
from repro.schema.schema import Schema
from repro.values.ovalues import Oid, OValue, ensure_ovalue

COUNTING = "counting"
DRED = "dred"
RECOMPUTE = "recompute"
NOOP = "noop"

#: Severity order for folding per-symbol strategies into one per cone.
_ORDER = {NOOP: 0, COUNTING: 1, DRED: 2, RECOMPUTE: 3}


def classify_cone(cone: ImpactCone) -> Dict[str, str]:
    """The strategy of every *derived* symbol of ``cone``.

    Counting is a per-symbol statement relative to its upstream deltas:
    a non-recursive, positively-reached symbol is counting-maintainable
    even when an upstream symbol needs DRed to produce those deltas.
    """
    out: Dict[str, str] = {}
    for symbol in cone.derived:
        impact = cone.impacts[symbol]
        if impact.hazards:
            out[symbol] = RECOMPUTE
        elif impact.recursive or impact.via_negation:
            out[symbol] = DRED
        else:
            out[symbol] = COUNTING
    return out


def overall_strategy(cone: ImpactCone) -> str:
    """The cone's single strategy: the worst over its derived symbols."""
    strategies = classify_cone(cone)
    if not strategies:
        return NOOP
    return max(strategies.values(), key=lambda s: _ORDER[s])


@dataclass(frozen=True)
class DeltaRuleInfo:
    """How the delta rewriting sees one slice rule (from
    :func:`repro.analysis.effects.delta_body`); ``delta_positions`` is
    ``None`` when the body shape is outside the rewritable fragment and
    the rule re-runs as a full join."""

    rule: str
    head: str
    delta_positions: Optional[Tuple[int, ...]]
    constant_generators: int
    equalities: int

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "head": self.head,
            "delta_positions": (
                list(self.delta_positions)
                if self.delta_positions is not None
                else None
            ),
            "constant_generators": self.constant_generators,
            "equalities": self.equalities,
        }


@dataclass(frozen=True)
class MaintenanceCertificate:
    """The maintenance plan of one update class, machine-checkable.

    ``strategy`` is the fold of ``classification`` (:data:`NOOP` when the
    cone is empty); a certificate whose strategy is :data:`COUNTING` or
    :data:`DRED` *certifies* its cone — :func:`check_certificate` must
    come back empty and :func:`replay_insert` must reproduce a full
    re-evaluation. :data:`RECOMPUTE` certificates record the blocking
    hazards and certify nothing.
    """

    base: str
    op: str
    strategy: str
    cone: ImpactCone = field(repr=False)
    classification: Tuple[Tuple[str, str], ...]  # (symbol, strategy), sorted
    delta_rules: Tuple[DeltaRuleInfo, ...]

    @property
    def certified(self) -> bool:
        return self.strategy in (COUNTING, DRED, NOOP)

    def to_json(self) -> dict:
        return {
            "base": self.base,
            "op": self.op,
            "strategy": self.strategy,
            "certified": self.certified,
            "classification": {s: strat for s, strat in self.classification},
            "cone": self.cone.to_json(),
            "slice": [ref.to_json() for ref in self.cone.slice],
            "delta_rules": [info.to_json() for info in self.delta_rules],
            "hazards": [h.to_json() for h in self.cone.hazards],
        }


def build_certificate(
    program: Program,
    cone: ImpactCone,
    op: str,
    schema: Optional[Schema] = None,
) -> MaintenanceCertificate:
    """The certificate of one ``(base, op)`` update class."""
    if op not in UPDATE_OPS:
        raise ValueError(f"unknown update op {op!r}")
    schema = schema if schema is not None else program.schema
    strategies = classify_cone(cone)
    strategy = overall_strategy(cone)
    delta_rules: List[DeltaRuleInfo] = []
    if strategy in (COUNTING, DRED):
        for stratum in cone.slice_rules:
            for rule in stratum:
                body = delta_body(rule, schema)
                delta_rules.append(
                    DeltaRuleInfo(
                        rule=rule.display_label(),
                        head=head_symbol(rule),
                        delta_positions=(
                            body.relation_positions if body is not None else None
                        ),
                        constant_generators=(
                            len(body.constant_generators) if body is not None else 0
                        ),
                        equalities=len(body.equalities) if body is not None else 0,
                    )
                )
    return MaintenanceCertificate(
        base=cone.base,
        op=op,
        strategy=strategy,
        cone=cone,
        classification=tuple(sorted(strategies.items())),
        delta_rules=tuple(delta_rules),
    )


def build_certificates(
    program: Program,
    schema: Optional[Schema] = None,
    symbols: Optional[Sequence[str]] = None,
    ops: Sequence[str] = UPDATE_OPS,
) -> List[MaintenanceCertificate]:
    """Certificates for every requested update class of ``program``."""
    schema = schema if schema is not None else program.schema
    cones = program_cones(program, schema, symbols)
    return [
        build_certificate(program, cone, op, schema)
        for cone in cones
        for op in ops
    ]


def check_certificate(
    program: Program,
    certificate: MaintenanceCertificate,
    schema: Optional[Schema] = None,
) -> List[str]:
    """Re-validate ``certificate`` against ``program`` from scratch.

    Returns the violations that would make the certified maintenance
    plan unsound (empty list = sound). :data:`RECOMPUTE` certificates
    certify nothing, but must at least record a hazard justifying the
    give-up; :data:`NOOP` certificates must have an empty cone.
    """
    schema = schema if schema is not None else program.schema
    cone = certificate.cone
    violations: List[str] = []

    if certificate.strategy == RECOMPUTE:
        if not cone.hazards:
            violations.append(
                "recompute strategy with no recorded hazard: the give-up "
                "is unjustified"
            )
        return violations
    if certificate.strategy == NOOP:
        if cone.derived:
            violations.append(
                f"noop strategy but the cone derives {list(cone.derived)}"
            )
        return violations

    members = set(cone.impacts)
    derived = set(cone.derived)

    # Conservativeness: a certified cone carries no hazard anywhere.
    for symbol in sorted(members):
        for hazard in cone.impacts[symbol].hazards:
            violations.append(
                f"certified cone symbol {symbol} carries hazard "
                f"{hazard.tag}: {hazard.detail}"
            )

    # Replay clears and re-derives relation extents only.
    for symbol in sorted(derived):
        if not schema.is_relation(symbol):
            violations.append(
                f"certified derived symbol {symbol} is not a relation"
            )
        if symbol in program.input_names:
            violations.append(
                f"certified derived symbol {symbol} is an input symbol"
            )

    # Forward closure and slice completeness, from the program itself.
    slice_rule_ids = {
        id(rule) for stratum in cone.slice_rules for rule in stratum
    }
    for rule in program.rules:
        eff = rule_effects(rule, schema)
        if eff.reads & members and not eff.writes <= members:
            violations.append(
                f"cone is not forward-closed: rule "
                f"{rule.display_label()} reads "
                f"{sorted(eff.reads & members)} but writes "
                f"{sorted(eff.writes - members)} outside the cone"
            )
        if eff.writes & derived and id(rule) not in slice_rule_ids:
            violations.append(
                f"slice is incomplete: rule {rule.display_label()} writes "
                f"{sorted(eff.writes & derived)} but is not scheduled"
            )

    # The slice must re-run in stage order, topologically within a stage.
    order = [(ref.stage, ref.stratum) for ref in cone.slice]
    if order != sorted(order):
        violations.append(f"slice strata are out of order: {order}")

    # Per-symbol classifications must match the recorded flags.
    for symbol, strategy in certificate.classification:
        impact = cone.impacts.get(symbol)
        if impact is None:
            violations.append(f"classified symbol {symbol} is not in the cone")
            continue
        if strategy == COUNTING and (impact.recursive or impact.via_negation):
            violations.append(
                f"{symbol} classified counting but reached "
                f"{'recursively' if impact.recursive else 'through negation'}"
            )
    return violations


def validate_certificate(
    program: Program,
    certificate: MaintenanceCertificate,
    schema: Optional[Schema] = None,
) -> List[str]:
    """:func:`check_certificate`, memoized on the certificate.

    Certificate validation is a static-analysis pass over the whole
    program; executing it once per *replay* (or per IVM batch) would
    dominate small-delta maintenance. The result is cached on the
    certificate itself, keyed by the program identity — certificates are
    frozen (and unhashable: the cone holds a dict), so the memo rides on
    ``object.__setattr__`` rather than an external table.
    """
    cached = getattr(certificate, "_validation", None)
    if cached is not None and cached[0] is program:
        return list(cached[1])
    violations = check_certificate(program, certificate, schema)
    object.__setattr__(certificate, "_validation", (program, tuple(violations)))
    return violations


def replay_insert(
    program: Program,
    previous_full: Instance,
    certificate: MaintenanceCertificate,
    value: OValue,
    evaluator: Optional[Evaluator] = None,
    stats: Optional[EvaluationStats] = None,
) -> Instance:
    """Execute ``certificate``'s maintenance plan for one inserted fact.

    ``previous_full`` is the *full* instance (over S, not Sout) of the
    evaluation being maintained — :attr:`EvaluationResult.full`. Returns
    a new instance; the input is not modified. Only certified
    certificates replay; a :data:`RECOMPUTE` one raises ``ValueError``
    (that is its meaning: re-evaluate from scratch).
    """
    if certificate.op != "insert":
        raise ValueError(f"replay_insert on a {certificate.op!r} certificate")
    if not certificate.certified:
        raise ValueError(
            f"certificate for {certificate.base!r} is not certified "
            f"(strategy {certificate.strategy}): full recompute required"
        )
    violations = validate_certificate(program, certificate)
    if violations:
        raise ValueError(
            f"certificate for {certificate.base!r} fails validation: "
            f"{'; '.join(violations)}"
        )
    schema = program.schema
    working = previous_full.copy()
    if schema.is_class(certificate.base):
        if not isinstance(value, Oid):
            raise ValueError(
                f"class-extent insert into {certificate.base!r} needs an oid"
            )
        working.add_class_member(certificate.base, value)
    else:
        working.add_relation_member(certificate.base, ensure_ovalue(value))
    for symbol in certificate.cone.derived:
        working.relations[symbol].clear()
    working.drop_indexes()
    ev = evaluator if evaluator is not None else Evaluator(program)
    run_stats = stats if stats is not None else EvaluationStats()
    for stratum in certificate.cone.slice_rules:
        ev.solve_stratum(working, stratum, run_stats)
    return working
