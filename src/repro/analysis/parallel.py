"""Parallel-safety analysis: certified intra-stage concurrency (IQL8xx).

ROADMAP item 4 (parallel evaluation) is a soundness question before it is
an execution question: which rule firings inside a certified stage may
run concurrently without changing the inflationary fixpoint, given
invention, weak assignment (★), IQL* deletion, and the shared intern
store? This module answers it the way PR 6's maintenance certificates
answered incremental maintenance: a static pass over the per-rule effect
summaries (:mod:`repro.analysis.effects`) and the polarity-labelled
dependency graph (:mod:`repro.analysis.depgraph`) emits a machine-
checkable :class:`ParallelCertificate` that the multi-worker executor
(:mod:`repro.iql.parexec`, behind ``Evaluator(parallel=N)``) validates
and obeys — and falls back to the serial engine wherever the certificate
refuses.

Three sources of safe concurrency are certified, per scheduled stage:

* **conflict-free rule groups** within a stratum — rules partitioned by
  read/write and write/write overlap on the stratum's written symbols
  (relations, class extents ``P``, value planes ``^P``). Because a
  stratum *is* one SCC of the dependency graph, its conflict graph is
  connected in all but degenerate programs; conflicts that fuse every
  rule into one unpartitionable group are reported as ``IQL801`` and the
  stratum stays serial,
* **incomparable strata** of the same stage — the SCC condensation is a
  DAG, and two strata with no path between them neither read nor write
  each other's symbols (reads of common ancestors observe extents that
  are complete before either starts), so their fixpoints commute and may
  run on concurrent workers. The certificate records the stratum DAG and
  its topological levels,
* **hash-partitioned delta rounds** of a single rule — a rule in the
  delta-staged fragment (:func:`repro.analysis.effects.delta_body`) with
  at least one relation generator can split each round's delta across
  workers: derivations land in thread-local staging sets merged at the
  round barrier, the blocking read (``value not in existing``) observes
  extents that are frozen within a round, and inflationary semantics
  makes the merge order-insensitive. Invention, weak assignment,
  deletion and choose are *partition hazards* (``IQL802``): their
  firings observe or mutate global state (the oid counter, ν, the
  instance itself) in step order, so the stratum runs serial — and runs
  *exclusively*, never concurrent with a sibling.

The certificate additionally carries a **runtime-surface audit**
(``IQL803`` on failure): the soundness argument above assumes facts
about the execution engine that the analysis cannot see in the program —
that a compiled kernel's only mutable capture is its ``sink_cell``
consumer slot (:class:`repro.iql.compile.CompiledBody`; this is exactly
why the executor compiles **per-worker kernel replicas** instead of
sharing one kernel across partition tasks), that the instance's only
shared mutable caches are the known constant/member caches and the
in-place index object, and that the intern store tolerates racing
constructions (two threads interning the same content at worst both
build a node and structural ``__eq__`` absorbs the duplicate — the
documented GIL argument in :mod:`repro.values.intern`). The audit
introspects those surfaces and records the findings; if any module
grows shared state the inventory does not know, the certificate refuses
(``IQL803``) and the executor stays serial. Like
:func:`repro.analysis.maintenance.check_certificate`, the whole
certificate is re-derivable: :func:`check_parallel_certificate` rebuilds
the plan from the program and diffs it against the certificate, so a
tampered (or bit-rotted) certificate is caught before a single worker
starts.

``IQL804`` (info) reports the certified concurrency width of each stage:
the parallelism an executor may use is bounded by that width, by the
requested worker count, and by the host's CPUs — the certificate records
the first, the executor resolves the rest at run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.depgraph import (
    Schedule,
    StageGraph,
    compute_schedule,
    program_graphs,
)
from repro.analysis.effects import RuleEffects, delta_body, is_plane
from repro.diagnostics import Diagnostic, diagnostic
from repro.iql.program import Program
from repro.iql.rules import Rule
from repro.schema.schema import Schema

# -- fallback taxonomy ---------------------------------------------------------------
#
# Every stratum the certificate refuses to parallelize carries one tag
# (possibly with detail appended after ": "). The executor treats any
# tagged stratum as serial-and-exclusive; the IQL801-803 tags also warn.

FALLBACK_CONFLICTS = "IQL801 rule conflicts serialize the stratum"
FALLBACK_HAZARD = "IQL802 partition hazard"
FALLBACK_AUDIT = "IQL803 runtime-surface audit failed"
FALLBACK_UNSCHEDULED = "unscheduled stage"
FALLBACK_SINGLETON = "single serial unit"  # informational: nothing to split

WRITE_WRITE = "write-write"
READ_WRITE = "read-write"


# -- plan records --------------------------------------------------------------------


@dataclass(frozen=True)
class RuleConflict:
    """One conflicting rule pair of a stratum: the overlap that forces
    both rules into the same group."""

    a: str  # rule labels
    b: str
    kind: str  # WRITE_WRITE | READ_WRITE
    symbols: Tuple[str, ...]

    def to_json(self) -> dict:
        return {
            "rules": [self.a, self.b],
            "kind": self.kind,
            "symbols": list(self.symbols),
        }


@dataclass(frozen=True)
class PartitionPlan:
    """Hash-partitionability of one rule's delta rounds.

    ``key_variables`` are the variables bound by the delta-driven
    relation generators — the bound join attributes any fact-hash
    partition of the delta keys the rule's writes by. ``reason`` names
    the blocker when the rule is not partitionable.
    """

    rule: str
    partitionable: bool
    delta_positions: Tuple[int, ...]
    key_variables: Tuple[str, ...]
    reason: Optional[str] = None

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "partitionable": self.partitionable,
            "delta_positions": list(self.delta_positions),
            "key_variables": list(self.key_variables),
            "reason": self.reason,
        }


@dataclass(frozen=True)
class StratumPlan:
    """The parallel plan of one stratum of one scheduled stage."""

    stage: int  # 0-based stage index
    index: int  # stratum index within the stage (schedule order)
    rules: Tuple[str, ...]  # labels, in stratum order
    writes: Tuple[str, ...]
    reads: Tuple[str, ...]
    groups: Tuple[Tuple[int, ...], ...]  # conflict-free groups of rule indexes
    conflicts: Tuple[RuleConflict, ...]
    partitions: Tuple[PartitionPlan, ...]  # one entry per rule
    depends_on: Tuple[int, ...]  # earlier strata this one reads from
    hazards: Tuple[str, ...]  # IQL802 hazard descriptions, per offending rule
    fallback: Optional[str]  # taxonomy tag, None when parallel-safe
    class_writes: Tuple[str, ...] = ()  # written class extents / ^P planes

    @property
    def parallel_safe(self) -> bool:
        """May this stratum run concurrently with an incomparable sibling?"""
        return self.fallback is None or self.fallback.startswith(FALLBACK_SINGLETON)

    @property
    def partitionable(self) -> bool:
        return self.fallback is None and any(p.partitionable for p in self.partitions)

    def to_json(self) -> dict:
        return {
            "stage": self.stage + 1,
            "stratum": self.index + 1,
            "rules": list(self.rules),
            "writes": list(self.writes),
            "reads": list(self.reads),
            "groups": [list(g) for g in self.groups],
            "conflicts": [c.to_json() for c in self.conflicts],
            "partitions": [p.to_json() for p in self.partitions],
            "depends_on": [d + 1 for d in self.depends_on],
            "hazards": list(self.hazards),
            "fallback": self.fallback,
            "class_writes": list(self.class_writes),
            "parallel_safe": self.parallel_safe,
            "partitionable": self.partitionable,
        }


@dataclass(frozen=True)
class StagePlan:
    """The parallel plan of one stage: its strata, their dependency DAG
    (as topological levels), and the certified concurrency width."""

    index: int
    scheduled: bool
    fallback: Optional[str]  # for unscheduled stages
    strata: Tuple[StratumPlan, ...]
    levels: Tuple[Tuple[int, ...], ...]  # stratum indexes per DAG depth

    @property
    def width(self) -> int:
        """The certified concurrency width: the widest batch of strata
        that may run at once (after the one-class-writer-per-batch
        split), counting a lone partitionable stratum as width ≥ 2 (its
        partition fan-out is bounded by workers and host, not by the
        program)."""
        width = 1
        for batch in concurrent_batches(self):
            width = max(width, len(batch))
            if len(batch) == 1 and self.strata[batch[0]].partitionable:
                width = max(width, 2)
        return width

    def to_json(self) -> dict:
        return {
            "stage": self.index + 1,
            "scheduled": self.scheduled,
            "fallback": self.fallback,
            "strata": [s.to_json() for s in self.strata],
            "levels": [[i + 1 for i in level] for level in self.levels],
            "batches": [[i + 1 for i in batch] for batch in concurrent_batches(self)],
            "width": self.width,
        }


def concurrent_batches(stage: "StagePlan") -> List[Tuple[int, ...]]:
    """The executable schedule of a stage: batches of stratum indexes,
    in order; all strata of one batch may run concurrently.

    Derived from the dependency levels with two splits the soundness
    argument requires, so the analysis and the executor share one
    scheduling function instead of two that could drift:

    * a hazard stratum (IQL801/IQL802 fallback) runs in a batch of its
      own — serial *and* exclusive,
    * at most one class-extent/plane-writing stratum per batch: the
      ``_class_of`` disjointness check in ``Instance.add_class_member``
      is check-then-act, so two threads placing oids into classes could
      race past an error serial evaluation would raise.
    """
    batches: List[Tuple[int, ...]] = []
    for level in stage.levels:
        safe = [i for i in level if stage.strata[i].parallel_safe]
        unsafe = [i for i in level if not stage.strata[i].parallel_safe]
        class_writers = [i for i in safe if stage.strata[i].class_writes]
        plain = [i for i in safe if not stage.strata[i].class_writes]
        if class_writers:
            head, rest = class_writers[0], class_writers[1:]
            if plain or not rest:
                batches.append(tuple(plain + [head]))
            else:
                batches.append((head,))
            batches.extend((i,) for i in rest)
        elif plain:
            batches.append(tuple(plain))
        batches.extend((i,) for i in unsafe)
    return batches


# -- the runtime-surface audit -------------------------------------------------------


@dataclass(frozen=True)
class SurfaceCheck:
    """One audited runtime surface: the assumption the certificate makes
    and whether introspection confirms it holds."""

    surface: str
    requirement: str
    holds: bool
    detail: str

    def to_json(self) -> dict:
        return {
            "surface": self.surface,
            "requirement": self.requirement,
            "holds": self.holds,
            "detail": self.detail,
        }


#: The capture inventory of a compiled kernel. ``sink_cell`` is the one
#: *mutable* capture (execute() writes the consumer into it), which is
#: why partition workers get per-worker kernel replicas; every other
#: slot is set once at compile time. A slot this tuple does not name
#: means compile.py grew a capture the parallel argument never examined.
_COMPILED_BODY_SLOTS = (
    "slot_vars", "slot_index", "entry", "sink_cell", "instance", "indexes",
)

#: Instance growth mutators the soundness argument covers (all additions
#: stage through these; concurrent strata write disjoint symbols, so
#: per-symbol containers never race) ...
_INSTANCE_MUTATORS = (
    "add_relation_member", "add_class_member", "add_set_element", "assign",
)

#: ... and the shared state they touch. ``schema``/``relations``/
#: ``classes``/``nu`` are the extents themselves (disjoint write symbols
#: ⇒ disjoint containers); ``_indexes`` is maintained in place per
#: (container, attribute) bucket; the constant/member caches race
#: benignly (idempotent, GIL-atomic dict/set ops). ``_class_of`` is the
#: class-disjointness map and its check-then-act in
#: ``add_class_member`` is NOT race-free across classes — which is why
#: the certificate schedules at most one class-extent-writing stratum
#: per concurrent batch (see :func:`concurrent_batches`). Any *other*
#: slot on Instance is shared state the audit has not reasoned about.
_INSTANCE_SLOTS = (
    "schema", "relations", "classes", "nu",
    "_class_of", "_indexes", "_constants_cache", "_sorted_constants",
    "_member_cache",
)

#: The intern store's layout. The store is process-global and lock-free
#: by design: racing constructions of the same content both build a node
#: and the structural __eq__ fallback absorbs the duplicate (the
#: documented GIL argument in repro.values.intern); the hit/miss/sweep
#: counters race benignly. A changed layout (say, a sweep mark moved
#: into a non-atomic invariant) voids that argument until re-audited.
_INTERN_STORE_SLOTS = (
    "enabled", "tuples", "sets", "hits", "misses", "eq_fast_paths",
    "tuples_mark", "sets_mark",
)


#: What crosses a process boundary when an Instance is shipped to a
#: worker: the five semantic slots, nothing else. The coordinator-local
#: caches (``_indexes``, ``_constants_cache``, ``_sorted_constants``,
#: ``_member_cache``) must NOT cross — a worker observing the
#: coordinator's constants cache or lazy index registry would couple the
#: two processes through state the shared-nothing argument says they do
#: not share (and the caches capture interned nodes of the *wrong*
#: store). ``Instance.__setstate__`` rebuilds them cold on the receiver.
_INSTANCE_PICKLED_SLOTS = ("schema", "relations", "classes", "nu", "_class_of")


def audit_runtime_surfaces(
    compile_module: Any = None,
    intern_module: Any = None,
    instance_type: Any = None,
    backend: str = "thread",
    values_module: Any = None,
    rule_type: Any = None,
) -> Tuple[SurfaceCheck, ...]:
    """Introspect the runtime surfaces the parallel argument assumes.

    The parameters exist for tests: injecting a stub module with a
    drifted surface must flip the corresponding check to ``holds=False``
    (and thereby the certificate to IQL803 serial fallback). By default
    the real modules are audited. With ``backend="process"`` the audit
    additionally covers the serialization surfaces the shared-nothing
    executor rides on — the interned-unpickling channel of the value
    types, the cache-free pickled state of instances and rules, and the
    spawn-safe worker entry point.
    """
    if compile_module is None:
        from repro.iql import compile as compile_module  # noqa: PLC0415
    if intern_module is None:
        from repro.values import intern as intern_module  # noqa: PLC0415
    if instance_type is None:
        from repro.schema.instance import Instance as instance_type  # noqa: PLC0415

    checks: List[SurfaceCheck] = []

    def check(surface: str, requirement: str, holds: bool, detail: str) -> None:
        checks.append(SurfaceCheck(surface, requirement, holds, detail))

    # 1. Compiled-kernel captures: the closure inventory must be exactly
    # the audited one, with sink_cell the lone mutable capture.
    body = getattr(compile_module, "CompiledBody", None)
    slots = tuple(getattr(body, "__slots__", ())) if body is not None else ()
    check(
        "compile.CompiledBody captures",
        "closure captures are exactly the audited inventory; sink_cell is "
        "the only per-execution mutable slot, so kernels are replicated "
        "per worker and never shared across threads",
        slots == _COMPILED_BODY_SLOTS and "sink_cell" in slots,
        f"slots={list(slots)}",
    )
    # 2. Kernel-instance affinity: replicas are validated against the
    # live instance (and its in-place index object) before every round.
    check(
        "compile.CompiledBody.valid_for",
        "kernels pin the captured extension sets and index buckets by "
        "identity, so a stale replica is detected, not silently wrong",
        callable(getattr(body, "valid_for", None)),
        "valid_for present" if hasattr(body, "valid_for") else "valid_for missing",
    )
    # 3. The replica entry point the executor compiles workers through.
    check(
        "compile.compile_seminaive",
        "per-worker kernel replicas can be compiled directly, bypassing "
        "the shared per-rule kernel cache",
        callable(getattr(compile_module, "compile_seminaive", None)),
        "compile_seminaive present"
        if callable(getattr(compile_module, "compile_seminaive", None))
        else "compile_seminaive missing",
    )
    # 4. Instance mutators and shared caches.
    mutators_ok = all(callable(getattr(instance_type, m, None)) for m in _INSTANCE_MUTATORS)
    check(
        "schema.Instance mutators",
        "all growth goes through the audited mutators, so concurrent "
        "strata with disjoint write symbols never mutate one container",
        mutators_ok,
        f"mutators={[m for m in _INSTANCE_MUTATORS if callable(getattr(instance_type, m, None))]}",
    )
    islots = tuple(getattr(instance_type, "__slots__", ()))
    unknown = [s for s in islots if s not in _INSTANCE_SLOTS]
    check(
        "schema.Instance shared state",
        "every slot is in the audited inventory: extents split by write "
        "symbol, in-place per-bucket index maintenance, benign idempotent "
        "cache races, and the _class_of disjointness map whose "
        "check-then-act is covered by one-class-writer-per-batch "
        "scheduling",
        islots == _INSTANCE_SLOTS,
        f"slots={list(islots)}; unaudited={unknown}",
    )
    # 5. The intern store's lock-free sharing discipline.
    store = getattr(intern_module, "InternStore", None)
    sslots = tuple(getattr(store, "__slots__", ())) if store is not None else ()
    intern_ok = (
        sslots == _INTERN_STORE_SLOTS
        and getattr(intern_module, "STORE", None) is not None
        and callable(getattr(intern_module, "interning", None))
    )
    check(
        "values.intern shared store",
        "the process-global store stays lock-free-safe: racing interns of "
        "equal content at worst both build a node and structural equality "
        "absorbs the duplicate; layout drift voids the argument",
        intern_ok,
        f"InternStore slots={list(sslots)}",
    )

    if backend == "process":
        if values_module is None:
            from repro.values import ovalues as values_module  # noqa: PLC0415
        if rule_type is None:
            from repro.iql.rules import Rule as rule_type  # noqa: PLC0415

        # 6. The merge-time re-canonicalization channel: every value
        # type must unpickle *through interned construction* (its own
        # __reduce__, not the default protocol), and oids must resolve
        # through the serial registry so identity survives the round
        # trip. Without this, a fact returned by a worker would be a
        # structural twin outside the coordinator's store — breaking the
        # is-based fast paths the rest of the engine leans on.
        reduces = True
        for name in ("Oid", "OTuple", "OSet"):
            cls = getattr(values_module, name, None)
            if cls is None or "__reduce__" not in vars(cls):
                reduces = False
        registry_ok = (
            getattr(values_module, "_OID_REGISTRY", None) is not None
            and callable(getattr(values_module, "_oid_from_wire", None))
            and callable(getattr(values_module, "reintern", None))
        )
        check(
            "values pickling re-interns",
            "Oid/OTuple/OSet define __reduce__ rebuilding through interned "
            "construction, with oid identity resolved via the serial "
            "registry — decoded worker facts ARE the coordinator's "
            "canonical nodes",
            reduces and registry_ok,
            f"__reduce__ on all value types={reduces}, "
            f"registry+reintern={registry_ok}",
        )
        # 7. Shipped instance state is the five semantic slots only —
        # process workers must never observe the coordinator's constants
        # cache or lazy index registry.
        state_ok = False
        detail = "Instance.__getstate__ missing"
        if "__getstate__" in vars(instance_type) and "__setstate__" in vars(
            instance_type
        ):
            try:
                sample = instance_type(Schema(relations={}, classes={}))
                state = sample.__getstate__()
                state_ok = (
                    isinstance(state, tuple)
                    and len(state) == len(_INSTANCE_PICKLED_SLOTS)
                )
                detail = f"pickled state arity={len(state)}"
            except Exception as exc:  # pragma: no cover - defensive
                detail = f"__getstate__ probe failed: {exc}"
        check(
            "schema.Instance pickled state",
            "shipped state is exactly (schema, relations, classes, nu, "
            "_class_of); coordinator-local caches (_indexes, "
            "_constants_cache, _sorted_constants, _member_cache) never "
            "cross the boundary and rebuild cold on the worker",
            state_ok,
            detail,
        )
        # 8. Rules ship syntax-only: plan/kernel/feedback caches capture
        # one process's instance sets and must not cross.
        rule_ok = "__getstate__" in vars(rule_type) and "__setstate__" in vars(
            rule_type
        )
        check(
            "iql.Rule pickled state",
            "rules pickle their syntax only, never the evaluation caches "
            "(plans and kernels capture one process's extents)",
            rule_ok,
            "cache-dropping __getstate__/__setstate__ present"
            if rule_ok
            else "Rule pickles its caches",
        )
        # 9. The worker entry point and the fact-batch wire codec.
        try:
            from repro import io as io_module  # noqa: PLC0415
            from repro.iql import parexec as parexec_module  # noqa: PLC0415

            entry_ok = callable(
                getattr(parexec_module, "_pool_worker_main", None)
            ) and callable(getattr(io_module, "batch_to_wire", None)) and callable(
                getattr(io_module, "batch_from_wire", None)
            )
        except ImportError:  # pragma: no cover - broken install
            entry_ok = False
        check(
            "parexec process worker entry",
            "the worker main is a module-level importable (spawn-safe) and "
            "the io wire codec for fact batches is present",
            entry_ok,
            "entry+codec present" if entry_ok else "entry or codec missing",
        )
    return tuple(checks)


# -- the certificate -----------------------------------------------------------------


@dataclass(frozen=True)
class ParallelCertificate:
    """The whole program's parallel plan, machine-checkable.

    ``certified`` means the runtime-surface audit passed; only then may
    an executor use *any* concurrency, and then only the per-stratum
    plans marked safe. :func:`check_parallel_certificate` re-derives the
    plan from the program and diffs, so tampering (or analysis/runtime
    drift since the certificate was built) is caught before execution.
    """

    stages: Tuple[StagePlan, ...]
    audit: Tuple[SurfaceCheck, ...]
    #: The execution backend the audit covered: "thread" certifies the
    #: shared-memory argument only; "process" additionally certifies the
    #: serialization surfaces (interned unpickling, cache-free shipped
    #: state, spawn-safe worker entry). A certificate is only good for
    #: the backend it names.
    backend: str = "thread"

    @property
    def audit_failures(self) -> Tuple[str, ...]:
        return tuple(
            f"{c.surface}: {c.detail}" for c in self.audit if not c.holds
        )

    @property
    def certified(self) -> bool:
        return not self.audit_failures

    @property
    def width(self) -> int:
        """The program's certified concurrency width (max over stages)."""
        return max((s.width for s in self.stages), default=1)

    @property
    def clean(self) -> bool:
        """No IQL801-803 anywhere: every stage scheduled, every stratum
        parallel-safe, audit green — the whole program may parallelize."""
        return self.certified and all(
            stage.scheduled and all(s.fallback is None for s in stage.strata)
            for stage in self.stages
        )

    def to_json(self) -> dict:
        return {
            "certified": self.certified,
            "clean": self.clean,
            "width": self.width,
            "backend": self.backend,
            "stages": [s.to_json() for s in self.stages],
            "audit": [c.to_json() for c in self.audit],
            "audit_failures": list(self.audit_failures),
        }


# -- building the plan ---------------------------------------------------------------


def _rule_hazards(eff: RuleEffects) -> List[str]:
    """The IQL802 partition hazards of one rule (empty = hazard-free)."""
    hazards: List[str] = []
    if eff.invention_classes:
        hazards.append(
            f"{eff.rule.display_label()}: invents oids into "
            f"{{{', '.join(sorted(eff.invention_classes))}}} — the shared "
            f"oid factory and the blocking condition are step-ordered"
        )
    if eff.is_assignment:
        hazards.append(
            f"{eff.rule.display_label()}: weak assignment (★) — whether an "
            f"assignment sticks depends on which step derived it"
        )
    if eff.is_delete:
        hazards.append(
            f"{eff.rule.display_label()}: IQL* deletion — steps are not "
            f"monotone, merges are order-sensitive"
        )
    if eff.has_choose:
        hazards.append(
            f"{eff.rule.display_label()}: IQL+ choose observes the whole "
            f"instance (genericity)"
        )
    from repro.iql.sublanguages import is_range_restricted  # noqa: PLC0415

    if not is_range_restricted(eff.rule):
        hazards.append(
            f"{eff.rule.display_label()}: not range-restricted — the "
            f"enumeration fallback reads constants(I) of the whole "
            f"instance, an undeclared read of every symbol"
        )
    return hazards


def _partition_plan(rule: Rule, eff: RuleEffects, schema: Schema) -> PartitionPlan:
    """Decide hash-partitionability of one rule's delta rounds."""
    label = rule.display_label()
    hazards = _rule_hazards(eff)
    if hazards:
        return PartitionPlan(label, False, (), (), reason=hazards[0])
    from repro.iql.seminaive import rule_eligible  # noqa: PLC0415

    if not rule_eligible(rule, schema):
        return PartitionPlan(
            label, False, (), (),
            reason="outside the delta-staged fragment (no round-boundary "
            "staging point to merge at)",
        )
    shape = delta_body(rule, schema)
    assert shape is not None  # rule_eligible implies a fragment shape
    if not shape.relation_positions:
        return PartitionPlan(
            label, False, (), (),
            reason="no relation generator: the rule has no delta to split "
            "(class extents and ν are constant within the stratum)",
        )
    keys: Set[str] = set()
    for literal in shape.relation_generators:
        keys |= {var.name for var in literal.element.variables()}
    return PartitionPlan(
        label,
        True,
        shape.relation_positions,
        tuple(sorted(keys)),
    )


def _conflict_groups(
    effects: Sequence[RuleEffects],
    stratum_writes: FrozenSet[str],
) -> Tuple[Tuple[Tuple[int, ...], ...], Tuple[RuleConflict, ...]]:
    """Partition a stratum's rules into conflict-free groups.

    Two rules conflict when their write sets overlap, or one reads a
    symbol the other writes — counting only symbols written *by this
    stratum* (reads of earlier strata's symbols observe completed,
    frozen extents and never conflict). Groups are the connected
    components of the conflict graph.
    """
    n = len(effects)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[ri] = rj

    conflicts: List[RuleConflict] = []
    for i in range(n):
        for j in range(i + 1, n):
            a, b = effects[i], effects[j]
            ww = a.writes & b.writes & stratum_writes
            rw = ((a.reads & b.writes) | (b.reads & a.writes)) & stratum_writes
            if ww:
                kind, symbols = WRITE_WRITE, ww
            elif rw:
                kind, symbols = READ_WRITE, rw
            else:
                continue
            union(i, j)
            conflicts.append(
                RuleConflict(
                    a.rule.display_label(),
                    b.rule.display_label(),
                    kind,
                    tuple(sorted(symbols)),
                )
            )
    members: Dict[int, List[int]] = {}
    for i in range(n):
        members.setdefault(find(i), []).append(i)
    groups = tuple(
        tuple(group) for group in sorted(members.values(), key=lambda g: g[0])
    )
    return groups, tuple(conflicts)


def _stratum_plan(
    graph: StageGraph,
    stratum_index: int,
    schema: Schema,
    stratum_writes_by_index: Sequence[FrozenSet[str]],
) -> StratumPlan:
    rule_indexes = graph.strata[stratum_index]
    rules = [graph.rules[r] for r in rule_indexes]
    effects = [graph.effects[r] for r in rule_indexes]
    writes: Set[str] = set()
    reads: Set[str] = set()
    for eff in effects:
        writes |= eff.writes
        reads |= eff.reads
    stratum_writes = frozenset(writes)

    groups, conflicts = _conflict_groups(effects, stratum_writes)
    partitions = tuple(
        _partition_plan(rule, eff, schema) for rule, eff in zip(rules, effects)
    )
    hazards: List[str] = []
    for eff in effects:
        hazards.extend(_rule_hazards(eff))

    depends_on = tuple(
        earlier
        for earlier in range(stratum_index)
        if reads & stratum_writes_by_index[earlier]
    )

    fallback: Optional[str] = None
    if hazards:
        fallback = f"{FALLBACK_HAZARD}: {hazards[0]}"
    elif (
        len(rules) > 1
        and len(groups) == 1
        and not any(p.partitionable for p in partitions)
    ):
        fused = sorted({s for c in conflicts for s in c.symbols})
        fallback = (
            f"{FALLBACK_CONFLICTS}: {len(conflicts)} conflict(s) on "
            f"{{{', '.join(fused)}}} fuse all {len(rules)} rules into one "
            f"group and no rule's delta is partitionable"
        )
    elif len(rules) == 1 and not any(p.partitionable for p in partitions):
        # A lone serial unit is still safe to run *concurrently* with an
        # incomparable sibling — only its internal rounds stay serial.
        fallback = f"{FALLBACK_SINGLETON}: {partitions[0].reason}"

    class_writes = tuple(
        sorted(s for s in writes if is_plane(s) or not schema.is_relation(s))
    )
    return StratumPlan(
        stage=graph.index,
        index=stratum_index,
        rules=tuple(rule.display_label() for rule in rules),
        writes=tuple(sorted(writes)),
        reads=tuple(sorted(reads)),
        groups=groups,
        conflicts=conflicts,
        partitions=partitions,
        depends_on=depends_on,
        hazards=tuple(hazards),
        fallback=fallback,
        class_writes=class_writes,
    )


def _stage_plan(graph: StageGraph, scheduled: bool, reason: Optional[str],
                schema: Schema) -> StagePlan:
    if not scheduled:
        # The schedule engine runs the stage as one monolithic fixpoint;
        # there is no stratum structure to parallelize. Rule-level
        # hazards are still reported (IQL802) so `repro analyze
        # --parallel` explains *why* divergent_invention cannot split.
        hazards: List[str] = []
        for eff in graph.effects:
            hazards.extend(_rule_hazards(eff))
        plan = StratumPlan(
            stage=graph.index,
            index=0,
            rules=tuple(rule.display_label() for rule in graph.rules),
            writes=tuple(sorted(graph.writes)),
            reads=tuple(sorted(
                frozenset().union(*(eff.reads for eff in graph.effects))
                if graph.effects else frozenset()
            )),
            groups=(tuple(range(len(graph.rules))),),
            conflicts=(),
            partitions=tuple(
                PartitionPlan(
                    rule.display_label(), False, (), (),
                    reason=f"{FALLBACK_UNSCHEDULED}: {reason}",
                )
                for rule in graph.rules
            ),
            depends_on=(),
            hazards=tuple(hazards),
            fallback=(
                f"{FALLBACK_HAZARD}: {hazards[0]}"
                if hazards
                else f"{FALLBACK_UNSCHEDULED}: {reason}"
            ),
        )
        return StagePlan(
            index=graph.index,
            scheduled=False,
            fallback=reason,
            strata=(plan,),
            levels=((0,),),
        )

    stratum_writes_by_index: List[FrozenSet[str]] = []
    for rule_indexes in graph.strata:
        writes: Set[str] = set()
        for r in rule_indexes:
            writes |= graph.effects[r].writes
        stratum_writes_by_index.append(frozenset(writes))

    strata = tuple(
        _stratum_plan(graph, i, schema, stratum_writes_by_index)
        for i in range(len(graph.strata))
    )

    # Topological levels of the stratum DAG (depth = longest dependency
    # chain). Strata in one level are pairwise incomparable and may run
    # concurrently when both are parallel-safe.
    depth: List[int] = []
    for plan in strata:
        depth.append(
            1 + max((depth[d] for d in plan.depends_on), default=-1)
        )
    levels: List[List[int]] = [[] for _ in range(max(depth, default=-1) + 1)]
    for i, d in enumerate(depth):
        levels[d].append(i)
    return StagePlan(
        index=graph.index,
        scheduled=True,
        fallback=None,
        strata=strata,
        levels=tuple(tuple(level) for level in levels),
    )


def build_parallel_certificate(
    program: Program,
    schema: Optional[Schema] = None,
    graphs: Optional[List[StageGraph]] = None,
    schedule: Optional[Schedule] = None,
    audit: Optional[Tuple[SurfaceCheck, ...]] = None,
    backend: str = "thread",
) -> ParallelCertificate:
    """The parallel certificate of ``program``.

    ``graphs``/``schedule`` may be supplied to share work with the other
    analysis passes; ``audit`` exists for tests that inject a failing
    surface check. ``backend`` selects the runtime-surface inventory the
    audit must cover (the process backend audits the serialization
    surfaces on top of the shared-memory ones).
    """
    schema = schema if schema is not None else program.schema
    if graphs is None:
        graphs = program_graphs(program, schema)
    if schedule is None:
        schedule = compute_schedule(program, schema)
    if audit is None:
        audit = audit_runtime_surfaces(backend=backend)
    stages = tuple(
        _stage_plan(
            graph,
            schedule.stages[graph.index].scheduled,
            schedule.stages[graph.index].fallback_reason,
            schema,
        )
        for graph in graphs
    )
    return ParallelCertificate(stages=stages, audit=audit, backend=backend)


# -- checking and validating ---------------------------------------------------------


def check_parallel_certificate(
    program: Program,
    certificate: ParallelCertificate,
    schema: Optional[Schema] = None,
) -> List[str]:
    """Re-validate ``certificate`` against ``program`` from scratch.

    Returns the violations that would make the certified concurrency
    unsound (empty list = sound). The check is a full re-derivation —
    the plan is rebuilt from the program and diffed structurally — plus
    targeted internal-consistency checks with better messages for the
    common tamper shapes (a hazard stratum promoted to safe, a group
    split across a conflict, a forged audit).
    """
    schema = schema if schema is not None else program.schema
    violations: List[str] = []

    if certificate.backend not in ("thread", "process"):
        violations.append(
            f"certificate names unknown backend {certificate.backend!r}"
        )
        return violations

    # The audit must hold *now*, not just when the certificate was
    # built — for the backend the certificate actually names.
    live_audit = audit_runtime_surfaces(backend=certificate.backend)
    for check in live_audit:
        if not check.holds:
            violations.append(
                f"runtime-surface audit fails: {check.surface} — {check.detail}"
            )
    recorded_failures = set(certificate.audit_failures)
    live_failures = {f"{c.surface}: {c.detail}" for c in live_audit if not c.holds}
    if recorded_failures != live_failures and not live_failures:
        if recorded_failures:
            violations.append(
                "certificate records audit failures the live audit does not "
                "reproduce — stale or tampered audit section"
            )

    # Structural re-derivation: the plan must equal what the program
    # yields today (same analysis version, same program).
    rebuilt = build_parallel_certificate(
        program, schema, audit=certificate.audit, backend=certificate.backend
    )
    if len(rebuilt.stages) != len(certificate.stages):
        violations.append(
            f"stage count mismatch: certificate has {len(certificate.stages)}, "
            f"program yields {len(rebuilt.stages)}"
        )
        return violations
    for ours, theirs in zip(certificate.stages, rebuilt.stages):
        if ours.to_json() != theirs.to_json():
            violations.append(
                f"stage {ours.index + 1} plan does not re-derive from the "
                f"program: certificate and analysis disagree"
            )

    # Targeted consistency checks (clearer messages than a JSON diff).
    for stage in certificate.stages:
        for plan in stage.strata:
            covered = sorted(i for group in plan.groups for i in group)
            if covered != list(range(len(plan.rules))):
                violations.append(
                    f"stage {stage.index + 1} stratum {plan.index + 1}: "
                    f"groups do not partition the rules"
                )
            group_of: Dict[str, int] = {}
            for g, group in enumerate(plan.groups):
                for i in group:
                    group_of[plan.rules[i]] = g
            for conflict in plan.conflicts:
                if group_of.get(conflict.a) != group_of.get(conflict.b):
                    violations.append(
                        f"stage {stage.index + 1} stratum {plan.index + 1}: "
                        f"conflicting rules {conflict.a!r} and {conflict.b!r} "
                        f"({conflict.kind} on {', '.join(conflict.symbols)}) "
                        f"sit in different groups"
                    )
            if plan.hazards and plan.fallback is None:
                violations.append(
                    f"stage {stage.index + 1} stratum {plan.index + 1}: "
                    f"hazards recorded but no serial fallback — a hazardous "
                    f"stratum must never run concurrently"
                )
            if plan.partitionable and plan.hazards:
                violations.append(
                    f"stage {stage.index + 1} stratum {plan.index + 1}: "
                    f"marked partitionable despite hazards"
                )
            for dep in plan.depends_on:
                if not 0 <= dep < plan.index:
                    violations.append(
                        f"stage {stage.index + 1} stratum {plan.index + 1}: "
                        f"dependency on stratum {dep + 1} breaks schedule order"
                    )
    return violations


def validate_parallel_certificate(
    program: Program,
    certificate: ParallelCertificate,
    schema: Optional[Schema] = None,
) -> List[str]:
    """:func:`check_parallel_certificate`, memoized on the certificate.

    Validation re-derives the whole plan — a static-analysis pass — and
    the executor gates every run on it, so the result is cached on the
    certificate keyed by program identity (the
    :func:`repro.analysis.maintenance.validate_certificate` pattern).
    """
    cached = getattr(certificate, "_validation", None)
    if cached is not None and cached[0] is program:
        return list(cached[1])
    violations = check_parallel_certificate(program, certificate, schema)
    object.__setattr__(certificate, "_validation", (program, tuple(violations)))
    return violations


# -- the IQL8xx diagnostics pass -----------------------------------------------------


def parallel_pass(
    program: Program,
    schema: Optional[Schema] = None,
    certificate: Optional[ParallelCertificate] = None,
) -> List[Diagnostic]:
    """IQL801-804 diagnostics from the parallel certificate.

    * ``IQL801`` — conflicts fuse a multi-rule stratum into one group
      with no partitionable delta: the stratum stays serial,
    * ``IQL802`` — a partition hazard (invention, ★, deletion, choose)
      forces its stratum (or unscheduled stage) serial-and-exclusive,
    * ``IQL803`` — the runtime-surface audit failed: no concurrency at
      all until the surface inventory is re-audited,
    * ``IQL804`` — info: the certified concurrency width of each stage
      that admits any parallelism.
    """
    schema = schema if schema is not None else program.schema
    if certificate is None:
        certificate = build_parallel_certificate(program, schema)
    out: List[Diagnostic] = []

    for failure in certificate.audit_failures:
        out.append(
            diagnostic(
                "IQL803",
                f"parallel execution disabled: runtime-surface audit failed "
                f"— {failure}",
            )
        )

    for stage in certificate.stages:
        stage_no = stage.index + 1
        for plan in stage.strata:
            if plan.fallback is None or plan.fallback.startswith(FALLBACK_SINGLETON):
                continue
            if plan.fallback.startswith(FALLBACK_CONFLICTS):
                out.append(
                    diagnostic(
                        "IQL801",
                        f"stage {stage_no} stratum {plan.index + 1} "
                        f"({', '.join(plan.rules)}) stays serial: "
                        f"{plan.fallback[len(FALLBACK_CONFLICTS) + 2:]}",
                        rule_label=plan.rules[0] if plan.rules else None,
                    )
                )
            elif plan.hazards:
                for hazard in plan.hazards:
                    out.append(
                        diagnostic(
                            "IQL802",
                            f"stage {stage_no} runs serial-and-exclusive: "
                            f"{hazard}",
                        )
                    )
            else:
                out.append(
                    diagnostic(
                        "IQL802",
                        f"stage {stage_no} stratum {plan.index + 1} stays "
                        f"serial: {plan.fallback}",
                    )
                )
        if stage.scheduled and stage.width > 1:
            partitionable = sum(
                1 for plan in stage.strata if plan.partitionable
            )
            out.append(
                diagnostic(
                    "IQL804",
                    f"stage {stage_no} admits concurrency width "
                    f"{stage.width}: {len(stage.strata)} stratum/strata "
                    f"across {len(stage.levels)} level(s), "
                    f"{partitionable} partitionable; effective workers = "
                    f"min(width, requested N, host CPUs)",
                )
            )
    return out


# -- renderings ----------------------------------------------------------------------


def render_parallel_text(certificate: ParallelCertificate) -> str:
    """The ``repro analyze --parallel`` text listing."""
    lines: List[str] = []
    lines.append(
        f"parallel certificate: "
        f"{'certified' if certificate.certified else 'AUDIT FAILED'}, "
        f"width {certificate.width}, backend {certificate.backend}"
        f"{', clean' if certificate.clean else ''}"
    )
    for check in certificate.audit:
        mark = "ok" if check.holds else "FAIL"
        lines.append(f"  audit [{mark}] {check.surface}: {check.detail}")
    for stage in certificate.stages:
        if not stage.scheduled:
            lines.append(
                f"stage {stage.index + 1}: unscheduled — {stage.fallback}"
            )
            for plan in stage.strata:
                for hazard in plan.hazards:
                    lines.append(f"    hazard: {hazard}")
            continue
        lines.append(
            f"stage {stage.index + 1}: width {stage.width}, "
            f"levels {[[i + 1 for i in level] for level in stage.levels]}"
        )
        for plan in stage.strata:
            status = (
                "partitionable" if plan.partitionable
                else "concurrent-safe" if plan.parallel_safe
                else "serial"
            )
            deps = (
                f" ← strata {[d + 1 for d in plan.depends_on]}"
                if plan.depends_on else ""
            )
            lines.append(
                f"  stratum {plan.index + 1} [{status}] "
                f"writes {{{', '.join(plan.writes)}}}{deps}"
            )
            for g, group in enumerate(plan.groups):
                labels = [plan.rules[i] for i in group]
                lines.append(f"    group {g + 1}: {'; '.join(labels)}")
            for conflict in plan.conflicts:
                lines.append(
                    f"    conflict ({conflict.kind} on "
                    f"{', '.join(conflict.symbols)}): {conflict.a} ⇄ {conflict.b}"
                )
            for part in plan.partitions:
                if part.partitionable:
                    lines.append(
                        f"    partition {part.rule}: delta positions "
                        f"{list(part.delta_positions)}, keyed by "
                        f"{{{', '.join(part.key_variables)}}}"
                    )
            if plan.fallback is not None:
                lines.append(f"    fallback: {plan.fallback}")
    return "\n".join(lines)


def parallel_to_dot(certificate: ParallelCertificate) -> str:
    """GraphViz DOT of the stratum DAGs: one cluster per stage, one box
    per stratum (doubled borders when partitionable, filled grey when
    serial), edges for the stratum dependencies the levels respect."""
    lines = ["digraph parallel {", "  rankdir=LR;", "  node [shape=box];"]
    for stage in certificate.stages:
        lines.append(f"  subgraph cluster_stage{stage.index + 1} {{")
        label = f"stage {stage.index + 1}"
        if not stage.scheduled:
            label += " (unscheduled)"
        else:
            label += f" width {stage.width}"
        lines.append(f'    label="{label}";')
        for plan in stage.strata:
            node = f"s{stage.index}_{plan.index}"
            attrs = [f'label="stratum {plan.index + 1}\\n{{{", ".join(plan.writes)}}}"']
            if plan.partitionable:
                attrs.append("peripheries=2")
            if not plan.parallel_safe:
                attrs.append("style=filled")
                attrs.append("fillcolor=lightgrey")
            lines.append(f"    {node} [{', '.join(attrs)}];")
            for dep in plan.depends_on:
                lines.append(f"    s{stage.index}_{dep} -> {node};")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)
