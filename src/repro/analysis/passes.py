"""The individual analysis passes behind :func:`repro.analysis.analyze`.

Each pass is a pure function ``Program -> List[Diagnostic]``:

* :func:`typecheck_pass` — well-typedness (Sections 3.1/3.3), delegating
  to :mod:`repro.iql.typecheck`'s diagnostic API (``IQL1xx``),
* :func:`binding_pass` — unsafe negation and unbound variables
  (``IQL201``/``IQL202``): hygiene warnings the paper's semantics
  tolerates (type-interpretation enumeration) but an engineer rarely
  wants,
* :func:`invention_cycle_pass` — cycles of G(Γ) through invention targets
  (``IQL301``), the static form of the evaluator's dynamic
  :class:`~repro.errors.NonTerminationError`,
* :func:`unused_pass` — unused declarations and dead rules
  (``IQL501``/``IQL502``),
* :func:`certification_pass` — the informational ``IQL401`` stamp
  produced alongside the :class:`~repro.analysis.certify.Certificate`.

The semantic passes assume a well-typed program; :func:`analyze` runs
them only when the typecheck pass reported no errors.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.analysis.certify import Certificate, certify
from repro.analysis.effects import rule_effects
from repro.diagnostics import Diagnostic, diagnostic
from repro.iql.literals import Choose
from repro.iql.program import Program
from repro.iql.sublanguages import (
    classify,
    find_invention_cycle,
    ptime_restricted_vars,
)
from repro.iql.terms import Var
from repro.iql.typecheck import check_program_diagnostics
from repro.schema.schema import Schema
from repro.typesys.expressions import ClassRef


def typecheck_pass(program: Program, schema: Optional[Schema] = None) -> List[Diagnostic]:
    """Well-typedness of every rule (``IQL1xx``)."""
    return check_program_diagnostics(program, schema)


# -- binding hygiene ---------------------------------------------------------------


def binding_pass(program: Program) -> List[Diagnostic]:
    """Unsafe negation (``IQL201``) and unbound variables (``IQL202``).

    A variable occurring only under negation can never be *bound* by the
    literal that mentions it; a body variable outside the Definition-5.1
    restricted set is bound by no positive literal at all, so the
    evaluator must enumerate its whole type interpretation — legal, but
    almost always a mistake (and the reason Example 3.4.2's one-line
    powerset is exponential).
    """
    out: List[Diagnostic] = []
    for rule in program.rules:
        positive_vars: Set[Var] = set()
        for literal in rule.body:
            if literal.positive and not isinstance(literal, Choose):
                positive_vars |= literal.variables()
        negation_only: Set[str] = set()
        for literal in rule.body:
            if literal.positive:
                continue
            for var in sorted(literal.variables() - positive_vars, key=lambda v: v.name):
                if var.name in negation_only:
                    continue
                negation_only.add(var.name)
                out.append(
                    diagnostic(
                        "IQL201",
                        f"variable {var.name!r} occurs only under negation; "
                        f"no positive literal can bind it — in rule: {rule!r}",
                        span=literal.span if literal.span is not None else rule.span,
                        rule_label=rule.display_label(),
                    )
                )
        unbound = rule.body_variables() - ptime_restricted_vars(rule)
        for var in sorted(unbound, key=lambda v: v.name):
            if var.name in negation_only:
                continue  # already reported with the sharper IQL201
            out.append(
                diagnostic(
                    "IQL202",
                    f"variable {var.name!r} (type {var.type!r}) is restricted by no "
                    f"positive literal; evaluation enumerates its type "
                    f"interpretation — in rule: {rule!r}",
                    span=var.span if var.span is not None else rule.span,
                    rule_label=rule.display_label(),
                )
            )
    return out


# -- termination -------------------------------------------------------------------


def invention_cycle_pass(program: Program) -> List[Diagnostic]:
    """Invention cycles on the dependency graph G(Γ) (``IQL301``).

    Flags, per stage, a cycle through the head symbol or target class of
    an oid-inventing rule — the configuration that lets the divergent
    ``R3(y, z) ← R3(x, y)`` loop of Section 5 fire forever. Stages that
    are invention-free, or whose inventions sit outside every cycle, are
    silent; so are ``choose`` rules, whose head-only variables select
    existing oids instead of inventing.
    """
    out: List[Diagnostic] = []
    for index, stage in enumerate(program.stages):
        rules = list(stage)
        cycle = find_invention_cycle(rules)
        if cycle is None:
            continue
        inventing = [r for r in rules if r.invention_variables() and not r.has_choose()]
        witness = inventing[0] if inventing else rules[0]
        classes = sorted(
            {
                var.type.name
                for rule in inventing
                for var in rule.invention_variables()
                if isinstance(var.type, ClassRef)
            }
        )
        out.append(
            diagnostic(
                "IQL301",
                f"stage {index + 1} invents oids (into {', '.join(classes)}) inside "
                f"the dependency cycle {' → '.join(cycle)}; the inflationary "
                f"fixpoint may diverge (Example 3.4.2)",
                span=witness.span,
                rule_label=witness.display_label(),
            )
        )
    return out


# -- dead code ---------------------------------------------------------------------


def unused_pass(program: Program) -> List[Diagnostic]:
    """Unused declarations (``IQL501``) and dead rules (``IQL502``).

    A relation or class that no rule mentions and that is neither input
    nor output is dead weight in the schema; a (non-delete) rule deriving
    into a name that no rule reads and that is not an output can never
    influence the program's result. Read/mention sets come from the
    shared :mod:`repro.analysis.effects` summaries.
    """
    out: List[Diagnostic] = []
    reads: Set[str] = set()
    mentioned: Set[str] = set()
    for rule in program.rules:
        effects = rule_effects(rule, program.schema)
        reads |= effects.schema_reads
        mentioned |= effects.schema_reads | effects.mentions
    io_names = set(program.input_names) | set(program.output_names)
    for name in sorted(program.schema.names):
        if name not in mentioned and name not in io_names:
            kind = "relation" if program.schema.is_relation(name) else "class"
            out.append(
                diagnostic(
                    "IQL501",
                    f"{kind} {name!r} is declared but never used "
                    f"(no rule mentions it; not an input or output)",
                )
            )
    for rule in program.rules:
        if rule.delete:
            continue
        name = rule.head_name()
        if name is None:
            continue
        if name not in reads and name not in program.output_names:
            out.append(
                diagnostic(
                    "IQL502",
                    f"rule derives into {name!r}, which no rule reads and which "
                    f"is not an output — in rule: {rule!r}",
                    span=rule.span,
                    rule_label=rule.display_label(),
                )
            )
    return out


# -- certification ------------------------------------------------------------------


def certification_pass(program: Program) -> Tuple[Certificate, List[Diagnostic]]:
    """The Definition-5.3 certificate plus its ``IQL401`` info diagnostic."""
    report = classify(program)
    certificate = certify(program, report)
    notes: List[Diagnostic] = [diagnostic("IQL401", f"certified: {certificate.summary()}")]
    return certificate, notes
