"""The unified entry point: ``analyze(program, schema) -> Report``.

One call runs every static pass — typechecking, binding hygiene,
invention-cycle detection, dead-code lints — plus Definition-5.3
certification, and returns their combined, source-ordered diagnostics.
``analyze_source`` is the text-level variant used by ``repro lint``; it
folds parse failures into the same Diagnostic shape (``IQL001``) instead
of raising, so a linter sees one uniform stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.certify import Certificate
from repro.analysis.depgraph import depgraph_pass
from repro.analysis.passes import (
    binding_pass,
    certification_pass,
    invention_cycle_pass,
    typecheck_pass,
    unused_pass,
)
from repro.diagnostics import Diagnostic, Span, diagnostic, sort_diagnostics
from repro.errors import ParseError
from repro.iql.program import Program
from repro.schema.schema import Schema


class PreflightWarning(UserWarning):
    """Warning category for diagnostics surfaced by the evaluator's
    opt-in pre-flight analysis (``Evaluator(preflight=True)``)."""


@dataclass
class Report:
    """Everything the analysis subsystem knows about one program."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    certificate: Optional[Certificate] = None
    program: Optional[Program] = None

    def by_severity(self, severity: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity("error")

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity("warning")

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was produced."""
        return not self.errors

    def render_text(self, filename: str = "<program>") -> str:
        """The classic linter listing: one ``file:line:col CODE message``
        line per diagnostic, then a severity tally."""
        lines = [d.render(filename) for d in self.diagnostics]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s) in {filename}"
        )
        return "\n".join(lines)

    def to_json(self, filename: Optional[str] = None) -> dict:
        out = {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "certificate": self.certificate.to_json() if self.certificate else None,
        }
        if filename is not None:
            out["file"] = filename
        return out


def analyze(program: Program, schema: Optional[Schema] = None) -> Report:
    """Run every analysis pass over ``program``.

    ``schema`` overrides the program's own schema for typechecking (the
    same override :func:`repro.iql.typecheck.check_program` accepts).
    The semantic passes — binding, cycles, dead code, certification —
    presuppose a well-typed program, so they run only when typechecking
    reports no errors.
    """
    diagnostics = list(typecheck_pass(program, schema))
    certificate: Optional[Certificate] = None
    if not any(d.severity == "error" for d in diagnostics):
        diagnostics.extend(binding_pass(program))
        diagnostics.extend(invention_cycle_pass(program))
        diagnostics.extend(unused_pass(program))
        diagnostics.extend(depgraph_pass(program, schema))
        certificate, notes = certification_pass(program)
        diagnostics.extend(notes)
    return Report(
        diagnostics=sort_diagnostics(diagnostics),
        certificate=certificate,
        program=program,
    )


def analyze_source(text: str, filename: str = "<program>") -> Report:
    """Parse ``text`` and analyze it; parse errors become ``IQL001``."""
    from repro.parser.grammar import program_from_source

    try:
        program = program_from_source(text)
    except ParseError as exc:
        span = Span(exc.line, exc.column) if getattr(exc, "line", 0) else None
        return Report(diagnostics=[diagnostic("IQL001", str(exc), span=span)])
    return analyze(program)
