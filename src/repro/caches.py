"""Small bounded mappings for per-rule evaluation caches.

The body planner (``Rule.plan_cache``) and the rule compiler
(``Rule.kernel_cache``) memoize per-rule artifacts keyed by body shape and
bound-variable set. Both used to be plain dicts, which grow without limit
when one process evaluates many programs (or many bound-set variants of
the same rule, as the semi-naive rewriting produces). :class:`BoundedDict`
caps them: insertion order is the eviction order (FIFO — the cheapest
policy that is O(1) per operation and needs no access bookkeeping on the
hot ``get`` path), and evictions are counted so ``repro run --stats`` can
surface cache pressure.

A FIFO bound is deliberately simple: evicting a live plan or kernel costs
one recomputation, never correctness — plans are cost hints and kernels
are recompiled on demand.
"""

from __future__ import annotations


class BoundedDict(dict):
    """A dict that evicts its oldest entry once ``maxsize`` is reached.

    Reads are plain dict reads (no reordering); writes of *new* keys evict
    the oldest insertion first when full. ``evictions`` counts how many
    entries were dropped over the cache's lifetime.
    """

    __slots__ = ("maxsize", "evictions")

    def __init__(self, maxsize: int):
        super().__init__()
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.evictions = 0

    def __setitem__(self, key, value):
        if key not in self and len(self) >= self.maxsize:
            del self[next(iter(self))]
            self.evictions += 1
        super().__setitem__(key, value)
