"""A standalone Datalog engine: the substrate IQL generalizes (Section 3.4)."""

from repro.datalog.ast import Constant, Database, DatalogProgram, DAtom, DRule, DTerm, DVar, freeze_db
from repro.datalog.embed import (
    database_to_instance,
    datalog_to_iql,
    instance_to_database,
    relational_schema,
    same_generation_program,
    transitive_closure_program,
    unreachable_program,
    win_move_program,
)
from repro.datalog.engine import (
    evaluate_inflationary,
    evaluate_naive,
    evaluate_seminaive,
    evaluate_stratified,
)
from repro.datalog.stratify import dependency_edges, is_stratifiable, stratify

__all__ = [
    "Constant",
    "Database",
    "DatalogProgram",
    "DAtom",
    "DRule",
    "DTerm",
    "DVar",
    "freeze_db",
    "database_to_instance",
    "datalog_to_iql",
    "instance_to_database",
    "relational_schema",
    "same_generation_program",
    "transitive_closure_program",
    "unreachable_program",
    "win_move_program",
    "evaluate_inflationary",
    "evaluate_naive",
    "evaluate_seminaive",
    "evaluate_stratified",
    "dependency_edges",
    "is_stratifiable",
    "stratify",
]
