"""A standalone Datalog dialect — the substrate language IQL generalizes.

Section 3.4: "each Datalog program can be viewed as a valid IQL program on
a relational schema, and its Datalog and IQL semantics are identical. The
same applies to Datalog with negation and inflationary semantics."

To make that claim *testable* (experiment E11) we implement Datalog
independently — flat predicates over constants, naive and semi-naive
bottom-up evaluation, stratified and inflationary negation — and a
compiler into IQL (:mod:`repro.datalog.embed`). The dedicated engine also
serves as the performance baseline the benchmarks compare the generic IQL
evaluator against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple, Union

from repro.errors import TypeCheckError

#: A Datalog term is a variable (DVar) or a Python constant.
Constant = Union[str, int, float, bool]


@dataclass(frozen=True)
class DVar:
    """A Datalog variable."""

    name: str

    def __repr__(self):
        return self.name


DTerm = Union[DVar, Constant]


@dataclass(frozen=True)
class DAtom:
    """``pred(t1, ..., tk)`` — possibly negated when used in a body."""

    predicate: str
    args: Tuple[DTerm, ...]
    positive: bool = True

    def __init__(self, predicate: str, *args: DTerm, positive: bool = True):
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "args", tuple(args))
        object.__setattr__(self, "positive", positive)

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> FrozenSet[DVar]:
        return frozenset(a for a in self.args if isinstance(a, DVar))

    def negate(self) -> "DAtom":
        return DAtom(self.predicate, *self.args, positive=not self.positive)

    def __repr__(self):
        bang = "" if self.positive else "¬"
        inner = ", ".join(repr(a) for a in self.args)
        return f"{bang}{self.predicate}({inner})"


@dataclass(frozen=True)
class DRule:
    """``head ← body`` with the classical safety condition available as a
    check: every head variable and every negated-atom variable must occur
    in a positive body atom."""

    head: DAtom
    body: Tuple[DAtom, ...]

    def __init__(self, head: DAtom, body: Iterable[DAtom] = ()):
        if not head.positive:
            raise TypeCheckError("Datalog heads are positive")
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))

    def is_safe(self) -> bool:
        positive_vars: Set[DVar] = set()
        for atom in self.body:
            if atom.positive:
                positive_vars |= atom.variables()
        needed = set(self.head.variables())
        for atom in self.body:
            if not atom.positive:
                needed |= atom.variables()
        return needed <= positive_vars

    def __repr__(self):
        if not self.body:
            return f"{self.head!r}."
        return f"{self.head!r} ← " + ", ".join(repr(a) for a in self.body)


class DatalogProgram:
    """A set of rules plus the split between EDB (input) and IDB (derived)
    predicates, with arities inferred and checked."""

    def __init__(self, rules: Iterable[DRule], edb: Optional[Iterable[str]] = None):
        self.rules: Tuple[DRule, ...] = tuple(rules)
        if not self.rules:
            raise TypeCheckError("a Datalog program needs at least one rule")
        self.arities: Dict[str, int] = {}
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                prior = self.arities.get(atom.predicate)
                if prior is None:
                    self.arities[atom.predicate] = atom.arity
                elif prior != atom.arity:
                    raise TypeCheckError(
                        f"predicate {atom.predicate!r} used with arities {prior} and {atom.arity}"
                    )
        heads = {rule.head.predicate for rule in self.rules}
        if edb is None:
            self.edb = frozenset(self.arities) - heads
        else:
            self.edb = frozenset(edb)
            clash = self.edb & heads
            if clash:
                raise TypeCheckError(f"EDB predicates appear in heads: {sorted(clash)}")
        self.idb = frozenset(self.arities) - self.edb

    def check_safety(self) -> None:
        for rule in self.rules:
            if not rule.is_safe():
                raise TypeCheckError(f"unsafe rule: {rule!r}")

    def has_negation(self) -> bool:
        return any(not atom.positive for rule in self.rules for atom in rule.body)

    def __repr__(self):
        return "\n".join(repr(rule) for rule in self.rules)


#: A Datalog database: predicate → set of constant tuples.
Database = Dict[str, Set[Tuple[Constant, ...]]]


def freeze_db(db: Database) -> Dict[str, FrozenSet[Tuple[Constant, ...]]]:
    return {pred: frozenset(rows) for pred, rows in db.items()}
