"""The Datalog → IQL embedding (Section 3.4).

"Each Datalog program can be viewed as a valid IQL program on a relational
schema, and its Datalog and IQL semantics are identical. The same applies
to Datalog with negation and inflationary semantics." — and stratified
negation embeds via stage composition.

:func:`datalog_to_iql` performs the (almost verbatim) translation:

* predicate p of arity k ↦ relation p with member type [A1: D, ..., Ak: D],
* atom p(t1, ..., tk) ↦ the positional IQL atom, variables typed D,
* inflationary Datalog¬ ↦ a single stage; stratified ↦ one stage per
  stratum.

:func:`database_to_instance` / :func:`instance_to_database` convert between
the flat-tuple and o-value worlds so test E11 can compare the two engines
fact-for-fact.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

from repro.datalog.ast import Constant, Database, DatalogProgram, DAtom, DRule, DVar
from repro.datalog.stratify import stratify
from repro.iql.literals import Membership
from repro.iql.program import Program
from repro.iql.rules import Rule
from repro.iql.shorthands import atom, columns
from repro.iql.terms import Const, Var
from repro.schema.instance import Instance
from repro.schema.schema import Schema
from repro.typesys.expressions import D
from repro.values.ovalues import OTuple


def relational_schema(program: DatalogProgram) -> Schema:
    """One IQL relation per predicate, typed [A1: D, ..., Ak: D]."""
    return Schema(
        relations={
            pred: columns(*([D] * arity)) for pred, arity in program.arities.items()
        }
    )


def _translate_atom(schema: Schema, datom: DAtom) -> Membership:
    args = [
        Var(arg.name, D) if isinstance(arg, DVar) else Const(arg) for arg in datom.args
    ]
    return atom(schema, datom.predicate, *args, positive=datom.positive)


def _translate_rule(schema: Schema, drule: DRule) -> Rule:
    return Rule(
        head=_translate_atom(schema, drule.head),
        body=[_translate_atom(schema, datom) for datom in drule.body],
        label=f"datalog:{drule.head.predicate}",
    )


def datalog_to_iql(
    program: DatalogProgram,
    semantics: str = "inflationary",
    output: Optional[Iterable[str]] = None,
) -> Program:
    """Translate a Datalog program into an equivalent IQL program.

    ``semantics`` is "inflationary" (one stage, rules in parallel — the
    IQL default) or "stratified" (one stage per stratum)."""
    schema = relational_schema(program)
    outputs = tuple(output) if output is not None else tuple(sorted(program.idb))
    if semantics == "inflationary":
        stages = [[_translate_rule(schema, r) for r in program.rules]]
    elif semantics == "stratified":
        stages = [
            [_translate_rule(schema, r) for r in layer] for layer in stratify(program)
        ]
    else:
        raise ValueError(f"unknown semantics {semantics!r}")
    return Program(
        schema,
        stages=stages,
        input_names=sorted(program.edb),
        output_names=outputs,
    )


def database_to_instance(
    program: DatalogProgram, db: Database, schema: Optional[Schema] = None, names: Optional[Iterable[str]] = None
) -> Instance:
    """Load a flat database into an instance over (a projection of) the
    relational schema."""
    schema = schema or relational_schema(program)
    keep = set(names) if names is not None else set(schema.relations)
    target = schema.project([n for n in schema.relations if n in keep])
    instance = Instance(target)
    for pred, rows in db.items():
        if pred not in keep:
            continue
        attrs = _attrs_for(program.arities[pred])
        for row in rows:
            instance.add_relation_member(pred, OTuple(dict(zip(attrs, row))))
    return instance


def instance_to_database(instance: Instance) -> Database:
    """Read a relational instance back into flat constant tuples."""
    db: Database = {}
    for name, members in instance.relations.items():
        rows: Set[Tuple[Constant, ...]] = set()
        for member in members:
            rows.add(tuple(member[attr] for attr in member.attributes))
        db[name] = rows
    return db


def _attrs_for(arity: int) -> Tuple[str, ...]:
    from repro.iql.shorthands import positional_attrs

    return positional_attrs(arity)


# -- canned programs for tests and benchmarks -----------------------------------


def transitive_closure_program() -> DatalogProgram:
    """T = the transitive closure of the EDB relation E."""
    x, y, z = DVar("x"), DVar("y"), DVar("z")
    return DatalogProgram(
        [
            DRule(DAtom("T", x, y), [DAtom("E", x, y)]),
            DRule(DAtom("T", x, z), [DAtom("T", x, y), DAtom("E", y, z)]),
        ]
    )


def same_generation_program() -> DatalogProgram:
    """The classic same-generation query over a parent relation."""
    x, y, xp, yp = DVar("x"), DVar("y"), DVar("xp"), DVar("yp")
    return DatalogProgram(
        [
            DRule(DAtom("SG", x, x), [DAtom("Person", x)]),
            DRule(
                DAtom("SG", x, y),
                [DAtom("Par", x, xp), DAtom("SG", xp, yp), DAtom("Par", y, yp)],
            ),
        ]
    )


def win_move_program() -> DatalogProgram:
    """The win-move game — the canonical stratified-vs-inflationary probe.

    ``Win(x) ← Move(x, y), ¬Win(y)`` is *not* stratifiable; the stratified
    entry point rejects it while the inflationary one computes a fixpoint —
    the distinction Section 3.4 inherits from Abiteboul–Vianu.
    """
    x, y = DVar("x"), DVar("y")
    return DatalogProgram([DRule(DAtom("Win", x), [DAtom("Move", x, y), DAtom("Win", y, positive=False)])])


def unreachable_program() -> DatalogProgram:
    """Stratified negation: nodes not reachable from the source.

    Stratum 0 computes reachability; stratum 1 negates it."""
    x, y = DVar("x"), DVar("y")
    return DatalogProgram(
        [
            DRule(DAtom("Reach", x), [DAtom("Source", x)]),
            DRule(DAtom("Reach", y), [DAtom("Reach", x), DAtom("E", x, y)]),
            DRule(DAtom("Unreach", x), [DAtom("Node", x), DAtom("Reach", x, positive=False)]),
        ]
    )
