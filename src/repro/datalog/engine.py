"""Bottom-up Datalog evaluation: naive and semi-naive.

Three entry points, matching the semantics the paper discusses:

* :func:`evaluate_naive` — recompute every rule against the full database
  each round (the baseline the IQL evaluator generalizes),
* :func:`evaluate_seminaive` — the classical delta-driven optimization:
  each positive body atom in turn is restricted to last round's new facts;
  benchmark E11 measures the gap,
* :func:`evaluate_stratified` / :func:`evaluate_inflationary` — the two
  negation semantics Section 3.4 shows embeddable in IQL (strata map to
  stage composition; inflationary maps to plain rules).

The join is a simple left-to-right binding-propagating nested loop with a
per-predicate hash index on bound-prefix positions — deliberately the same
strategy as the IQL evaluator's, so cross-engine comparisons measure
language overhead rather than algorithmic differences.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.datalog.ast import Constant, Database, DatalogProgram, DAtom, DRule, DVar
from repro.datalog.stratify import stratify
from repro.errors import EvaluationError

Row = Tuple[Constant, ...]
Bindings = Dict[DVar, Constant]


def _match_atom(atom: DAtom, row: Row, bindings: Bindings) -> Optional[Bindings]:
    """Extend ``bindings`` so the atom's args equal ``row``, or None."""
    out = bindings
    copied = False
    for arg, value in zip(atom.args, row):
        if isinstance(arg, DVar):
            bound = out.get(arg)
            if bound is None:
                if not copied:
                    out = dict(out)
                    copied = True
                out[arg] = value
            elif bound != value:
                return None
        elif arg != value:
            return None
    return out


def _solve(
    body: Tuple[DAtom, ...],
    db: Database,
    bindings: Bindings,
    delta_index: Optional[int] = None,
    delta: Optional[Database] = None,
) -> Iterator[Bindings]:
    """All valuations of ``body``; if ``delta_index`` is given, that atom is
    matched against ``delta`` instead of the full database (semi-naive)."""
    if not body:
        yield bindings
        return
    atom, rest = body[0], body[1:]
    if atom.positive:
        source = delta if delta_index == 0 else db
        rows = source.get(atom.predicate, ()) if source is not None else ()
        next_delta = None if delta_index is None else delta_index - 1
        for row in rows:
            extended = _match_atom(atom, row, bindings)
            if extended is not None:
                yield from _solve(rest, db, extended, next_delta, delta)
    else:
        # Negation as failure over the current database; safety guarantees
        # all variables are bound by now for stratified programs.
        values = []
        for arg in atom.args:
            if isinstance(arg, DVar):
                if arg not in bindings:
                    raise EvaluationError(
                        f"unsafe negation: {atom!r} reached with {arg!r} unbound"
                    )
                values.append(bindings[arg])
            else:
                values.append(arg)
        if tuple(values) not in db.get(atom.predicate, ()):
            next_delta = None if delta_index is None else delta_index - 1
            yield from _solve(rest, db, bindings, next_delta, delta)


def _instantiate_head(head: DAtom, bindings: Bindings) -> Row:
    values = []
    for arg in head.args:
        if isinstance(arg, DVar):
            if arg not in bindings:
                raise EvaluationError(f"head variable {arg!r} unbound (unsafe rule)")
            values.append(bindings[arg])
        else:
            values.append(arg)
    return tuple(values)


def _copy_db(db: Database) -> Database:
    return {pred: set(rows) for pred, rows in db.items()}


def _prepare(program: DatalogProgram, edb: Database) -> Database:
    db = _copy_db(edb)
    for pred in program.arities:
        db.setdefault(pred, set())
    return db


def evaluate_naive(program: DatalogProgram, edb: Database, rules: Optional[List[DRule]] = None) -> Database:
    """Naive fixpoint: all rules against the full database until no change."""
    db = _prepare(program, edb)
    active = list(rules if rules is not None else program.rules)
    changed = True
    while changed:
        changed = False
        for rule in active:
            # Materialize before mutating: the generator iterates db's sets.
            solutions = list(_solve(rule.body, db, {}))
            target = db[rule.head.predicate]
            for bindings in solutions:
                row = _instantiate_head(rule.head, bindings)
                if row not in target:
                    target.add(row)
                    changed = True
    return db


def evaluate_seminaive(
    program: DatalogProgram, edb: Database, rules: Optional[List[DRule]] = None
) -> Database:
    """Semi-naive fixpoint: every derivation uses at least one delta fact.

    For each rule with k positive atoms we run k delta-restricted variants
    per round. Negative atoms always consult the full (previous-round)
    database — correct for stratified use, where the negated predicates are
    already saturated.
    """
    db = _prepare(program, edb)
    active = list(rules if rules is not None else program.rules)

    delta: Database = {pred: set(rows) for pred, rows in db.items()}
    first = True
    while True:
        new: Database = {pred: set() for pred in db}
        for rule in active:
            positive_positions = [
                i for i, atom in enumerate(rule.body) if atom.positive
            ]
            if first or not positive_positions:
                variants = [None]  # full evaluation once, to seed
            else:
                variants = positive_positions
            for variant in variants:
                body = rule.body
                if variant is None:
                    solutions = _solve(body, db, {})
                else:
                    # Reorder so the delta-restricted atom comes first: the
                    # generator's delta_index counts down positions.
                    reordered = (body[variant],) + body[:variant] + body[variant + 1 :]
                    solutions = _solve(reordered, db, {}, delta_index=0, delta=delta)
                for bindings in solutions:
                    row = _instantiate_head(rule.head, bindings)
                    if row not in db[rule.head.predicate]:
                        new[rule.head.predicate].add(row)
        first = False
        if not any(new.values()):
            return db
        for pred, rows in new.items():
            db[pred] |= rows
        delta = new


def evaluate_stratified(
    program: DatalogProgram, edb: Database, seminaive: bool = True
) -> Database:
    """Stratified semantics: evaluate strata bottom-up, each to fixpoint."""
    program.check_safety()
    db = _prepare(program, edb)
    for layer in stratify(program):
        engine = evaluate_seminaive if seminaive else evaluate_naive
        db = engine(program, db, rules=layer)
    return db


def evaluate_inflationary(program: DatalogProgram, edb: Database) -> Database:
    """Inflationary semantics for Datalog¬ (Abiteboul–Vianu / Kolaitis–
    Papadimitriou): all rules fire in parallel against the *current*
    database; facts are only ever added; stop at fixpoint. This is exactly
    the semantics IQL restricts to on relational schemas, so outputs here
    must match the IQL evaluator fact-for-fact (test E11).
    """
    db = _prepare(program, edb)
    changed = True
    while changed:
        changed = False
        derived: Set[Tuple[str, Row]] = set()
        for rule in program.rules:
            for bindings in _solve(rule.body, db, {}):
                derived.add((rule.head.predicate, _instantiate_head(rule.head, bindings)))
        for pred, row in derived:
            if row not in db[pred]:
                db[pred].add(row)
                changed = True
    return db
