"""Stratification for Datalog with negation.

A program is stratifiable when its predicate dependency graph has no cycle
through a negative edge; strata are then computed so that every negative
dependency points strictly downward. Section 3.4 of the paper notes that
Datalog with stratified negation embeds in IQL "almost verbatim" using
sequential composition — each stratum becomes a stage.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.datalog.ast import DatalogProgram, DRule
from repro.errors import TypeCheckError


def dependency_edges(program: DatalogProgram) -> Set[Tuple[str, str, bool]]:
    """Edges (body_pred, head_pred, is_negative)."""
    edges = set()
    for rule in program.rules:
        for atom in rule.body:
            edges.add((atom.predicate, rule.head.predicate, not atom.positive))
    return edges


def stratify(program: DatalogProgram) -> List[List[DRule]]:
    """The strata of ``program``, as lists of rules in evaluation order.

    Raises :class:`TypeCheckError` if the program is not stratifiable
    (negative cycle). Implementation: the classical fixpoint on stratum
    numbers — σ(head) ≥ σ(body) for positive edges, σ(head) > σ(body) for
    negative ones — with divergence beyond |predicates| signalling a
    negative cycle.
    """
    predicates = set(program.arities)
    stratum: Dict[str, int] = {pred: 0 for pred in predicates}
    edges = dependency_edges(program)
    for _ in range(len(predicates) + 1):
        changed = False
        for src, dst, negative in edges:
            required = stratum[src] + (1 if negative else 0)
            if stratum[dst] < required:
                stratum[dst] = required
                changed = True
        if not changed:
            break
    else:
        raise TypeCheckError("program is not stratifiable (cycle through negation)")
    if max(stratum.values(), default=0) > len(predicates):
        raise TypeCheckError("program is not stratifiable (cycle through negation)")

    layers: Dict[int, List[DRule]] = {}
    for rule in program.rules:
        layers.setdefault(stratum[rule.head.predicate], []).append(rule)
    return [layers[level] for level in sorted(layers)]


def is_stratifiable(program: DatalogProgram) -> bool:
    try:
        stratify(program)
    except TypeCheckError:
        return False
    return True
