"""Structured diagnostics for the static-analysis layer (`repro.analysis`).

This module is the dependency-free core of the analysis subsystem: source
spans, severities, the stable ``IQLxxx`` error-code registry, and the
:class:`Diagnostic` record every checker emits. It deliberately imports
nothing from the rest of the package so that low-level modules
(:mod:`repro.errors`, :mod:`repro.iql.typecheck`) can use it without
cycles.

Error-code conventions:

* ``IQL0xx`` — lexing/parsing,
* ``IQL1xx`` — well-typedness (Sections 3.1/3.3),
* ``IQL2xx`` — binding hygiene (unsafe negation, unbound variables),
* ``IQL3xx`` — termination (invention cycles on G(Γ), Section 5),
* ``IQL4xx`` — certification stamps (informational),
* ``IQL5xx`` — dead-code style lints (unused declarations and rules),
* ``IQL6xx`` — dataflow analysis on the per-stage dependency graph
  (stratification, dead-at-entry rules, invention bounds),
* ``IQL7xx`` — update-impact and incremental-maintainability analysis
  (which derived symbols a base-fact update reaches, and whether the
  affected cone can be maintained incrementally),
* ``IQL8xx`` — parallel-safety analysis (which rule firings inside a
  certified stratum may run concurrently without changing the
  inflationary fixpoint, and which runtime surfaces that soundness
  argument assumes).

The catalogue with minimal triggering programs lives in
``docs/LANGUAGE.md`` ("Diagnostics and error codes").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

ERROR = "error"
WARNING = "warning"
INFO = "info"

SEVERITIES = (ERROR, WARNING, INFO)


@dataclass(frozen=True)
class Span:
    """A half-open source region, 1-based, as produced by the lexer.

    ``end_line``/``end_column`` are optional; a point span is rendered from
    its start alone. Spans compare by position so diagnostics sort in
    source order.
    """

    line: int
    column: int
    end_line: Optional[int] = None
    end_column: Optional[int] = None

    @classmethod
    def from_token(cls, token) -> "Span":
        """The span of one lexer token (anything with value/line/column)."""
        width = max(len(str(token.value)), 1)
        return cls(token.line, token.column, token.line, token.column + width)

    def to(self, other: Optional["Span"]) -> "Span":
        """The span from this start to ``other``'s end."""
        if other is None:
            return self
        return Span(
            self.line,
            self.column,
            other.end_line if other.end_line is not None else other.line,
            other.end_column if other.end_column is not None else other.column,
        )

    def sort_key(self) -> Tuple[int, int]:
        return (self.line, self.column)

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


#: code -> (default severity, one-line summary)
CODES: Dict[str, Tuple[str, str]] = {
    "IQL001": (ERROR, "syntax error"),
    "IQL101": (ERROR, "variable typed inconsistently within a rule"),
    "IQL102": (ERROR, "unknown relation or class"),
    "IQL103": (ERROR, "variable of unknown class type"),
    "IQL104": (ERROR, "ill-typed rule head"),
    "IQL105": (ERROR, "ill-typed body literal"),
    "IQL106": (ERROR, "invention variable with non-class type"),
    "IQL107": (ERROR, "deletion rule with invention variables"),
    "IQL108": (ERROR, "choose combined with deletion"),
    "IQL109": (ERROR, "illegal head shape"),
    "IQL201": (WARNING, "unsafe negation: variable occurs only under negation"),
    "IQL202": (WARNING, "unbound variable: no positive literal restricts it"),
    "IQL301": (WARNING, "invention cycle: evaluation may diverge"),
    "IQL401": (INFO, "sublanguage certification"),
    "IQL501": (WARNING, "unused relation or class"),
    "IQL502": (WARNING, "dead rule: derives into a name that is never read"),
    "IQL601": (WARNING, "negation inside a recursive SCC: stage is not stratified"),
    "IQL602": (WARNING, "rule can never fire: reads a symbol that is always empty"),
    "IQL603": (WARNING, "oid invention inside a recursive SCC: creation may be unbounded"),
    "IQL604": (INFO, "statically bounded invention: polynomial oid-creation bound"),
    "IQL701": (WARNING, "update reaches a non-maintainable construct: full recompute"),
    "IQL702": (WARNING, "delete through negation requires over-delete/re-derive (DRed)"),
    "IQL703": (INFO, "update cone is empty: the symbol is static"),
    "IQL704": (INFO, "bounded update cone: only the listed strata need re-running"),
    "IQL801": (WARNING, "rule conflict: read/write overlap serializes the stratum"),
    "IQL802": (WARNING, "partition hazard: invention/★/deletion/choose is order-sensitive"),
    "IQL803": (WARNING, "shared-state capture: a runtime surface breaks the parallel audit"),
    "IQL804": (INFO, "bounded parallelism: the certified concurrency width of a stage"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass.

    ``code`` is a stable ``IQLxxx`` identifier from :data:`CODES`;
    ``severity`` is ``error``/``warning``/``info``; ``span`` is the source
    region when the program came from text (programmatically built programs
    have span ``None``); ``rule_label`` names the offending rule when one
    is identifiable.
    """

    code: str
    severity: str
    message: str
    span: Optional[Span] = None
    rule_label: Optional[str] = None

    def render(self, filename: str = "<program>") -> str:
        """The conventional one-line form ``file:line:col CODE message``."""
        line = self.span.line if self.span else 0
        column = self.span.column if self.span else 0
        return f"{filename}:{line}:{column} {self.code} {self.message}"

    def to_json(self) -> dict:
        doc: dict = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.span is not None:
            doc["span"] = {"line": self.span.line, "column": self.span.column}
            if self.span.end_line is not None:
                doc["span"]["end_line"] = self.span.end_line
                doc["span"]["end_column"] = self.span.end_column
        if self.rule_label is not None:
            doc["rule"] = self.rule_label
        return doc

    def __str__(self) -> str:
        where = f" (at {self.span})" if self.span else ""
        return f"{self.code} {self.severity}: {self.message}{where}"


def diagnostic(
    code: str,
    message: str,
    span: Optional[Span] = None,
    rule_label: Optional[str] = None,
    severity: Optional[str] = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic`, defaulting the severity from the registry."""
    if code not in CODES:
        raise ValueError(f"unknown diagnostic code {code!r}")
    if severity is None:
        severity = CODES[code][0]
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")
    return Diagnostic(code, severity, message, span, rule_label)


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Source order, spanless entries last; stable within a position."""
    return sorted(
        diagnostics,
        key=lambda d: (d.span is None,) + (d.span.sort_key() if d.span else (0, 0)),
    )


def diagnostics_to_json(diagnostics: Iterable[Diagnostic]) -> List[dict]:
    """The shared machine-readable form used by ``repro lint`` and
    ``repro check --json``."""
    return [d.to_json() for d in diagnostics]
