"""Exception hierarchy for the IQL reproduction.

Every error raised by the library derives from :class:`ReproError`, so client
code can catch a single base class. The subclasses mirror the layers of the
system: values, types, schemas/instances, the IQL language (static checks)
and the evaluator (dynamic checks).
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class _LocatedError(ReproError):
    """A static-check error that can carry its source location.

    ``rule_label`` names the offending rule (its explicit label, or a
    rendering of the rule); ``span`` is a :class:`repro.diagnostics.Span`
    when the program came from surface syntax. Both are optional so the
    legacy raising call sites keep working; when present they are folded
    into ``str(exc)`` so even uncaught errors identify which rule failed.
    """

    def __init__(self, message: str, *, rule_label: Optional[str] = None, span=None):
        super().__init__(message)
        self.rule_label = rule_label
        self.span = span

    def __str__(self) -> str:
        base = super().__str__()
        context = []
        if self.rule_label:
            context.append(f"rule {self.rule_label}")
        if self.span is not None:
            context.append(f"at {self.span}")
        if context:
            return f"{base} [{', '.join(context)}]"
        return base


class OValueError(ReproError):
    """A malformed o-value was constructed or supplied."""


class TypeExpressionError(ReproError):
    """A malformed type expression was constructed or supplied."""


class SchemaError(ReproError):
    """A schema violates a well-formedness condition (Definition 2.3.1)."""


class InstanceError(ReproError):
    """An instance violates its schema (Definition 2.3.2)."""


class TypeCheckError(_LocatedError):
    """An IQL program fails static type checking (Section 3.1/3.3)."""


class EvaluationError(ReproError):
    """The evaluator hit a dynamic error (e.g. an ill-typed derived fact)."""


class NonTerminationError(EvaluationError):
    """The inflationary fixpoint did not converge within the step budget.

    IQL programs may legitimately diverge (Example 3.4.2 discusses recursion
    through invention); the evaluator bounds the number of iterations and
    raises this error instead of looping forever.
    """


class GenericityError(EvaluationError):
    """A ``choose`` literal would have violated genericity (Section 4.4)."""


class SublanguageError(_LocatedError):
    """A program does not belong to the claimed IQL sublanguage (Section 5)."""


class ParseError(ReproError):
    """The surface-syntax parser rejected its input."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class RegularTreeError(ReproError):
    """A malformed regular-tree equation system was supplied (Section 7)."""
