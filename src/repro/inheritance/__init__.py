"""Type inheritance (Section 6): isa hierarchies compiled to union types."""

from repro.inheritance.hierarchy import IsaHierarchy, inherited_assignment
from repro.inheritance.inhschema import InheritanceSchema

__all__ = ["IsaHierarchy", "inherited_assignment", "InheritanceSchema"]
