"""Isa hierarchies and inherited oid assignments (Section 6.1).

Definition 6.2 extends schemas with a partial order ≤ on class names, and
Definition 6.1.1 derives the *inherited* oid assignment: the oids visible
through P are those created in P or any of its sub-classes,

    π̄(P) = ∪ { π(P') | P' ≤ P }.

"Oids are created in a single class and automatically belong to the
ancestors of this class in the isa hierarchy" — the engineering intuition
the formalization captures. The underlying π stays disjoint, which is what
keeps type checking possible (Example 4.1.2's failure mode never arises).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Set, Tuple

from repro.errors import SchemaError
from repro.values.ovalues import Oid


class IsaHierarchy:
    """A partial order on class names, built from generating pairs.

    ``pairs`` are (sub, super) statements — "sub isa super". The reflexive-
    transitive closure is computed eagerly; cycles (which would violate
    antisymmetry) are rejected.
    """

    def __init__(self, classes: Iterable[str], pairs: Iterable[Tuple[str, str]] = ()):
        self.classes: FrozenSet[str] = frozenset(classes)
        below: Dict[str, Set[str]] = {p: {p} for p in self.classes}
        direct: Dict[str, Set[str]] = {p: set() for p in self.classes}
        for sub, sup in pairs:
            for name in (sub, sup):
                if name not in self.classes:
                    raise SchemaError(f"isa mentions unknown class {name!r}")
            direct[sub].add(sup)
        # Transitive closure of "is below": ancestors[p] = all P' with p ≤ P'.
        ancestors: Dict[str, Set[str]] = {p: {p} for p in self.classes}
        changed = True
        while changed:
            changed = False
            for p in self.classes:
                for sup in list(ancestors[p]):
                    for higher in direct[sup]:
                        if higher not in ancestors[p]:
                            ancestors[p].add(higher)
                            changed = True
        for p in self.classes:
            for q in ancestors[p]:
                if p != q and p in ancestors[q]:
                    raise SchemaError(f"isa cycle through {p!r} and {q!r}")
        self._ancestors: Dict[str, FrozenSet[str]] = {
            p: frozenset(a) for p, a in ancestors.items()
        }
        descendants: Dict[str, Set[str]] = {p: set() for p in self.classes}
        for p, ancs in self._ancestors.items():
            for a in ancs:
                descendants[a].add(p)
        self._descendants: Dict[str, FrozenSet[str]] = {
            p: frozenset(d) for p, d in descendants.items()
        }

    def leq(self, sub: str, sup: str) -> bool:
        """sub ≤ sup in the hierarchy."""
        return sup in self._ancestors[sub]

    def ancestors(self, name: str) -> FrozenSet[str]:
        """All P' with name ≤ P' (reflexive)."""
        return self._ancestors[name]

    def descendants(self, name: str) -> FrozenSet[str]:
        """All P' with P' ≤ name (reflexive) — the classes whose oids P sees."""
        return self._descendants[name]

    def is_trivial(self) -> bool:
        return all(len(a) == 1 for a in self._ancestors.values())

    def __repr__(self):
        facts = [
            f"{p} isa {q}"
            for p in sorted(self.classes)
            for q in sorted(self._ancestors[p] - {p})
        ]
        return "; ".join(facts) or "(no isa)"


def inherited_assignment(
    pi: Mapping[str, Set[Oid]], hierarchy: IsaHierarchy
) -> Dict[str, Set[Oid]]:
    """π̄ from π (Definition 6.1.1): π̄(P) = ∪ {π(P') | P' ≤ P}."""
    return {
        name: set().union(*(set(pi.get(sub, set())) for sub in hierarchy.descendants(name)))
        for name in hierarchy.classes
    }
