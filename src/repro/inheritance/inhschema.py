"""Schemas with type inheritance and their compilation away (Section 6.2).

An :class:`InheritanceSchema` is the quadruple (R, P, T, ≤) of Definition
6.2. The meaning of types under inheritance combines two ingredients:

* the *-interpretation (open records): the declared type of a class is
  only a lower bound on its record structure; the *effective* type of
  P is t_P with ⟦t_P⟧π̄* = ∩ { ⟦T(P')⟧π̄* | P ≤ P' } — computed here via
  starred intersection reduction (Proposition 6.1),
* the *inherited* oid assignment π̄: class references in types see the
  oids of all sub-classes.

Definition 6.2.2 then validates instances against the **unstarred**
interpretation of t_P given π̄ — "the schema fully specifies the structure
of o-values in legal instances" (no stray attributes).

The punchline of Section 6 — and :func:`compile_away_isa` — is that every
inheritance schema is equivalent to a plain schema: take t_P as the class
types, then replace each class reference P by the disjunction of its
sub-classes. IQL runs on the compiled schema *unchanged*: union types
subsume inheritance.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import InstanceError, SchemaError
from repro.inheritance.hierarchy import IsaHierarchy, inherited_assignment
from repro.schema.instance import Instance
from repro.schema.schema import Schema
from repro.typesys.expressions import Intersection, TypeExpr, classref, union
from repro.typesys.interpretation import member
from repro.typesys.reduction import intersection_free


class InheritanceSchema:
    """(R, P, T, ≤) — Definition 6.2."""

    def __init__(
        self,
        relations: Optional[Mapping[str, TypeExpr]] = None,
        classes: Optional[Mapping[str, TypeExpr]] = None,
        isa: Iterable[Tuple[str, str]] = (),
    ):
        self.base = Schema(relations, classes)
        self.hierarchy = IsaHierarchy(self.base.classes, isa)

    @property
    def relations(self) -> Dict[str, TypeExpr]:
        return self.base.relations

    @property
    def classes(self) -> Dict[str, TypeExpr]:
        return self.base.classes

    # -- effective class types ----------------------------------------------------

    def effective_type(self, class_name: str) -> TypeExpr:
        """t_P: the conjunction of the declared types of all super-classes,
        under the *-interpretation, reduced to an intersection-free form
        (Proposition 6.1). For the university example this turns

            ta isa student, ta isa instructor,
            T(student) = [name, course-taken], T(instructor) = [name, course-taught]

        into t_ta = [name, course-taken, course-taught]."""
        if class_name not in self.classes:
            raise SchemaError(f"unknown class {class_name!r}")
        supertypes = [
            self.classes[sup] for sup in sorted(self.hierarchy.ancestors(class_name))
        ]
        merged = Intersection.make(*supertypes)
        return intersection_free(merged, star=True)

    def effective_types(self) -> Dict[str, TypeExpr]:
        return {name: self.effective_type(name) for name in self.classes}

    # -- instance validation (Definition 6.2.2) --------------------------------------

    def validate_instance(self, instance: Instance) -> None:
        """Check ``instance`` (built over the *plain* base schema, with
        disjoint π) against the inheritance semantics:

        1. ρ(R) ⊆ ⟦T(R)⟧π̄ for each relation,
        2. ν(π(P)) ⊆ ⟦t_P⟧π̄ for each class,
        3. ν total on set-valued classes (inherited from the base model).
        """
        pi_bar = inherited_assignment(instance.classes, self.hierarchy)
        for name, member_type in self.relations.items():
            for v in instance.relations.get(name, ()):
                if not member(v, member_type, pi_bar):
                    raise InstanceError(
                        f"ρ({name}) member {v!r} is not of type {member_type!r} "
                        f"under the inherited assignment"
                    )
        for name in self.classes:
            t_p = self.effective_type(name)
            for oid in instance.classes.get(name, ()):
                value = instance.value_of(oid)
                if value is None:
                    continue
                if not member(value, t_p, pi_bar):
                    raise InstanceError(
                        f"ν({oid!r}) = {value!r} is not of effective type "
                        f"t_{name} = {t_p!r}"
                    )

    def is_valid_instance(self, instance: Instance) -> bool:
        try:
            self.validate_instance(instance)
        except InstanceError:
            return False
        return True

    # -- compilation to a plain schema (the Section 6.2 translation) -------------------

    def compile_away_isa(self) -> Schema:
        """The plain schema S′ = (R, P, T*) with no isa:

        first substitute each class's declared type by its effective type
        t_P, then replace every class reference P (in relation and class
        types alike) by the disjunction of P's sub-classes. An instance is
        legal for (R, P, T, ≤) iff it is legal for S′ — so IQL needs no
        modification whatsoever to query inheritance schemas.
        """
        substitution = {
            name: union(*(classref(sub) for sub in sorted(self.hierarchy.descendants(name))))
            for name in self.classes
        }
        new_relations = {
            name: t.substitute_classes(substitution) for name, t in self.relations.items()
        }
        new_classes = {
            name: self.effective_type(name).substitute_classes(substitution)
            for name in self.classes
        }
        return Schema(new_relations, new_classes)

    def __repr__(self):
        return f"{self.base!r}\nisa: {self.hierarchy!r}"
