"""JSON (de)serialization of schemas and instances.

O-values are structural but contain oids, which JSON has no native notion
of; the wire format tags every non-scalar:

* constants — JSON scalars (strings, numbers, booleans),
* oids — ``{"oid": "<name>"}`` where the name is unique within the
  document (display names are preserved when unique, synthesized
  otherwise),
* tuples — ``{"tuple": {attr: value, ...}}``,
* sets — ``{"set": [value, ...]}``.

An instance document carries the schema (types rendered in the surface
syntax of :mod:`repro.parser`), the class extents, ν, and the relations::

    {
      "schema": {"relations": {"R": "[A1: D, A2: D]"}, "classes": {...}},
      "relations": {"R": [ ... o-values ... ]},
      "classes": {"P": ["o1", "o2"]},
      "nu": {"o1": ... o-value ...}
    }

Round-trip: ``loads(dumps(instance))`` is equal to the instance up to
renaming of oids (fresh :class:`~repro.values.Oid` objects are minted on
load — oid identity is process-local, exactly as the model prescribes).
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.errors import OValueError, SchemaError
from repro.parser.grammar import type_from_source
from repro.schema.instance import Instance
from repro.schema.schema import Schema
from repro.typesys.expressions import TypeExpr
from repro.values.ovalues import Oid, OSet, OTuple, OValue, is_constant, sort_key


def _render_type(t: TypeExpr) -> str:
    """Types render through repr, which matches the surface syntax up to
    the ∨/∧ glyphs; translate those to | and &."""
    return repr(t).replace("∨", "|").replace("∧", "&").replace("⊥", "none")


def value_to_json(value: OValue, oid_names: Dict[Oid, str]):
    if isinstance(value, Oid):
        return {"oid": oid_names[value]}
    if isinstance(value, OTuple):
        return {"tuple": {attr: value_to_json(v, oid_names) for attr, v in value.items()}}
    if isinstance(value, OSet):
        ordered = sorted(value, key=sort_key)
        return {"set": [value_to_json(v, oid_names) for v in ordered]}
    if is_constant(value):
        return value
    raise OValueError(f"not an o-value: {value!r}")


def value_from_json(doc, oids: Dict[str, Oid]) -> OValue:
    if isinstance(doc, dict):
        if set(doc) == {"oid"}:
            name = doc["oid"]
            if name not in oids:
                raise OValueError(f"value references undeclared oid {name!r}")
            return oids[name]
        if set(doc) == {"tuple"}:
            return OTuple({attr: value_from_json(v, oids) for attr, v in doc["tuple"].items()})
        if set(doc) == {"set"}:
            return OSet(value_from_json(v, oids) for v in doc["set"])
        raise OValueError(f"unrecognized value document: {doc!r}")
    if is_constant(doc):
        return doc
    raise OValueError(f"unrecognized value document: {doc!r}")


def _oid_names(instance: Instance) -> Dict[Oid, str]:
    """Stable unique wire names: the display name when unique, else
    name#serial."""
    by_name: Dict[str, int] = {}
    for oid in sorted(instance.objects(), key=lambda o: o.serial):
        by_name[oid.name or "o"] = by_name.get(oid.name or "o", 0) + 1
    names: Dict[Oid, str] = {}
    for oid in sorted(instance.objects(), key=lambda o: o.serial):
        base = oid.name or "o"
        if by_name[base] == 1:
            names[oid] = base
        else:
            names[oid] = f"{base}#{oid.serial}"
    return names


def instance_to_dict(instance: Instance) -> dict:
    oid_names = _oid_names(instance)
    return {
        "schema": {
            "relations": {
                name: _render_type(t) for name, t in sorted(instance.schema.relations.items())
            },
            "classes": {
                name: _render_type(t) for name, t in sorted(instance.schema.classes.items())
            },
        },
        "relations": {
            name: [
                value_to_json(v, oid_names)
                for v in sorted(members, key=sort_key)
            ]
            for name, members in sorted(instance.relations.items())
        },
        "classes": {
            name: sorted(oid_names[o] for o in oids)
            for name, oids in sorted(instance.classes.items())
        },
        "nu": {
            oid_names[o]: value_to_json(v, oid_names)
            for o, v in sorted(instance.nu.items(), key=lambda kv: kv[0].serial)
        },
    }


def schema_from_dict(doc: dict) -> Schema:
    classes = doc.get("classes", {})
    class_names = list(classes)
    return Schema(
        relations={
            name: type_from_source(src, class_names)
            for name, src in doc.get("relations", {}).items()
        },
        classes={
            name: type_from_source(src, class_names) for name, src in classes.items()
        },
    )


def instance_from_dict(doc: dict, schema: Optional[Schema] = None) -> Instance:
    if schema is None:
        if "schema" not in doc:
            raise SchemaError("instance document has no schema and none was supplied")
        schema = schema_from_dict(doc["schema"])
    oids: Dict[str, Oid] = {}
    instance = Instance(schema)
    for class_name, members in doc.get("classes", {}).items():
        for wire_name in members:
            oid = oids.setdefault(wire_name, Oid(wire_name.split("#")[0]))
            instance.add_class_member(class_name, oid)
    for wire_name, value_doc in doc.get("nu", {}).items():
        if wire_name not in oids:
            raise SchemaError(f"ν defined for undeclared oid {wire_name!r}")
        instance.assign(oids[wire_name], value_from_json(value_doc, oids))
    for relation, values in doc.get("relations", {}).items():
        for value_doc in values:
            instance.add_relation_member(relation, value_from_json(value_doc, oids))
    return instance


def dumps(instance: Instance, indent: int = 2) -> str:
    """Serialize an instance (schema included) to a JSON string."""
    return json.dumps(instance_to_dict(instance), indent=indent, ensure_ascii=False)


def loads(text: str, schema: Optional[Schema] = None) -> Instance:
    """Parse an instance document; fresh oids are minted (renaming is the
    identity of the model, so this loses nothing)."""
    return instance_from_dict(json.loads(text), schema)


def dump(instance: Instance, path: str, indent: int = 2) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(instance, indent))


def load(path: str, schema: Optional[Schema] = None) -> Instance:
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read(), schema)
