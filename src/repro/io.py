"""JSON (de)serialization of schemas and instances.

O-values are structural but contain oids, which JSON has no native notion
of; the wire format tags every non-scalar:

* constants — JSON scalars (strings, numbers, booleans),
* oids — ``{"oid": "<name>"}`` where the name is unique within the
  document (display names are preserved when unique, synthesized
  otherwise),
* tuples — ``{"tuple": {attr: value, ...}}``,
* sets — ``{"set": [value, ...]}``.

An instance document carries the schema (types rendered in the surface
syntax of :mod:`repro.parser`), the class extents, ν, and the relations::

    {
      "schema": {"relations": {"R": "[A1: D, A2: D]"}, "classes": {...}},
      "relations": {"R": [ ... o-values ... ]},
      "classes": {"P": ["o1", "o2"]},
      "nu": {"o1": ... o-value ...}
    }

Round-trip: ``loads(dumps(instance))`` is equal to the instance up to
renaming of oids (fresh :class:`~repro.values.Oid` objects are minted on
load — oid identity is process-local, exactly as the model prescribes).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import OValueError, SchemaError
from repro.parser.grammar import type_from_source
from repro.schema.instance import Instance
from repro.schema.schema import Schema
from repro.typesys.expressions import TypeExpr
from repro.values.ovalues import (
    Oid,
    OSet,
    OTuple,
    OValue,
    _oid_from_wire,
    _OID_REGISTRY,
    _OID_REGISTRY_LOCK,
    is_constant,
    sort_key,
)


def _render_type(t: TypeExpr) -> str:
    """Types render through repr, which matches the surface syntax up to
    the ∨/∧ glyphs; translate those to | and &."""
    return repr(t).replace("∨", "|").replace("∧", "&").replace("⊥", "none")


def value_to_json(value: OValue, oid_names: Dict[Oid, str]):
    if isinstance(value, Oid):
        return {"oid": oid_names[value]}
    if isinstance(value, OTuple):
        return {"tuple": {attr: value_to_json(v, oid_names) for attr, v in value.items()}}
    if isinstance(value, OSet):
        ordered = sorted(value, key=sort_key)
        return {"set": [value_to_json(v, oid_names) for v in ordered]}
    if is_constant(value):
        return value
    raise OValueError(f"not an o-value: {value!r}")


def value_from_json(doc, oids: Dict[str, Oid]) -> OValue:
    if isinstance(doc, dict):
        if set(doc) == {"oid"}:
            name = doc["oid"]
            if name not in oids:
                raise OValueError(f"value references undeclared oid {name!r}")
            return oids[name]
        if set(doc) == {"tuple"}:
            return OTuple({attr: value_from_json(v, oids) for attr, v in doc["tuple"].items()})
        if set(doc) == {"set"}:
            return OSet(value_from_json(v, oids) for v in doc["set"])
        raise OValueError(f"unrecognized value document: {doc!r}")
    if is_constant(doc):
        return doc
    raise OValueError(f"unrecognized value document: {doc!r}")


def _oid_names(instance: Instance) -> Dict[Oid, str]:
    """Stable unique wire names: the display name when unique, else
    name#serial."""
    by_name: Dict[str, int] = {}
    for oid in sorted(instance.objects(), key=lambda o: o.serial):
        by_name[oid.name or "o"] = by_name.get(oid.name or "o", 0) + 1
    names: Dict[Oid, str] = {}
    for oid in sorted(instance.objects(), key=lambda o: o.serial):
        base = oid.name or "o"
        if by_name[base] == 1:
            names[oid] = base
        else:
            names[oid] = f"{base}#{oid.serial}"
    return names


def instance_to_dict(instance: Instance) -> dict:
    oid_names = _oid_names(instance)
    return {
        "schema": {
            "relations": {
                name: _render_type(t) for name, t in sorted(instance.schema.relations.items())
            },
            "classes": {
                name: _render_type(t) for name, t in sorted(instance.schema.classes.items())
            },
        },
        "relations": {
            name: [
                value_to_json(v, oid_names)
                for v in sorted(members, key=sort_key)
            ]
            for name, members in sorted(instance.relations.items())
        },
        "classes": {
            name: sorted(oid_names[o] for o in oids)
            for name, oids in sorted(instance.classes.items())
        },
        "nu": {
            oid_names[o]: value_to_json(v, oid_names)
            for o, v in sorted(instance.nu.items(), key=lambda kv: kv[0].serial)
        },
    }


def schema_from_dict(doc: dict) -> Schema:
    classes = doc.get("classes", {})
    class_names = list(classes)
    return Schema(
        relations={
            name: type_from_source(src, class_names)
            for name, src in doc.get("relations", {}).items()
        },
        classes={
            name: type_from_source(src, class_names) for name, src in classes.items()
        },
    )


def instance_from_dict(doc: dict, schema: Optional[Schema] = None) -> Instance:
    if schema is None:
        if "schema" not in doc:
            raise SchemaError("instance document has no schema and none was supplied")
        schema = schema_from_dict(doc["schema"])
    oids: Dict[str, Oid] = {}
    instance = Instance(schema)
    for class_name, members in doc.get("classes", {}).items():
        for wire_name in members:
            oid = oids.setdefault(wire_name, Oid(wire_name.split("#")[0]))
            instance.add_class_member(class_name, oid)
    for wire_name, value_doc in doc.get("nu", {}).items():
        if wire_name not in oids:
            raise SchemaError(f"ν defined for undeclared oid {wire_name!r}")
        instance.assign(oids[wire_name], value_from_json(value_doc, oids))
    for relation, values in doc.get("relations", {}).items():
        for value_doc in values:
            instance.add_relation_member(relation, value_from_json(value_doc, oids))
    return instance


def dumps(instance: Instance, indent: int = 2) -> str:
    """Serialize an instance (schema included) to a JSON string."""
    return json.dumps(instance_to_dict(instance), indent=indent, ensure_ascii=False)


def loads(text: str, schema: Optional[Schema] = None) -> Instance:
    """Parse an instance document; fresh oids are minted (renaming is the
    identity of the model, so this loses nothing)."""
    return instance_from_dict(json.loads(text), schema)


# -- the fact-batch wire encoding (the process executor's hot path) ------------------
#
# The JSON document format above mints fresh oids on load — right for
# documents, wrong for a coordinator/worker exchange where identity must
# survive the round trip. Fact batches crossing a process boundary use a
# flat node-table encoding instead:
#
#   (nodes, {name: [root_index, ...]})
#
# where ``nodes`` lists each *distinct* value node once, children before
# parents, as a small tagged tuple —
#
#   ("c", const)                      a constant,
#   ("o", serial, name)               an oid, identity-resolved like pickle,
#   ("t", ((attr, child_idx), ...))   a tuple over earlier nodes,
#   ("s", (child_idx, ...))           a set over earlier nodes.
#
# Hash-consing makes this *compact* by construction: interned sharing is
# preserved on the wire (one table entry per distinct node, however many
# facts reference it), the payload is plain tuples/ints that (un)pickle
# at C speed with no per-object ``__reduce__`` dispatch, and decoding
# rebuilds bottom-up through the interned constructors, so decoded facts
# are canonical nodes of the *receiving* process's store. Oids resolve
# through the same serial registry pickling uses: encoding registers the
# live object so the sender recognizes its own oids in the reply.


class _WireEncoder:
    """Accumulates the node table of one fact batch."""

    __slots__ = ("nodes", "_index")

    def __init__(self) -> None:
        self.nodes: List[tuple] = []
        self._index: Dict[object, int] = {}

    def encode(self, value: OValue) -> int:
        # Interned nodes and oids key by identity (the canonical node IS
        # the identity); constants key by (type, value) so 1/True/1.0
        # keep their Python type across the wire.
        key = (
            (type(value), value)
            if is_constant(value)
            else id(value)
        )
        found = self._index.get(key)
        if found is not None:
            return found
        if isinstance(value, Oid):
            with _OID_REGISTRY_LOCK:
                _OID_REGISTRY[value.serial] = value
            node = ("o", value.serial, value.name)
        elif isinstance(value, OTuple):
            node = ("t", tuple((attr, self.encode(v)) for attr, v in value.items()))
        elif isinstance(value, OSet):
            node = ("s", tuple(self.encode(v) for v in value))
        elif is_constant(value):
            node = ("c", value)
        else:
            raise OValueError(f"not an o-value: {value!r}")
        self.nodes.append(node)
        index = len(self.nodes) - 1
        self._index[key] = index
        return index


#: One fact batch on the wire: the node table plus per-name root indexes.
WireBatch = Tuple[List[tuple], Dict[str, List[int]]]


def batch_to_wire(facts: Mapping[str, Iterable[OValue]]) -> WireBatch:
    """Encode ``{name: facts}`` for a process-boundary crossing."""
    encoder = _WireEncoder()
    payload = {
        name: [encoder.encode(value) for value in values]
        for name, values in facts.items()
    }
    return (encoder.nodes, payload)


def batch_from_wire(wire: WireBatch) -> Dict[str, List[OValue]]:
    """Decode a fact batch into this process's canonical value nodes."""
    nodes, payload = wire
    values: List[OValue] = []
    for node in nodes:
        tag = node[0]
        if tag == "c":
            values.append(node[1])
        elif tag == "o":
            values.append(_oid_from_wire(node[1], node[2]))
        elif tag == "t":
            values.append(OTuple(tuple((attr, values[i]) for attr, i in node[1])))
        elif tag == "s":
            values.append(OSet(values[i] for i in node[1]))
        else:
            raise OValueError(f"unrecognized wire node {node!r}")
    return {
        name: [values[i] for i in roots] for name, roots in payload.items()
    }


def dump(instance: Instance, path: str, indent: int = 2) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(instance, indent))


def load(path: str, schema: Optional[Schema] = None) -> Instance:
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read(), schema)
