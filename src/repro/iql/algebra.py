"""A relational algebra compiled into IQL (Section 3.4).

"Using composition, it is easy to see that relational calculus queries and
Datalog with stratified negation are expressible in IQL almost verbatim."
This module makes the claim executable for the algebra: expressions over
flat relations compile to IQL programs — selection, projection, natural
join, rename, union, and difference (the operator that needs negation and
therefore staging).

Expressions are composable values::

    q = Project(
            Select(Join(Rel("Emp"), Rel("Dept")), eq_attr("dept", "dept")),
            ["name", "budget"])
    program = compile_query(q, schema, output="Answer")

The compiler synthesizes one auxiliary relation per operator node and one
stage per "stratum" (differences force everything beneath them to finish
first — precisely the stratified-negation discipline of Section 3.4).
All compiled programs are invention-free and range-restricted, hence IQLrr:
the algebra lives in the PTIME fragment, as it should.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union as TyUnion

from repro.errors import TypeCheckError
from repro.iql.literals import Equality, Membership
from repro.iql.program import Program
from repro.iql.rules import Rule
from repro.iql.terms import Const, NameTerm, TupleTerm, Var
from repro.schema.schema import Schema
from repro.typesys.expressions import D, TupleOf, TypeExpr, tuple_of
from repro.values.ovalues import OValue, is_constant


# -- expression AST ---------------------------------------------------------------


class AlgebraExpr:
    """Base class of algebra expressions."""

    def attributes(self, schema: Schema) -> Tuple[str, ...]:
        raise NotImplementedError


@dataclass(frozen=True)
class Rel(AlgebraExpr):
    """A base relation (must exist in the schema with a flat tuple type)."""

    name: str

    def attributes(self, schema: Schema) -> Tuple[str, ...]:
        from repro.typesys.expressions import Base

        t = schema.relations.get(self.name)
        if not isinstance(t, TupleOf) or not all(
            isinstance(ct, Base) for _, ct in t.fields
        ):
            raise TypeCheckError(
                f"algebra expressions need flat relations over D; "
                f"{self.name!r} has {t!r}"
            )
        return t.attributes


@dataclass(frozen=True)
class Predicate:
    """A conjunct for Select: attr = constant, attr ≠ constant, or
    attr1 = attr2 / attr1 ≠ attr2."""

    left: str
    right: TyUnion[str, OValue]
    right_is_attr: bool
    positive: bool = True


def eq_const(attr: str, value: OValue) -> Predicate:
    return Predicate(attr, value, right_is_attr=False)


def neq_const(attr: str, value: OValue) -> Predicate:
    return Predicate(attr, value, right_is_attr=False, positive=False)


def eq_attr(a: str, b: str) -> Predicate:
    return Predicate(a, b, right_is_attr=True)


def neq_attr(a: str, b: str) -> Predicate:
    return Predicate(a, b, right_is_attr=True, positive=False)


@dataclass(frozen=True)
class Select(AlgebraExpr):
    source: AlgebraExpr
    predicates: Tuple[Predicate, ...]

    def __init__(self, source: AlgebraExpr, *predicates: Predicate):
        object.__setattr__(self, "source", source)
        flat: List[Predicate] = []
        for p in predicates:
            if isinstance(p, (list, tuple)):
                flat.extend(p)
            else:
                flat.append(p)
        object.__setattr__(self, "predicates", tuple(flat))

    def attributes(self, schema: Schema) -> Tuple[str, ...]:
        return self.source.attributes(schema)


@dataclass(frozen=True)
class Project(AlgebraExpr):
    source: AlgebraExpr
    attrs: Tuple[str, ...]

    def __init__(self, source: AlgebraExpr, attrs: Sequence[str]):
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "attrs", tuple(attrs))

    def attributes(self, schema: Schema) -> Tuple[str, ...]:
        available = set(self.source.attributes(schema))
        missing = [a for a in self.attrs if a not in available]
        if missing:
            raise TypeCheckError(f"projection on missing attributes {missing}")
        return tuple(sorted(self.attrs))


@dataclass(frozen=True)
class Rename(AlgebraExpr):
    source: AlgebraExpr
    mapping: Tuple[Tuple[str, str], ...]

    def __init__(self, source: AlgebraExpr, mapping: Dict[str, str]):
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "mapping", tuple(sorted(mapping.items())))

    def attributes(self, schema: Schema) -> Tuple[str, ...]:
        renames = dict(self.mapping)
        return tuple(sorted(renames.get(a, a) for a in self.source.attributes(schema)))


@dataclass(frozen=True)
class Join(AlgebraExpr):
    """Natural join: tuples agreeing on all shared attributes."""

    left: AlgebraExpr
    right: AlgebraExpr

    def attributes(self, schema: Schema) -> Tuple[str, ...]:
        return tuple(
            sorted(set(self.left.attributes(schema)) | set(self.right.attributes(schema)))
        )


@dataclass(frozen=True)
class UnionOp(AlgebraExpr):
    left: AlgebraExpr
    right: AlgebraExpr

    def attributes(self, schema: Schema) -> Tuple[str, ...]:
        a, b = self.left.attributes(schema), self.right.attributes(schema)
        if a != b:
            raise TypeCheckError(f"union over mismatched attributes {a} vs {b}")
        return a


@dataclass(frozen=True)
class Diff(AlgebraExpr):
    left: AlgebraExpr
    right: AlgebraExpr

    def attributes(self, schema: Schema) -> Tuple[str, ...]:
        a, b = self.left.attributes(schema), self.right.attributes(schema)
        if a != b:
            raise TypeCheckError(f"difference over mismatched attributes {a} vs {b}")
        return a


# -- compilation -------------------------------------------------------------------


@dataclass
class _CompileState:
    schema: Schema
    aux_relations: Dict[str, TypeExpr] = field(default_factory=dict)
    rules_by_stratum: Dict[int, List[Rule]] = field(default_factory=dict)
    counter: "itertools.count" = field(default_factory=lambda: itertools.count(1))

    def fresh(self, attrs: Sequence[str]) -> str:
        name = f"_alg{next(self.counter)}"
        self.aux_relations[name] = tuple_of({a: D for a in attrs})
        return name

    def add_rule(self, stratum: int, rule: Rule) -> None:
        self.rules_by_stratum.setdefault(stratum, []).append(rule)


def _row(var_prefix: str, attrs: Sequence[str]) -> Dict[str, Var]:
    return {a: Var(f"{var_prefix}_{a}", D) for a in attrs}


def _compile(expr: AlgebraExpr, state: _CompileState) -> Tuple[str, int]:
    """Compile ``expr``; returns (relation name, stratum it is complete at)."""
    schema = state.schema
    if isinstance(expr, Rel):
        expr.attributes(schema)  # validates flatness
        return expr.name, 0

    if isinstance(expr, Select):
        src_name, stratum = _compile(expr.source, state)
        attrs = expr.source.attributes(schema)
        out = state.fresh(attrs)
        vars_row = _row("s", attrs)
        body: List = [Membership(NameTerm(src_name), TupleTerm(vars_row))]
        for p in expr.predicates:
            if p.left not in vars_row:
                raise TypeCheckError(f"selection on missing attribute {p.left!r}")
            if p.right_is_attr:
                if p.right not in vars_row:
                    raise TypeCheckError(f"selection on missing attribute {p.right!r}")
                body.append(Equality(vars_row[p.left], vars_row[p.right], p.positive))
            else:
                if not is_constant(p.right):
                    raise TypeCheckError(f"{p.right!r} is not a constant")
                body.append(Equality(vars_row[p.left], Const(p.right), p.positive))
        state.add_rule(
            stratum, Rule(Membership(NameTerm(out), TupleTerm(vars_row)), body, label=f"σ→{out}")
        )
        return out, stratum

    if isinstance(expr, Project):
        src_name, stratum = _compile(expr.source, state)
        src_attrs = expr.source.attributes(schema)
        out_attrs = expr.attributes(schema)
        out = state.fresh(out_attrs)
        vars_row = _row("p", src_attrs)
        head_row = {a: vars_row[a] for a in out_attrs}
        state.add_rule(
            stratum,
            Rule(
                Membership(NameTerm(out), TupleTerm(head_row)),
                [Membership(NameTerm(src_name), TupleTerm(vars_row))],
                label=f"π→{out}",
            ),
        )
        return out, stratum

    if isinstance(expr, Rename):
        src_name, stratum = _compile(expr.source, state)
        renames = dict(expr.mapping)
        src_attrs = expr.source.attributes(schema)
        out_attrs = expr.attributes(schema)
        out = state.fresh(out_attrs)
        vars_row = _row("r", src_attrs)
        head_row = {renames.get(a, a): v for a, v in vars_row.items()}
        state.add_rule(
            stratum,
            Rule(
                Membership(NameTerm(out), TupleTerm(head_row)),
                [Membership(NameTerm(src_name), TupleTerm(vars_row))],
                label=f"ρ→{out}",
            ),
        )
        return out, stratum

    if isinstance(expr, Join):
        left_name, ls = _compile(expr.left, state)
        right_name, rs = _compile(expr.right, state)
        stratum = max(ls, rs)
        left_attrs = expr.left.attributes(schema)
        right_attrs = expr.right.attributes(schema)
        out_attrs = expr.attributes(schema)
        out = state.fresh(out_attrs)
        # shared variables realize the natural-join condition
        shared_vars = {a: Var(f"j_{a}", D) for a in out_attrs}
        left_row = {a: shared_vars[a] for a in left_attrs}
        right_row = {a: shared_vars[a] for a in right_attrs}
        state.add_rule(
            stratum,
            Rule(
                Membership(NameTerm(out), TupleTerm(shared_vars)),
                [
                    Membership(NameTerm(left_name), TupleTerm(left_row)),
                    Membership(NameTerm(right_name), TupleTerm(right_row)),
                ],
                label=f"⋈→{out}",
            ),
        )
        return out, stratum

    if isinstance(expr, UnionOp):
        left_name, ls = _compile(expr.left, state)
        right_name, rs = _compile(expr.right, state)
        stratum = max(ls, rs)
        attrs = expr.attributes(schema)
        out = state.fresh(attrs)
        for src in (left_name, right_name):
            vars_row = _row("u", attrs)
            state.add_rule(
                stratum,
                Rule(
                    Membership(NameTerm(out), TupleTerm(vars_row)),
                    [Membership(NameTerm(src), TupleTerm(vars_row))],
                    label=f"∪→{out}",
                ),
            )
        return out, stratum

    if isinstance(expr, Diff):
        left_name, ls = _compile(expr.left, state)
        right_name, rs = _compile(expr.right, state)
        # Difference must observe the *completed* operands: its rule runs
        # one stratum later — the stratified-negation staging of §3.4.
        stratum = max(ls, rs) + 1
        attrs = expr.attributes(schema)
        out = state.fresh(attrs)
        vars_row = _row("d", attrs)
        state.add_rule(
            stratum,
            Rule(
                Membership(NameTerm(out), TupleTerm(vars_row)),
                [
                    Membership(NameTerm(left_name), TupleTerm(vars_row)),
                    Membership(NameTerm(right_name), TupleTerm(vars_row), positive=False),
                ],
                label=f"−→{out}",
            ),
        )
        return out, stratum

    raise TypeCheckError(f"unknown algebra expression {expr!r}")


def compile_query(
    expr: AlgebraExpr,
    schema: Schema,
    output: str = "Answer",
    inputs: Optional[Sequence[str]] = None,
) -> Program:
    """Compile an algebra expression into an IQL program over ``schema``.

    The result relation is named ``output``; ``inputs`` defaults to all the
    base relations the expression mentions. The compiled program is
    invention-free and range-restricted — IQLrr, i.e. PTIME — which the
    tests assert for every compiled query.
    """
    state = _CompileState(schema=schema)
    result_name, final_stratum = _compile(expr, state)

    out_attrs = expr.attributes(schema)
    state.aux_relations[output] = tuple_of({a: D for a in out_attrs})
    vars_row = _row("o", out_attrs)
    state.add_rule(
        final_stratum,
        Rule(
            Membership(NameTerm(output), TupleTerm(vars_row)),
            [Membership(NameTerm(result_name), TupleTerm(vars_row))],
            label=f"emit→{output}",
        ),
    )

    full_schema = schema.with_names(relations=state.aux_relations)
    stages = [
        state.rules_by_stratum[s] for s in sorted(state.rules_by_stratum)
    ]
    if inputs is None:
        inputs = sorted(_base_relations(expr))
    return Program(
        full_schema,
        stages=stages,
        input_names=inputs,
        output_names=[output],
    )


def _base_relations(expr: AlgebraExpr) -> set:
    if isinstance(expr, Rel):
        return {expr.name}
    out = set()
    for attr in ("source", "left", "right"):
        sub = getattr(expr, attr, None)
        if isinstance(sub, AlgebraExpr):
            out |= _base_relations(sub)
    return out
