"""Rule compilation: specialize planned bodies into Python closures.

PR2–PR4 removed the algorithmic waste from the join engine (hash indexes,
semi-naive deltas, certified scheduling); what remains on the hot loops is
*interpretive dispatch*: :func:`~repro.iql.valuation.solve_body` walks a
plan step list and re-dispatches through ``eval_term``/``satisfies``/
``match`` per candidate binding, copying a dict per extension. This module
follows the Soufflé-style move of specializing each rule once: the
memoized plan from :func:`~repro.iql.valuation.plan_body` is compiled into
a *closure chain* — one nested closure per plan step, calling the next
step directly — over a single mutable **slot list** instead of dict
copies.

What the compiler resolves at compile time (per rule, per instance):

* **slot layout** — every variable gets a fixed integer slot; which slots
  are bound at each program point is static (each generator step binds
  exactly its literal's variables), so slots are written in place with no
  undo machinery,
* **index probes** — the relation attribute-projection dicts of
  :class:`~repro.iql.indexes.InstanceIndexes` are captured as plain dicts,
  so a probe is one ``dict.get`` at run time,
* **scan sources** — relation/class extension *sets* are captured
  directly (the :class:`~repro.schema.instance.Instance` mutators update
  these objects in place, so captured references stay current),
* **constant subterms** — ground, name-free terms are evaluated once at
  compile time,
* **the head** — each rule gets a compiled blocking check (the
  valuation-domain condition of γ1, including invention variables ranging
  over class extents) and a compiled applier (relation/class membership,
  set-element insertion, and the weak-assignment (★) protocol).

The compilable fragment covers everything the planner emits *except* the
constructs whose matching is inherently enumerative; those raise
:class:`CompileFallback` and the owning rule runs interpreted:

* deletion bodies (IQL* rules mutate state mid-step),
* ``choose`` (IQL+ selection runs through the evaluator's orbit check),
* unbound dereference enumeration (``x̂`` matched with ``x`` unbound),
* set-assignment enumeration (matching a ``{t1, ..., tk}`` pattern).

**Invalidation.** A kernel hard-codes one instance's sets and index dicts,
so it is valid only while ``kernel.instance is instance`` and — when index
dicts were captured — ``instance._indexes`` is still the captured
:class:`InstanceIndexes` object. ``Instance.drop_indexes()`` (the IQL*
deletion path) replaces that object, so stale kernels fail the check and
are recompiled from post-deletion state, exactly like ``Rule.plan_cache``
entries going stale. Kernels are cached per rule in the bounded
``Rule.kernel_cache`` keyed by (shape, use_indexes); a different bound-set
produces a different shape key, never a stale reuse.

**Contract.** A running kernel iterates live extension sets; callers must
not mutate the instance while a kernel is executing. Both engines satisfy
this: γ1 collects additions and applies them after all bodies are solved,
and the semi-naive rounds stage new facts in a delta before applying.

Compiled execution reports ``rules_compiled`` / ``rules_interpreted`` /
``compile_fallbacks`` / ``compile_time`` into
:class:`~repro.iql.evaluator.EvaluationStats`. The interpreter's
``index_probes`` / ``index_scans_avoided`` counters are *not* maintained
by compiled kernels (the probe is a plain dict lookup; counting it would
cost what the compilation saved).
"""

from __future__ import annotations

import time
from typing import AbstractSet, Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.effects import DeltaBody, mentions_name
from repro.errors import EvaluationError
from repro.iql.literals import Choose, Equality, Literal, Membership
from repro.iql.rules import Rule
from repro.iql.terms import Const, Deref, NameTerm, SetTerm, Term, TupleTerm, Var
from repro.iql.valuation import eval_term, lookup_plan
from repro.schema.instance import Instance
from repro.typesys.enumeration import enumerate_type
from repro.typesys.expressions import Base, ClassRef
from repro.values.ovalues import Oid, OSet, OTuple, OValue, is_constant

#: A binding environment: one mutable list, one slot per variable.
Slots = List[Optional[OValue]]
#: A consumer invoked once per solution, with the (live, reused) slot list.
Consumer = Callable[[Slots], None]


class CompileFallback(Exception):
    """A construct outside the compilable fragment; the rule runs interpreted.

    ``reason`` is a short stable tag, one per fallback construct:
    ``"deletion"``, ``"choose"``, ``"unbound-dereference"`` (dereference
    enumeration), ``"set-assignment"`` (set-pattern enumeration).
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _Layout:
    """The compile-time slot assignment: variable → fixed list index."""

    __slots__ = ("slots", "index")

    def __init__(self, initial_vars: Sequence[Var] = ()):
        self.slots: List[Var] = list(initial_vars)
        self.index: Dict[Var, int] = {v: i for i, v in enumerate(self.slots)}

    def slot(self, var: Var) -> int:
        """The slot of ``var``, allocating a new one on first sight."""
        i = self.index.get(var)
        if i is None:
            i = len(self.slots)
            self.slots.append(var)
            self.index[var] = i
        return i


# -- term evaluators: fn(slots) -> OValue | None ---------------------------------
#
# Mirrors eval_term: None exactly when a dereferenced oid's value is
# undefined (unbound variables cannot occur — the caller compiles an
# evaluator only at program points where the term's variables have slots).


def _compile_eval(term: Term, layout: _Layout, instance: Instance):
    if isinstance(term, Const):
        value = term.value
        return lambda slots: value
    if isinstance(term, Var):
        i = layout.index[term]
        return lambda slots: slots[i]
    if term.is_ground() and not mentions_name(term):
        # Constant subterm: pre-evaluate once at compile time.
        value = eval_term(term, {}, instance)
        return lambda slots: value
    if isinstance(term, NameTerm):
        name = term.name
        src: AbstractSet[OValue]
        if instance.schema.is_relation(name):
            src = instance.relations[name]
        else:
            src = instance.classes[name]
        return lambda slots: OSet(src)
    if isinstance(term, Deref):
        i = layout.index[term.var]
        value_of = instance.value_of
        var_name = term.var.name

        def eval_deref(slots):
            oid = slots[i]
            if not isinstance(oid, Oid):
                raise EvaluationError(
                    f"{var_name!r} bound to non-oid {oid!r} in a dereference"
                )
            return value_of(oid)

        return eval_deref
    if isinstance(term, SetTerm):
        subs = tuple(_compile_eval(sub, layout, instance) for sub in term.terms)

        def eval_set(slots):
            elements = []
            for sub in subs:
                v = sub(slots)
                if v is None:
                    return None
                elements.append(v)
            return OSet(elements)

        return eval_set
    if isinstance(term, TupleTerm):
        subs = tuple(
            (attr, _compile_eval(sub, layout, instance)) for attr, sub in term.fields
        )
        if not any(_can_be_undefined(sub) for _, sub in term.fields):

            def eval_tuple_total(slots):
                return OTuple({attr: sub(slots) for attr, sub in subs})

            return eval_tuple_total

        def eval_tuple(slots):
            fields = {}
            for attr, sub in subs:
                v = sub(slots)
                if v is None:
                    return None
                fields[attr] = v
            return OTuple(fields)

        return eval_tuple
    raise EvaluationError(f"not a term: {term!r}")  # pragma: no cover


def _can_be_undefined(term: Term) -> bool:
    """Can evaluation yield None (i.e. is there a dereference inside)?"""
    if isinstance(term, Deref):
        return True
    if isinstance(term, SetTerm):
        return any(_can_be_undefined(sub) for sub in term.terms)
    if isinstance(term, TupleTerm):
        return any(_can_be_undefined(sub) for _, sub in term.fields)
    return False


# -- matchers: fn(value, slots) -> bool, binding new slots in place ---------------
#
# The compiled counterpart of the *single-extension* subset of match():
# every construct below extends the bindings at most once per value, so a
# boolean suffices. The two multi-extension constructs — unbound
# dereference and set patterns — raise CompileFallback instead.


def _compile_match(term: Term, layout: _Layout, bound: Set[Var], instance: Instance):
    if isinstance(term, Const):
        value = term.value
        return lambda x, slots: value == x
    if isinstance(term, Var):
        if term in bound:
            i = layout.index[term]
            return lambda x, slots: slots[i] == x
        i = layout.slot(term)
        bound.add(term)
        var_type = term.type
        if isinstance(var_type, Base):

            def match_base(x, slots):
                if is_constant(x):
                    slots[i] = x
                    return True
                return False

            return match_base
        if isinstance(var_type, ClassRef):
            extent = instance.classes.get(var_type.name)
            if extent is not None:

                def match_class(x, slots):
                    if isinstance(x, Oid) and x in extent:
                        slots[i] = x
                        return True
                    return False

                return match_class
        member_of = instance.member_of

        def match_typed(x, slots):
            if member_of(x, var_type):
                slots[i] = x
                return True
            return False

        return match_typed
    if isinstance(term, NameTerm):
        evaluate = _compile_eval(term, layout, instance)
        return lambda x, slots: evaluate(slots) == x
    if isinstance(term, Deref):
        if term.var not in bound:
            # Unbound dereference: match() enumerates the reverse ν-index
            # bucket — possibly many extensions per value.
            raise CompileFallback("unbound-dereference")
        i = layout.index[term.var]
        value_of = instance.value_of
        return lambda x, slots: value_of(slots[i]) == x
    if isinstance(term, TupleTerm):
        attrs = tuple(attr for attr, _ in term.fields)
        pairs = tuple(
            (attr, _compile_match(sub, layout, bound, instance))
            for attr, sub in term.fields
        )

        def match_tuple(x, slots):
            if not isinstance(x, OTuple) or x.attributes != attrs:
                return False
            for attr, sub in pairs:
                if not sub(x[attr], slots):
                    return False
            return True

        return match_tuple
    if isinstance(term, SetTerm):
        # Set patterns branch over element assignments (k-fold product).
        raise CompileFallback("set-assignment")
    raise EvaluationError(f"not a term: {term!r}")  # pragma: no cover


# -- filters: fn(slots) -> bool (fully-bound literals) ----------------------------


def _compile_filter(lit: Literal, layout: _Layout, instance: Instance):
    if isinstance(lit, Membership):
        if isinstance(lit.container, NameTerm):
            # A name container always evaluates to the (live) extension —
            # test against the captured set directly instead of wrapping
            # it in a fresh OSet per check.
            name = lit.container.name
            src: AbstractSet[OValue]
            if instance.schema.is_relation(name):
                src = instance.relations[name]
            else:
                src = instance.classes[name]
            element_eval = _compile_eval(lit.element, layout, instance)
            positive = lit.positive

            def check_name_member(slots):
                element = element_eval(slots)
                if element is None:
                    return False
                return (element in src) == positive

            return check_name_member
        container_eval = _compile_eval(lit.container, layout, instance)
        element_eval = _compile_eval(lit.element, layout, instance)
        positive = lit.positive

        def check_member(slots):
            container = container_eval(slots)
            element = element_eval(slots)
            if container is None or element is None:
                return False
            if not isinstance(container, OSet):
                raise EvaluationError(
                    f"membership against non-set value {container!r} in {lit!r}"
                )
            return (element in container) == positive

        return check_member
    if isinstance(lit, Equality):
        left_eval = _compile_eval(lit.left, layout, instance)
        right_eval = _compile_eval(lit.right, layout, instance)
        positive = lit.positive

        def check_equal(slots):
            left = left_eval(slots)
            right = right_eval(slots)
            if left is None or right is None:
                return False
            return (left == right) == positive

        return check_equal
    raise EvaluationError(f"unknown literal {lit!r}")  # pragma: no cover


# -- the step chain ----------------------------------------------------------------


def _no_sink(slots: Slots) -> None:  # pragma: no cover - kernels install a consumer
    raise EvaluationError("compiled kernel executed without a consumer installed")


class _State:
    """Mutable compile-pass state: did any step capture an index dict?"""

    __slots__ = ("indexes",)

    def __init__(self) -> None:
        self.indexes: Optional[Any] = None


def _compile_steps(plan, layout, bound, instance, budget, state):
    """Compile a plan into (entry, sink_cell).

    Forward pass: compile each step's predicates/matchers while the
    bound-set evolves exactly as in plan_body. Backward fold: chain the
    steps so each calls the next directly; the innermost calls through
    ``sink_cell[0]``, which the kernel swaps per execution.

    Row counting for the drift check mirrors the interpreter: one list
    increment per row entering a generator step (inside the generator's
    own run function — no extra call frame) and one per final solution
    (in the sink), writing the shared ``plan.counts`` array.
    """
    counts = plan.counts
    makers = []
    for step_i, step in enumerate(plan):
        kind = step[0]
        if kind == "filter":
            predicate = _compile_filter(step[1], layout, instance)

            def make_filter(nxt, predicate=predicate):
                def run_filter(slots):
                    if predicate(slots):
                        nxt(slots)

                return run_filter

            makers.append(make_filter)
        elif kind == "member":
            makers.append(
                _compile_member(
                    step[1], step[2], layout, bound, instance, state, counts, step_i
                )
            )
        elif kind == "equal":
            lit, left_known = step[1], step[2]
            known, pattern = (
                (lit.left, lit.right) if left_known else (lit.right, lit.left)
            )
            known_eval = _compile_eval(known, layout, instance)
            matcher = _compile_match(pattern, layout, bound, instance)

            def make_equal(nxt, known_eval=known_eval, matcher=matcher, _i=step_i):
                def run_equal(slots, _c=counts, _i=_i):
                    _c[_i] += 1
                    value = known_eval(slots)
                    if value is not None and matcher(value, slots):
                        nxt(slots)

                return run_equal

            makers.append(make_equal)
        else:  # kind == "enum"
            var = step[1]
            i = layout.slot(var)
            bound.add(var)
            var_type = var.type

            def make_enum(nxt, i=i, var_type=var_type):
                def run_enum(slots):
                    for value in enumerate_type(
                        var_type,
                        instance.sorted_constants(),
                        instance.classes,
                        budget=budget,
                    ):
                        slots[i] = value
                        nxt(slots)

                return run_enum

            makers.append(make_enum)

    sink_cell: List[Consumer] = [_no_sink]
    n_steps = len(plan)

    def sink(slots, _c=counts, _n=n_steps):
        _c[_n] += 1
        sink_cell[0](slots)

    entry = sink
    for maker in reversed(makers):
        entry = maker(entry)
    return entry, sink_cell


def _compile_member(lit, probes, layout, bound, instance, state, counts, step_i):
    """A ("member", lit, probes) step: probe or scan, then match."""
    container = lit.container
    probe_list: Tuple[Tuple[Any, Any], ...] = ()
    if probes:
        name = container.name
        indexes = instance.indexes
        state.indexes = indexes
        # Capture the projection index dicts now; they are maintained in
        # place by the instance mutators, so a probe at run time is one
        # dict.get against current contents.
        probe_list = tuple(
            (indexes.relation_index(name, attr), _compile_eval(sub, layout, instance))
            for attr, sub in probes
        )
    matcher = _compile_match(lit.element, layout, bound, instance)
    if probe_list:
        if len(probe_list) == 1:
            index_get = probe_list[0][0].get
            value_eval = probe_list[0][1]

            def make_probe1(nxt, index_get=index_get, value_eval=value_eval, matcher=matcher):
                def run_probe1(slots, _c=counts, _i=step_i):
                    _c[_i] += 1
                    value = value_eval(slots)
                    if value is None:
                        return  # undefined dereference: no member can match
                    bucket = index_get(value)
                    if bucket:
                        for element in bucket:
                            if matcher(element, slots):
                                nxt(slots)

                return run_probe1

            return make_probe1

        def make_probe(nxt, probe_list=probe_list, matcher=matcher):
            def run_probe(slots, _c=counts, _i=step_i):
                _c[_i] += 1
                members = None
                for index, value_eval in probe_list:
                    value = value_eval(slots)
                    if value is None:
                        return  # undefined dereference: no member can match
                    bucket = index.get(value, ())
                    if members is None or len(bucket) < len(members):
                        members = bucket
                    if not members:
                        return
                for element in members:
                    if matcher(element, slots):
                        nxt(slots)

            return run_probe

        return make_probe
    if isinstance(container, NameTerm):
        name = container.name
        src: AbstractSet[OValue]
        if instance.schema.is_relation(name):
            src = instance.relations[name]
        else:
            src = instance.classes[name]

        def make_scan(nxt, src=src, matcher=matcher):
            def run_scan(slots, _c=counts, _i=step_i):
                _c[_i] += 1
                for element in src:
                    if matcher(element, slots):
                        nxt(slots)

            return run_scan

        return make_scan
    container_eval = _compile_eval(container, layout, instance)

    def make_deref_scan(nxt, container_eval=container_eval, matcher=matcher):
        def run_deref_scan(slots, _c=counts, _i=step_i):
            _c[_i] += 1
            members = container_eval(slots)
            if members is None:
                return  # undefined dereference: no facts to match
            if not isinstance(members, OSet):
                raise EvaluationError(
                    f"membership against non-set value {members!r} in {lit!r}"
                )
            for element in members:
                if matcher(element, slots):
                    nxt(slots)

        return run_deref_scan

    return make_deref_scan


# -- compiled bodies ---------------------------------------------------------------


class CompiledBody:
    """A planned body as a closure chain over a fixed slot layout.

    ``slots`` is the layout (initial variables first, then variables in
    order of first binding along the plan). Executing writes one mutable
    list in place and hands it to the consumer per solution; the consumer
    must copy whatever it keeps.
    """

    __slots__ = ("slot_vars", "slot_index", "entry", "sink_cell", "instance", "indexes")

    def __init__(self, slot_vars, slot_index, entry, sink_cell, instance, indexes):
        self.slot_vars: Tuple[Var, ...] = slot_vars
        self.slot_index: Dict[Var, int] = slot_index
        self.entry = entry
        self.sink_cell = sink_cell
        self.instance = instance
        self.indexes = indexes

    def new_slots(self) -> Slots:
        return [None] * len(self.slot_vars)

    def execute(self, init_values: Sequence[OValue], consume: Consumer) -> None:
        """Run the chain with slots 0..k-1 preset to ``init_values``."""
        slots: Slots = [None] * len(self.slot_vars)
        if init_values:
            slots[: len(init_values)] = init_values
        self.sink_cell[0] = consume
        self.entry(slots)

    def valid_for(self, instance: Instance) -> bool:
        """Is this kernel still sound for ``instance``?

        Identity of the instance pins the captured extension sets; when
        probe dicts were captured, identity of ``instance._indexes`` pins
        them too (``drop_indexes`` replaces the whole object).
        """
        return instance is self.instance and (
            self.indexes is None or instance._indexes is self.indexes
        )


def compile_body(
    literals: Sequence[Literal],
    initial_vars: Sequence[Var],
    instance: Instance,
    use_indexes: bool = True,
    enumeration_budget: int = 100_000,
    plan_cache: Optional[Dict] = None,
    stats=None,
    costed: bool = False,
    feedback: Optional[Dict] = None,
) -> CompiledBody:
    """Compile ``literals`` given ``initial_vars`` pre-bound, or raise
    :class:`CompileFallback`. Plans are shared with the interpreter through
    ``plan_cache`` (the owning rule's), so both engines agree on join
    order; ``costed``/``feedback`` select the cost-based planner and its
    replan observations exactly as in :func:`solve_body`."""
    literals = tuple(lit for lit in literals if not isinstance(lit, Choose))
    plan = lookup_plan(
        literals,
        frozenset(initial_vars),
        instance,
        use_indexes,
        plan_cache,
        stats,
        costed,
        feedback,
    )
    layout = _Layout(initial_vars)
    bound: Set[Var] = set(initial_vars)
    state = _State()
    entry, sink_cell = _compile_steps(
        plan, layout, bound, instance, enumeration_budget, state
    )
    return CompiledBody(
        tuple(layout.slots), dict(layout.index), entry, sink_cell, instance, state.indexes
    )


# -- compiled rules: body + blocking check + head applier -------------------------


class CompiledRule:
    """One rule specialized for γ1: body kernel, blocking check, applier.

    ``solve`` enumerates body valuations (slot lists sized for body *and*
    invention variables); ``blocked`` is the valuation-domain condition
    (True iff some extension already satisfies the head); the evaluator
    fills ``inv_slots`` with fresh oids and calls ``apply``.
    """

    __slots__ = (
        "rule",
        "body",
        "n_slots",
        "inv_slots",
        "blocked",
        "apply",
        "is_assignment",
    )

    def __init__(self, rule, body, n_slots, inv_slots, blocked, apply, is_assignment):
        self.rule = rule
        self.body: CompiledBody = body
        self.n_slots = n_slots
        #: ((class name, slot index), ...) for invention variables, in
        #: name order — the same invention order as the interpreter.
        self.inv_slots: Tuple[Tuple[str, int], ...] = inv_slots
        self.blocked = blocked
        self.apply = apply
        self.is_assignment = is_assignment

    def solve(self, consume: Consumer) -> None:
        slots: Slots = [None] * self.n_slots
        self.body.sink_cell[0] = consume
        self.body.entry(slots)

    def valid_for(self, instance: Instance) -> bool:
        return self.body.valid_for(instance)


def compile_rule(
    rule: Rule,
    instance: Instance,
    use_indexes: bool = True,
    enumeration_budget: int = 100_000,
    stats=None,
    costed: bool = False,
) -> CompiledRule:
    """Compile one rule for the naive one-step operator, or raise
    :class:`CompileFallback`."""
    if rule.delete:
        raise CompileFallback("deletion")
    if rule.has_choose():
        raise CompileFallback("choose")
    body = compile_body(
        rule.body,
        (),
        instance,
        use_indexes=use_indexes,
        enumeration_budget=enumeration_budget,
        plan_cache=rule.plan_cache,
        stats=stats,
        costed=costed,
        feedback=rule.feedback_cache if costed else None,
    )
    layout = _Layout(())
    layout.slots = list(body.slot_vars)
    layout.index = dict(body.slot_index)
    bound: Set[Var] = set(body.slot_vars)
    inv_vars = sorted(rule.invention_variables(), key=lambda v: v.name)
    inv_pairs: List[Tuple[str, int]] = []
    for v in inv_vars:
        v_type = v.type
        assert isinstance(v_type, ClassRef)  # typechecked upstream
        inv_pairs.append((v_type.name, layout.slot(v)))
    inv_slots = tuple(inv_pairs)
    blocked = _compile_blocked(rule, layout, bound, instance)
    for var in inv_vars:
        bound.add(var)  # the invention phase fills these before apply
    apply, is_assignment = _compile_apply(rule, layout, instance)
    return CompiledRule(
        rule, body, len(layout.slots), inv_slots, blocked, apply, is_assignment
    )


def _compile_blocked(rule: Rule, layout: _Layout, bound: Set[Var], instance: Instance):
    """The valuation-domain blocking condition, specialized per head shape.

    ``bound`` holds the body variables; head-only (invention) variables
    are unbound here, so their matchers range over existing class members
    — exactly ``Evaluator._head_satisfiable``.
    """
    head = rule.head
    value_of = instance.value_of
    if isinstance(head, Membership):
        container = head.container
        if isinstance(container, NameTerm):
            name = container.name
            members: AbstractSet[OValue]
            if instance.schema.is_relation(name):
                members = instance.relations[name]
            else:
                members = instance.classes[name]
            if head.element.variables() <= bound:
                element_eval = _compile_eval(head.element, layout, instance)

                def blocked_lookup(slots):
                    element = element_eval(slots)
                    return element is not None and element in members

                return blocked_lookup
            matcher = _compile_match(head.element, layout, bound, instance)

            def blocked_scan(slots):
                for existing in members:
                    if matcher(existing, slots):
                        return True
                return False

            return blocked_scan
        # Deref container x̂(t).
        assert isinstance(container, Deref)  # the only other legal container
        var = container.var
        if var not in bound:
            # x is an invention variable: a fresh oid has no ν entry yet,
            # so no extension can satisfy the head — never blocked.
            return lambda slots: False
        i = layout.index[var]
        if head.element.variables() <= bound:
            element_eval = _compile_eval(head.element, layout, instance)

            def blocked_deref(slots):
                members = value_of(slots[i])
                if members is None:
                    return False
                element = element_eval(slots)
                return element is not None and element in members

            return blocked_deref
        matcher = _compile_match(head.element, layout, bound, instance)

        def blocked_deref_scan(slots):
            members = value_of(slots[i])
            if members is None:
                return False
            for element in members:
                if matcher(element, slots):
                    return True
            return False

        return blocked_deref_scan
    if isinstance(head, Equality):
        deref = head.left
        if not isinstance(deref, Deref):  # pragma: no cover - typechecker
            raise EvaluationError(f"illegal equality head {head!r}")
        var = deref.var
        if var in bound:
            i = layout.index[var]
            matcher = _compile_match(head.right, layout, bound, instance)

            def blocked_assign(slots):
                value = value_of(slots[i])
                return value is not None and matcher(value, slots)

            return blocked_assign
        # Invented target: blocked iff some existing class oid's value
        # matches the right-hand side (with the candidate bound to x).
        i = layout.slot(var)
        var_type = var.type
        assert isinstance(var_type, ClassRef)  # typechecked upstream
        extent: AbstractSet[Oid] = instance.classes.get(var_type.name, frozenset())
        bound.add(var)
        matcher = _compile_match(head.right, layout, bound, instance)

        def blocked_assign_scan(slots):
            for candidate in extent:
                value = value_of(candidate)
                if value is None:
                    continue
                slots[i] = candidate
                if matcher(value, slots):
                    return True
            return False

        return blocked_assign_scan
    raise EvaluationError(f"illegal head {head!r}")  # pragma: no cover


def _compile_apply(rule: Rule, layout: _Layout, instance: Instance):
    """The head applier: fn(slots, weak, weak_was_defined) -> bool (added).

    Weak-assignment heads stage into ``weak`` / ``weak_was_defined`` and
    return False; the evaluator's (★) pass decides what sticks.
    """
    head = rule.head
    if isinstance(head, Membership):
        element_eval = _compile_eval(head.element, layout, instance)
        container = head.container
        if isinstance(container, NameTerm):
            name = container.name
            if instance.schema.is_relation(name):
                add_relation = instance.add_relation_member

                def apply_relation(slots, weak, weak_was_defined):
                    element = element_eval(slots)
                    if element is None:
                        raise EvaluationError(
                            f"head {head!r} not evaluable "
                            f"(undefined dereference in a head term)"
                        )
                    return add_relation(name, element)

                return apply_relation, False
            add_class = instance.add_class_member

            def apply_class(slots, weak, weak_was_defined):
                element = element_eval(slots)
                if element is None:
                    raise EvaluationError(
                        f"head {head!r} not evaluable "
                        f"(undefined dereference in a head term)"
                    )
                if not isinstance(element, Oid):
                    raise EvaluationError(
                        f"class head {head!r} derived non-oid {element!r}"
                    )
                return add_class(name, element)

            return apply_class, False
        if isinstance(container, Deref):
            i = layout.index[container.var]
            add_element = instance.add_set_element

            def apply_set(slots, weak, weak_was_defined):
                element = element_eval(slots)
                if element is None:
                    raise EvaluationError(
                        f"head {head!r} not evaluable "
                        f"(undefined dereference in a head term)"
                    )
                return add_element(slots[i], element)

            return apply_set, False
        raise EvaluationError(f"illegal head container {container!r}")  # pragma: no cover
    if isinstance(head, Equality):
        deref = head.left
        if not isinstance(deref, Deref):  # pragma: no cover - typechecker
            raise EvaluationError(f"illegal equality head {head!r}")
        i = layout.index[deref.var]
        right_eval = _compile_eval(head.right, layout, instance)
        value_of = instance.value_of

        def apply_weak(slots, weak, weak_was_defined):
            oid = slots[i]
            value = right_eval(slots)
            if value is None:
                raise EvaluationError(
                    f"head {head!r} not evaluable (undefined dereference)"
                )
            if oid not in weak_was_defined:
                weak_was_defined[oid] = value_of(oid) is not None
            weak.setdefault(oid, set()).add(value)
            return False

        return apply_weak, True
    raise EvaluationError(f"illegal head {head!r}")  # pragma: no cover


# -- compiled semi-naive kernels ---------------------------------------------------


class SeminaiveKernels:
    """One eligible rule's kernels for the delta rewriting.

    ``full`` + ``head_full`` drive round 0 (a complete body solve);
    ``per_position[p]`` is ``(delta matcher, rest kernel, head eval)`` for
    the delta-driven rounds: the matcher seeds the rest kernel's initial
    slots from one delta fact, the rest kernel solves the remaining
    literals, and the head evaluator produces the derived fact.
    """

    __slots__ = ("full", "head_full", "per_position")

    def __init__(self, full, head_full, per_position):
        self.full: CompiledBody = full
        self.head_full = head_full
        self.per_position: Dict[int, tuple] = per_position

    def valid_for(self, instance: Instance) -> bool:
        return self.full.valid_for(instance) and all(
            rest.valid_for(instance) for _, rest, _ in self.per_position.values()
        )


def compile_seminaive(
    rule: Rule,
    shape: DeltaBody,
    instance: Instance,
    use_indexes: bool = True,
    enumeration_budget: int = 100_000,
    stats=None,
    costed: bool = False,
) -> SeminaiveKernels:
    """Compile one semi-naive-eligible rule, or raise :class:`CompileFallback`."""
    head = rule.head
    assert isinstance(head, Membership)  # guaranteed by rule_eligible
    feedback = rule.feedback_cache if costed else None
    full = compile_body(
        rule.body,
        (),
        instance,
        use_indexes=use_indexes,
        enumeration_budget=enumeration_budget,
        plan_cache=rule.plan_cache,
        stats=stats,
        costed=costed,
        feedback=feedback,
    )
    head_full = _compile_eval(head.element, _layout_of(full), instance)
    per_position: Dict[int, tuple] = {}
    body = list(rule.body)
    for position in shape.relation_positions:
        literal = body[position]
        assert isinstance(literal, Membership)  # by delta_body classification
        element = literal.element
        init_vars = tuple(sorted(element.variables(), key=lambda v: v.name))
        layout = _Layout(init_vars)
        bound: Set[Var] = set()
        matcher = _compile_match(element, layout, bound, instance)
        rest = body[:position] + body[position + 1 :]
        plan = lookup_plan(
            tuple(rest), frozenset(init_vars), instance, use_indexes,
            rule.plan_cache, stats, costed, feedback,
        )
        state = _State()
        entry, sink_cell = _compile_steps(
            plan, layout, bound, instance, enumeration_budget, state
        )
        rest_body = CompiledBody(
            tuple(layout.slots), dict(layout.index), entry, sink_cell,
            instance, state.indexes,
        )
        head_eval = _compile_eval(head.element, layout, instance)
        per_position[position] = (matcher, rest_body, head_eval)
    return SeminaiveKernels(full, head_full, per_position)


def _layout_of(body: CompiledBody) -> _Layout:
    layout = _Layout(())
    layout.slots = list(body.slot_vars)
    layout.index = dict(body.slot_index)
    return layout


# -- the per-evaluator compiler front end ------------------------------------------


class _Fallback:
    """A cached negative result: this shape does not compile."""

    __slots__ = ("reason",)

    def __init__(self, reason: str):
        self.reason = reason


class RuleCompiler:
    """Compiles rules on demand, caches kernels per rule, keeps the books.

    Kernels live in the bounded ``Rule.kernel_cache`` keyed by
    ``(shape, use_indexes, costed)`` — ``shape`` is ``"rule"`` (γ1) or
    ``"sn"`` (semi-naive) — and are revalidated against the instance on
    every fetch; a stale kernel (new instance, or indexes dropped by an
    IQL* deletion) is recompiled in place, and the drift detector of
    :mod:`repro.iql.stats` evicts kernels outright when their plan's
    estimates prove wrong. Per run, each rule is counted once as compiled
    or interpreted in :class:`EvaluationStats`.
    """

    def __init__(
        self,
        use_indexes: bool = True,
        enumeration_budget: int = 100_000,
        costed: bool = False,
    ):
        self.use_indexes = use_indexes
        self.enumeration_budget = enumeration_budget
        self.costed = costed
        self.stats: Any = None
        self._compiled_seen: Set[int] = set()
        self._interpreted_seen: Set[int] = set()

    def begin_run(self, stats) -> None:
        """Attach a run's stats object and reset the per-run rule tallies."""
        self.stats = stats
        self._compiled_seen = set()
        self._interpreted_seen = set()

    # -- bookkeeping -----------------------------------------------------------

    def _note_compiled(self, rule: Rule) -> None:
        if id(rule) not in self._compiled_seen:
            self._compiled_seen.add(id(rule))
            if self.stats is not None:
                self.stats.rules_compiled += 1

    def _note_interpreted(self, rule: Rule, reason: str) -> None:
        if id(rule) not in self._interpreted_seen:
            self._interpreted_seen.add(id(rule))
            if self.stats is not None:
                self.stats.rules_interpreted += 1
                self.stats.compile_fallbacks += 1
                reasons = self.stats.compile_fallback_reasons
                reasons[reason] = reasons.get(reason, 0) + 1

    def compiled_rule(self, rule: Rule, instance: Instance) -> Optional[CompiledRule]:
        """The γ1 kernel for ``rule`` on ``instance``, or None (interpreted)."""
        return self._kernel(
            rule,
            ("rule", self.use_indexes, self.costed),
            lambda: compile_rule(
                rule,
                instance,
                use_indexes=self.use_indexes,
                enumeration_budget=self.enumeration_budget,
                stats=self.stats,
                costed=self.costed,
            ),
            instance,
        )

    def seminaive_kernels(
        self, rule: Rule, shape: DeltaBody, instance: Instance
    ) -> Optional[SeminaiveKernels]:
        """The delta-rewriting kernels for ``rule``, or None (interpreted)."""
        return self._kernel(
            rule,
            ("sn", self.use_indexes, self.costed),
            lambda: compile_seminaive(
                rule,
                shape,
                instance,
                use_indexes=self.use_indexes,
                enumeration_budget=self.enumeration_budget,
                stats=self.stats,
                costed=self.costed,
            ),
            instance,
        )

    def _kernel(self, rule: Rule, key, build, instance: Instance):
        cache = rule.kernel_cache
        entry = cache.get(key)
        if isinstance(entry, _Fallback):
            self._note_interpreted(rule, entry.reason)
            return None
        if entry is not None and entry.valid_for(instance):
            self._note_compiled(rule)
            return entry
        started = time.perf_counter()
        try:
            kernel = build()
        except CompileFallback as fallback:
            cache[key] = _Fallback(fallback.reason)
            if self.stats is not None:
                self.stats.compile_time += time.perf_counter() - started
            self._note_interpreted(rule, fallback.reason)
            return None
        cache[key] = kernel
        if self.stats is not None:
            self.stats.compile_time += time.perf_counter() - started
        self._note_compiled(rule)
        return kernel
