"""The naive inflationary evaluator (Section 3.2).

The semantics of a program G is defined through its one-step operator
γ1(G): given the current instance I,

1. compute the *valuation-domain* — the set of (rule, θ) pairs with
   I ⊨ θ(body) such that **no** extension of θ satisfies the head (this
   blocking condition is what makes the semantics inflationary and stops a
   rule from re-inventing oids for the same body valuation forever),
2. pick a *valuation-map* — fresh, pairwise distinct oids for the
   head-only variables of each pair (the :class:`OidFactory`),
3. add the derived ground facts, subject to the weak-assignment rule (★):
   a non-set-valued oid is assigned a value only if it was undefined in I
   and exactly one value was derived for it this step,
4. place every invented oid in its class (with the default value:
   undefined, or { } for set-valued classes).

γ∞(G) iterates γ1 to a fixpoint; the program maps instances(Sin) to
instances(Sout) by loading, iterating and projecting.

Extensions handled here:

* stage composition "``;``" — each stage runs to fixpoint in order,
* IQL+ ``choose`` (Section 4.4) — head-only variables of a choose-rule are
  bound to an *existing* oid instead, with an optional genericity check,
* IQL* deletions (Section 4.5) — ``delete`` rules remove facts, with
  cascading removal of dangling references; state cycling is detected so
  non-inflationary programs cannot silently loop forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import EvaluationError, GenericityError, NonTerminationError
from repro.iql.invention import CountingOidFactory, OidFactory
from repro.iql.literals import Equality, Membership
from repro.iql.program import Program
from repro.iql.rules import Rule
from repro.iql.terms import Deref, NameTerm, Var
from repro.iql.valuation import Bindings, eval_term, match, solve_body
from repro.schema.instance import Instance
from repro.schema.isomorphism import orbit_partition
from repro.values.ovalues import Oid, OSet, OValue, sort_key


@dataclass
class EvaluatorLimits:
    """Budgets that turn divergence into errors instead of hangs."""

    max_steps: int = 10_000
    enumeration_budget: int = 100_000
    max_invented_oids: int = 1_000_000


@dataclass
class EvaluationStats:
    """Observability for benchmarks: what the fixpoint actually did.

    ``index_*`` / ``plan_cache_*`` report on the indexed join engine:
    hash-index probes taken, members *not* scanned thanks to those probes,
    and the body planner's memo behaviour (one miss per new (body,
    bound-set) pair, hits for every re-solve of a known shape).

    ``intern_*`` / ``eq_fast_paths`` report on the hash-consing layer
    (:mod:`repro.values.intern`) over the duration of the run: value
    constructions answered from the intern table, constructions that
    created a new node, and ``__eq__`` calls settled by the identity
    check. With ``Evaluator(interned=False)`` the first two stay zero.
    """

    steps: int = 0
    facts_added: int = 0
    facts_deleted: int = 0
    oids_invented: int = 0
    valuations_considered: int = 0
    per_stage_steps: List[int] = field(default_factory=list)
    index_probes: int = 0
    index_scans_avoided: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    # Cost-based adaptive planning (repro.iql.stats): bodies planned with
    # the cost model, plan-step estimate segments found drifted ≥ the
    # replan ratio, and plans evicted + replanned from observed fan-outs.
    plans_costed: int = 0
    estimate_drifts: int = 0
    plan_replans: int = 0
    intern_hits: int = 0
    intern_misses: int = 0
    eq_fast_paths: int = 0
    # Certified scheduling (Evaluator(schedule=True)): strata solved,
    # rule executions skipped because their whole read set was clean, and
    # stages that ran monolithic because the analysis refused to certify.
    strata: int = 0
    rules_skipped_clean: int = 0
    schedule_fallbacks: int = 0
    # Rule compilation (Evaluator(compile=True), repro.iql.compile):
    # distinct rules that ran as compiled kernels vs fell back to the
    # interpreter this run, fallback events by construct tag ("deletion",
    # "choose", "unbound-dereference", "set-assignment"), and the wall
    # time spent compiling (cache misses only). Note compiled kernels do
    # NOT maintain index_probes / index_scans_avoided — the probe is a
    # plain dict lookup resolved at compile time.
    rules_compiled: int = 0
    rules_interpreted: int = 0
    compile_fallbacks: int = 0
    compile_fallback_reasons: Dict[str, int] = field(default_factory=dict)
    compile_time: float = 0.0
    # End-of-run sizes of the per-rule bounded caches (repro.caches),
    # summed over the program's rules; evictions signal cache pressure.
    plan_cache_entries: int = 0
    plan_cache_evictions: int = 0
    kernel_cache_entries: int = 0
    kernel_cache_evictions: int = 0
    # Incremental view maintenance (repro.iql.ivm.MaterializedProgram):
    # net base-fact deltas applied, support-count adjustments (counting
    # strategy), facts conservatively over-deleted and then re-derived
    # (DRed), and batches that fell back to a slice or full recompute.
    deltas_applied: int = 0
    supports_adjusted: int = 0
    overdeleted: int = 0
    rederived: int = 0
    maintenance_fallbacks: int = 0
    # Certified parallel execution (Evaluator(parallel=N), repro.iql.parexec):
    # the pool size used, the driver backend ("thread" or "process"),
    # strata run on concurrent workers, strata run with partitioned delta
    # rounds, worker tasks submitted, and strata the certificate forced
    # back to serial (IQL801/802 fallbacks seen at run time). NOTE: when
    # workers run concurrently, counters shared with the compiler
    # (rules_compiled, compile_time) can under-count — they are
    # observability, not semantics.
    parallel_workers: int = 0
    parallel_backend: str = ""
    parallel_strata: int = 0
    parallel_partitioned: int = 0
    parallel_tasks: int = 0
    parallel_fallbacks: int = 0


@dataclass
class TraceEvent:
    """One derivation event, for debugging rule programs.

    ``kind`` is "fact" (a ground fact added), "invent" (an oid created),
    "assign" (a weak assignment that stuck), "ignore" (a weak assignment
    dropped by (★)), or "delete". ``rule`` is the rule's label or repr.
    """

    step: int
    kind: str
    rule: str
    detail: str

    def __repr__(self):
        return f"[step {self.step}] {self.kind:<7} {self.rule}: {self.detail}"


@dataclass
class EvaluationResult:
    """The full instance over S, its projection on Sout, and statistics."""

    full: Instance
    output: Instance
    stats: EvaluationStats
    trace: Optional[List["TraceEvent"]] = None


class Evaluator:
    """Evaluates IQL / IQL+ / IQL* programs by naive inflationary iteration.

    ``choose_mode`` controls the genericity discipline of IQL+:

    * ``"verify"`` — candidates must form a single orbit of the instance's
      O-automorphism group (exact but expensive; fine at paper scale),
    * ``"trusted"`` — skip the check and pick the canonical candidate;
      correct whenever the program is known to offer only indistinguishable
      copies (the Theorem 4.4.1 construction),
    * ``"nondeterministic"`` — the N-IQL of the paper's Remark: pick an
      arbitrary (seeded-random) candidate even when that violates
      genericity. The result is then a *nondeterministic* transformation —
      outputs for the same input need not be O-isomorphic.
    """

    def __init__(
        self,
        program: Program,
        oid_factory: Optional[OidFactory] = None,
        limits: Optional[EvaluatorLimits] = None,
        choose_mode: str = "verify",
        seed: int = 0,
        trace: bool = False,
        seminaive: bool = True,
        indexed: bool = True,
        preflight: bool = False,
        interned: bool = True,
        schedule: bool = False,
        compile: bool = False,
        cost_planning: bool = True,
        replan_ratio: float = 10.0,
        parallel: Union[int, str] = 0,
        backend: str = "thread",
    ):
        if choose_mode not in ("verify", "trusted", "nondeterministic"):
            raise EvaluationError(f"unknown choose_mode {choose_mode!r}")
        if backend not in ("thread", "process"):
            raise EvaluationError(f"unknown parallel backend {backend!r}")
        self.program = program
        if preflight:
            self._preflight(program)
        self.oid_factory = oid_factory or CountingOidFactory()
        self.limits = limits or EvaluatorLimits()
        self.choose_mode = choose_mode
        self.trace_enabled = trace
        self._trace: Optional[List[TraceEvent]] = [] if trace else None
        # Delta rewriting for eligible stages (repro.iql.seminaive);
        # disabled automatically under tracing so every event is observed.
        self.seminaive = seminaive and not trace
        # Hash-index probes + the selectivity-ordered body planner
        # (repro.iql.indexes / valuation). ``indexed=False`` restores the
        # original generate-and-test join — the differential-test oracle.
        self.indexed = indexed
        # Cost-based planning (repro.iql.stats): score candidate plan
        # steps with live cardinality statistics and replan when runtime
        # row counts drift ≥ replan_ratio from the estimates.
        # ``cost_planning=False`` restores the static rank heuristic — the
        # A/B baseline behind ``repro run --static-plans``. Join order
        # never affects the solution set, only speed.
        self.cost_planning = cost_planning
        self.replan_ratio = replan_ratio
        # Hash-consing of o-values (repro.values.intern). ``interned=False``
        # evaluates with plain structural values — the A/B escape hatch
        # behind ``repro run --no-intern``.
        self.interned = interned
        # Certified parallel execution (repro.analysis.parallel +
        # repro.iql.parexec): ``parallel=N`` runs certified stratum
        # batches and partitioned delta rounds on an N-worker pool —
        # ``backend`` picks shared-memory threads or shared-nothing
        # processes. ``parallel="auto"`` sizes the pool to the host's
        # usable CPUs, clamped below by the certificate's certified
        # width (the IQL804 bound — more workers than independent
        # strata/partitions cannot be used). Implies scheduling (the
        # certificate is a per-stratum refinement of the schedule);
        # disabled under tracing.
        self.backend = backend
        auto_width = isinstance(parallel, str)
        if parallel and not trace:
            from repro.iql.parexec import worker_count

            self.parallel = worker_count(parallel)
        else:
            self.parallel = 0
        # Certified SCC scheduling (repro.analysis.depgraph): one fixpoint
        # per dependency stratum instead of one per stage, with rule-level
        # clean-read skipping. Stages the analysis cannot certify fall back
        # to the monolithic fixpoint; IQL601 fallbacks warn. Disabled under
        # tracing like the other rewritings.
        self.schedule = (schedule or bool(self.parallel)) and not trace
        self._schedule = None
        if self.schedule:
            import warnings

            from repro.analysis import PreflightWarning
            from repro.analysis.depgraph import compute_schedule

            self._schedule = compute_schedule(program)
            for plan in self._schedule.stages:
                if plan.fallback_reason and "IQL601" in plan.fallback_reason:
                    warnings.warn(
                        f"stage {plan.index + 1} falls back to the monolithic "
                        f"fixpoint: {plan.fallback_reason}",
                        PreflightWarning,
                        stacklevel=3,
                    )
        # Rule compilation (repro.iql.compile): specialize planned bodies
        # into closure kernels over slot lists, used by both the naive
        # one-step operator and the semi-naive rounds; rules with an
        # uncompilable construct fall back per rule. Disabled under
        # tracing (kernels bypass the event emission points).
        self.compile = compile and not trace
        self._compiler = None
        if self.compile:
            from repro.iql.compile import RuleCompiler

            self._compiler = RuleCompiler(
                use_indexes=self.indexed,
                enumeration_budget=self.limits.enumeration_budget,
                costed=self.cost_planning,
            )
        # The IQL8xx gate: parallel execution happens only under a
        # validated ParallelCertificate. A failed audit or a tampered
        # certificate disables the pool outright; per-stratum IQL801/802
        # hazards stay in the certificate and fall back serial at run
        # time, each announced here as a PreflightWarning (the IQL601
        # pattern above).
        self._parallel_certificate = None
        self._driver = None  # persistent pool (process backend), lazily built
        if self.parallel:
            import warnings

            from repro.analysis import PreflightWarning
            from repro.analysis.parallel import (
                build_parallel_certificate,
                parallel_pass,
                validate_parallel_certificate,
            )

            certificate = build_parallel_certificate(
                program, schedule=self._schedule, backend=self.backend
            )
            violations = validate_parallel_certificate(program, certificate)
            for diag in parallel_pass(program, certificate=certificate):
                if diag.code in ("IQL801", "IQL802", "IQL803"):
                    warnings.warn(
                        f"{diag.code}: {diag.message} — serial fallback",
                        PreflightWarning,
                        stacklevel=3,
                    )
            if violations:
                for violation in violations:
                    warnings.warn(
                        f"parallel execution disabled: {violation}",
                        PreflightWarning,
                        stacklevel=3,
                    )
            elif certificate.certified:
                self._parallel_certificate = certificate
                if auto_width:
                    # IQL804: workers beyond the certified width idle.
                    self.parallel = max(1, min(self.parallel, certificate.width))
        import random as _random

        self._rng = _random.Random(seed)

    @staticmethod
    def _preflight(program: Program) -> None:
        """Opt-in pre-flight static analysis (``Evaluator(preflight=True)``).

        Runs :func:`repro.analysis.analyze` before evaluation and turns
        every warning-severity diagnostic — unsafe negation, unbound
        variables, invention cycles, dead code — into a
        :class:`~repro.analysis.PreflightWarning`, so a caller learns that
        the fixpoint may diverge *before* burning through ``max_steps``.
        Error-severity diagnostics are left to the typechecker proper.
        """
        import warnings

        from repro.analysis import PreflightWarning, analyze

        for diag in analyze(program).warnings:
            warnings.warn(
                f"{diag.code}: {diag.message}", PreflightWarning, stacklevel=3
            )

    def _emit(self, stats: "EvaluationStats", kind: str, rule: Rule, detail: str) -> None:
        if self._trace is not None:
            label = rule.label or repr(rule.head)
            self._trace.append(TraceEvent(stats.steps + 1, kind, label, detail))

    # -- public API ---------------------------------------------------------------

    def run(self, input_instance: Instance) -> EvaluationResult:
        """Evaluate the program on ``input_instance`` (over Sin)."""
        if input_instance.schema != self.program.input_schema:
            raise EvaluationError(
                "input instance schema does not match the program's input schema"
            )
        working = input_instance.with_schema(self.program.schema)
        stats = EvaluationStats()
        if self._compiler is not None:
            self._compiler.begin_run(stats)
        from repro.values import intern

        hits0, misses0, fast0 = intern.counters()
        driver = None
        if self._parallel_certificate is not None and self.parallel > 1:
            driver = self._acquire_driver()
            stats.parallel_workers = self.parallel
            stats.parallel_backend = self.backend
        try:
            with intern.interning(self.interned):
                for index, stage in enumerate(self.program.stages):
                    plan = self._schedule.stages[index] if self._schedule else None
                    if plan is not None and plan.scheduled:
                        if driver is not None:
                            self._run_stage_parallel(
                                working,
                                index,
                                plan.strata,
                                self._parallel_certificate.stages[index],
                                stats,
                                driver,
                            )
                        else:
                            self._run_stage_scheduled(working, plan.strata, stats)
                    else:
                        if plan is not None:
                            stats.schedule_fallbacks += 1
                            if driver is not None:
                                stats.parallel_fallbacks += 1
                        self._run_stage(working, list(stage), stats)
                output = working.project(self.program.output_schema)
        finally:
            if driver is not None:
                driver.release()
        hits1, misses1, fast1 = intern.counters()
        stats.intern_hits = hits1 - hits0
        stats.intern_misses = misses1 - misses0
        stats.eq_fast_paths = fast1 - fast0
        for rule in self.program.rules:
            if rule._plan_cache is not None:
                stats.plan_cache_entries += len(rule._plan_cache)
                stats.plan_cache_evictions += rule._plan_cache.evictions
            if rule._kernel_cache is not None:
                stats.kernel_cache_entries += len(rule._kernel_cache)
                stats.kernel_cache_evictions += rule._kernel_cache.evictions
        return EvaluationResult(
            full=working, output=output, stats=stats, trace=self._trace
        )

    def __call__(self, input_instance: Instance) -> Instance:
        return self.run(input_instance).output

    # -- stage fixpoint -------------------------------------------------------------

    def solve_stratum(
        self,
        instance: Instance,
        rules: Sequence[Rule],
        stats: Optional[EvaluationStats] = None,
        initial_delta: Optional[Dict[str, Set[OValue]]] = None,
        added: Optional[Dict[str, Set[OValue]]] = None,
    ) -> EvaluationStats:
        """Run one rule set to its inflationary fixpoint on ``instance``,
        in place, and return the stats.

        This is the maintenance entry point: a
        :class:`~repro.analysis.maintenance.MaintenanceCertificate` names
        a slice of strata to re-run after a base-fact update, and each
        slice entry is exactly one such fixpoint. ``instance`` must be an
        instance over the program's *full* schema (not just Sin): replay
        starts from a previous evaluation's state, not from an input.

        With ``initial_delta`` — per-relation sets of facts *already
        present* in ``instance`` but new since its last fixpoint — the
        stratum runs in the delta-seeded mode the IVM runtime uses:
        instead of the round-0 full solve, the semi-naive rounds start
        directly from the given delta, so work is proportional to the
        change, not the instance. Sound only when every new derivation
        must use at least one delta fact positively (true for insert
        propagation into a previously-converged fixpoint); when the
        stratum's rules fall outside the semi-naive fragment the stratum
        runs to an ordinary full fixpoint instead, which is sound for the
        same reason. ``added`` (if given) collects the facts each relation
        actually gained, for downstream delta propagation.
        """
        if stats is None:
            stats = EvaluationStats()
        from repro.values import intern

        with intern.interning(self.interned):
            if initial_delta is not None:
                self._run_stage_delta_seeded(
                    instance, list(rules), stats, initial_delta, added
                )
            else:
                self._run_stage(instance, list(rules), stats)
        return stats

    def _run_stage_delta_seeded(
        self,
        instance: Instance,
        rules: List[Rule],
        stats: EvaluationStats,
        initial_delta: Dict[str, Set[OValue]],
        added: Optional[Dict[str, Set[OValue]]],
    ) -> None:
        from repro.iql.seminaive import run_stage_seminaive, stage_eligible

        if self.seminaive and stage_eligible(rules, instance):
            rounds = run_stage_seminaive(
                instance,
                rules,
                stats,
                self.limits.enumeration_budget,
                max_steps=self.limits.max_steps,
                use_indexes=self.indexed,
                compiler=self._compiler,
                initial_delta=initial_delta,
                added=added,
                costed=self.cost_planning,
                replan_ratio=self.replan_ratio if self.cost_planning else None,
            )
            stats.per_stage_steps.append(rounds)
            return
        # Outside the semi-naive fragment the delta seed is only a hint:
        # re-running the stratum to its inflationary fixpoint from the
        # current state derives everything the delta could have enabled.
        # Diff the written relation extents so the caller still learns
        # what changed.
        from repro.analysis.effects import head_symbol

        written = {
            symbol
            for symbol in (head_symbol(rule) for rule in rules)
            if instance.schema.is_relation(symbol)
        }
        before = {name: set(instance.relations[name]) for name in written}
        self._run_stage(instance, rules, stats)
        if added is not None:
            for name in written:
                fresh = instance.relations[name] - before[name]
                if fresh:
                    added.setdefault(name, set()).update(fresh)

    def _run_stage(self, instance: Instance, rules: List[Rule], stats: EvaluationStats) -> None:
        if self.seminaive:
            from repro.iql.seminaive import run_stage_seminaive, stage_eligible

            if stage_eligible(rules, instance):
                rounds = run_stage_seminaive(
                    instance,
                    rules,
                    stats,
                    self.limits.enumeration_budget,
                    max_steps=self.limits.max_steps,
                    use_indexes=self.indexed,
                    compiler=self._compiler,
                    costed=self.cost_planning,
                    replan_ratio=self.replan_ratio if self.cost_planning else None,
                )
                stats.per_stage_steps.append(rounds)
                return
        non_inflationary = any(rule.delete for rule in rules)
        seen_states: Set[int] = set()
        steps_here = 0
        while True:
            if stats.steps >= self.limits.max_steps:
                raise NonTerminationError(
                    f"no fixpoint within {self.limits.max_steps} steps; "
                    f"recursion through invention can diverge (Example 3.4.2)"
                )
            if non_inflationary:
                # IQL* steps can shrink the instance, so "no mutation" is
                # not the fixpoint test: compare whole states, and detect
                # oscillation (a revisited non-fixpoint state) exactly.
                before = instance.ground_facts()
                state = hash(before)
                if state in seen_states:
                    raise NonTerminationError(
                        "IQL* evaluation revisited a state without reaching a fixpoint"
                    )
                seen_states.add(state)
                self._one_step(instance, rules, stats)
                changed = instance.ground_facts() != before
            else:
                changed = self._one_step(instance, rules, stats)
            stats.steps += 1
            steps_here += 1
            if not changed:
                break
            self._check_drift(rules, stats)
        stats.per_stage_steps.append(steps_here)

    def _check_drift(self, rules: List[Rule], stats: EvaluationStats) -> None:
        """Between fixpoint rounds: replan any plan whose estimates drifted.

        Round boundaries are the only safe point — no kernel is running,
        and staged additions are already applied — and also the useful
        one: the next round re-fetches plans and kernels, so an eviction
        takes effect immediately (mid-fixpoint adaptivity).
        """
        if not self.cost_planning:
            return
        from repro.iql.stats import check_drift

        check_drift(rules, stats, self.replan_ratio)

    # -- the certified schedule (Evaluator(schedule=True)) ---------------------------

    @staticmethod
    def _fingerprint(instance: Instance, symbol: str):
        """A cheap monotone measure of one dependency-graph symbol.

        Within a certified stage every mutation grows the instance — no
        deletes, and (★) only ever defines an undefined ν entry — so an
        unchanged size proves unchanged content. ``^P`` planes measure how
        many of P's oids have a ν entry plus the total element count of
        the set-valued ones (weak assignment adds entries; ``x̂(t)`` heads
        add elements).
        """
        schema = instance.schema
        if symbol.startswith("^"):
            class_name = symbol[1:]
            defined = 0
            elements = 0
            for oid in instance.classes.get(class_name, ()):
                value = instance.nu.get(oid)
                if value is not None:
                    defined += 1
                    if isinstance(value, OSet):
                        elements += len(value)
            return (defined, elements)
        if schema.is_relation(symbol):
            return len(instance.relations.get(symbol, ()))
        return len(instance.classes.get(symbol, ()))

    def _run_stage_scheduled(
        self,
        instance: Instance,
        strata: Tuple[Tuple[Rule, ...], ...],
        stats: EvaluationStats,
    ) -> None:
        """One fixpoint per dependency stratum, in topological order.

        Each stratum first tries the semi-naive rewriting over *its own*
        rules — a stratum is often eligible when the whole stage is not
        (e.g. a relation-only recursion scheduled after an invention
        stratum). Otherwise it runs the naive loop with rule-level
        dirtiness tracking: a rule re-executes only when some symbol of
        its read set changed since its last execution; a clean rule can
        only re-derive facts it already derived (reads are complete for
        range-restricted rules, which certification guarantees), so
        skipping it is sound.
        """
        steps_total = 0
        for stratum in strata:
            steps_total += self._solve_stratum_scheduled(instance, list(stratum), stats)
        stats.per_stage_steps.append(steps_total)

    def _solve_stratum_scheduled(
        self, instance: Instance, rules: List[Rule], stats: EvaluationStats
    ) -> int:
        """One stratum's fixpoint (the per-stratum body of
        :meth:`_run_stage_scheduled`), returning its step count.

        Also the unit of work a parallel batch submits per worker: each
        concurrent task gets its own ``stats`` (merged at the barrier),
        and the certificate guarantees concurrent strata write disjoint
        symbols.
        """
        from repro.analysis.effects import rule_effects
        from repro.iql.seminaive import run_stage_seminaive, stage_eligible

        steps_total = 0
        stats.strata += 1
        if self.seminaive and stage_eligible(rules, instance):
            return run_stage_seminaive(
                instance,
                rules,
                stats,
                self.limits.enumeration_budget,
                max_steps=self.limits.max_steps,
                use_indexes=self.indexed,
                compiler=self._compiler,
                costed=self.cost_planning,
                replan_ratio=self.replan_ratio if self.cost_planning else None,
            )
        effects = [rule_effects(rule, instance.schema) for rule in rules]
        read_symbols = frozenset().union(*(eff.reads for eff in effects))
        fingerprints = {
            symbol: self._fingerprint(instance, symbol) for symbol in read_symbols
        }
        active = list(range(len(rules)))
        while True:
            if stats.steps >= self.limits.max_steps:
                raise NonTerminationError(
                    f"no fixpoint within {self.limits.max_steps} steps; "
                    f"recursion through invention can diverge (Example 3.4.2)"
                )
            stats.rules_skipped_clean += len(rules) - len(active)
            changed = self._one_step(
                instance, [rules[i] for i in active], stats
            )
            stats.steps += 1
            steps_total += 1
            if not changed:
                break
            self._check_drift(rules, stats)
            current = {
                symbol: self._fingerprint(instance, symbol)
                for symbol in read_symbols
            }
            dirty = {
                symbol
                for symbol in read_symbols
                if current[symbol] != fingerprints[symbol]
            }
            fingerprints = current
            active = [i for i, eff in enumerate(effects) if eff.reads & dirty]
            if not active:
                break
        return steps_total

    def _acquire_driver(self):
        """The run's parallel driver: per-run thread pool, or the
        Evaluator's persistent process pool (built on first use — the
        program and options cross to the workers once, here)."""
        from repro.iql.parexec import create_driver

        if self.backend == "process":
            if self._driver is None:
                self._driver = create_driver("process", self, self.parallel)
            return self._driver
        return create_driver("thread", self, self.parallel)

    def close(self) -> None:
        """Tear down the persistent process worker pool, if any.

        Safe to call repeatedly; also runs from a GC finalizer on the
        pool itself, so forgetting it leaks nothing — but a long-lived
        host application should close evaluators it is done with.
        """
        if self._driver is not None:
            self._driver.close()
            self._driver = None

    def _run_stage_parallel(
        self,
        instance: Instance,
        stage_index: int,
        strata: Tuple[Tuple[Rule, ...], ...],
        stage_plan,
        stats: EvaluationStats,
        driver,
    ) -> None:
        """Certified parallel stage execution (``Evaluator(parallel=N)``).

        Walks the certificate's :func:`~repro.analysis.parallel.concurrent_batches`
        — the one scheduling function the analysis and the executor
        share. A multi-stratum batch runs each stratum's serial fixpoint
        on its own worker (disjoint write symbols by the certificate,
        per-task stats merged at the barrier); a singleton batch whose
        stratum is certified-partitionable runs split delta rounds; every
        other singleton — hazard strata included — runs the plain serial
        path, counted as a parallel fallback. Whether a worker is a
        thread over the shared instance or a process over a shipped
        replica is entirely the ``driver``'s concern
        (:func:`repro.iql.parexec.create_driver`).
        """
        from repro.analysis.parallel import concurrent_batches
        from repro.iql.seminaive import stage_eligible

        steps_total = 0
        for batch in concurrent_batches(stage_plan):
            if len(batch) > 1:
                steps_total += driver.run_batch(
                    instance, stage_index, batch, strata, stats
                )
                continue
            stratum_index = batch[0]
            plan = stage_plan.strata[stratum_index]
            rules = list(strata[stratum_index])
            rounds = None
            if plan.partitionable and self.seminaive and stage_eligible(rules, instance):
                rounds = driver.run_partitioned(instance, stage_index, rules, stats)
                if rounds is not None:
                    stats.strata += 1
                    stats.parallel_partitioned += 1
                    steps_total += rounds
            if rounds is None:
                if plan.fallback is not None and not plan.parallel_safe:
                    stats.parallel_fallbacks += 1
                steps_total += self._solve_stratum_scheduled(instance, rules, stats)
        stats.per_stage_steps.append(steps_total)

    # -- the one-step operator γ1 ----------------------------------------------------

    def _one_step(self, instance: Instance, rules: List[Rule], stats: EvaluationStats) -> bool:
        # Each addition is (rule, bindings, kernel): bindings is a θ dict
        # on the interpreted path, a slot list on the compiled one (with
        # kernel the rule's CompiledRule).
        additions: List[Tuple[Rule, object, object]] = []
        deletions: List[Tuple[Rule, Bindings]] = []

        for rule in rules:
            kernel = (
                self._compiler.compiled_rule(rule, instance)
                if self._compiler is not None
                else None
            )
            if kernel is not None:
                blocked = kernel.blocked

                def consume(slots, _rule=rule, _kernel=kernel, _blocked=blocked):
                    stats.valuations_considered += 1
                    if not _blocked(slots):
                        additions.append((_rule, slots[:], _kernel))

                kernel.solve(consume)
                continue
            for theta in solve_body(
                rule.body,
                instance,
                enumeration_budget=self.limits.enumeration_budget,
                stats=stats,
                plan_cache=rule.plan_cache,
                use_indexes=self.indexed,
                costed=self.cost_planning,
                feedback=rule.feedback_cache if self.cost_planning else None,
            ):
                stats.valuations_considered += 1
                if rule.delete:
                    # Deletions are derived unconditionally (deleting an
                    # absent fact is a no-op); applying them after the
                    # step's insertions makes "delete wins" hold within a
                    # step, as in the *-languages of Abiteboul–Vianu.
                    deletions.append((rule, theta))
                else:
                    if not self._head_satisfiable(rule, theta, instance):
                        additions.append((rule, theta, None))

        if not additions and not deletions:
            return False

        changed = False

        # Invention / choose: extend each valuation on head-only variables.
        extended: List[Tuple[Rule, object, object]] = []
        invented: List[Tuple[str, Oid]] = []
        for rule, theta, kernel in additions:
            if kernel is not None:
                for class_name, slot in kernel.inv_slots:
                    oid = self.oid_factory.invent(class_name)
                    theta[slot] = oid
                    invented.append((class_name, oid))
                    stats.oids_invented += 1
                    if stats.oids_invented > self.limits.max_invented_oids:
                        raise NonTerminationError(
                            f"invented more than {self.limits.max_invented_oids} oids"
                        )
                extended.append((rule, theta, kernel))
                continue
            theta = dict(theta)
            inv_vars = sorted(rule.invention_variables(), key=lambda v: v.name)
            if rule.has_choose():
                for var in inv_vars:
                    theta[var] = self._choose(var, instance)
            else:
                for var in inv_vars:
                    oid = self.oid_factory.invent(var.type.name)
                    theta[var] = oid
                    invented.append((var.type.name, oid))
                    self._emit(stats, "invent", rule, f"{oid!r} ∈ {var.type.name}")
                    stats.oids_invented += 1
                    if stats.oids_invented > self.limits.max_invented_oids:
                        raise NonTerminationError(
                            f"invented more than {self.limits.max_invented_oids} oids"
                        )
            extended.append((rule, theta, None))

        # Place invented oids in their classes first (their facts may refer
        # to one another within the same step).
        for class_name, oid in invented:
            if instance.add_class_member(class_name, oid):
                changed = True
                stats.facts_added += 1

        # Derive facts; group weak assignments for the (★) rule.
        weak: Dict[Oid, Set[OValue]] = {}
        weak_was_defined: Dict[Oid, bool] = {}
        for rule, theta, kernel in extended:
            if kernel is not None:
                if kernel.apply(theta, weak, weak_was_defined):
                    changed = True
                    stats.facts_added += 1
                continue
            head = rule.head
            if isinstance(head, Membership):
                container = head.container
                element = eval_term(head.element, theta, instance)
                if element is None:
                    raise EvaluationError(
                        f"head {head!r} not evaluable under {theta!r} "
                        f"(undefined dereference in a head term)"
                    )
                if isinstance(container, NameTerm):
                    name = container.name
                    if instance.schema.is_relation(name):
                        if instance.add_relation_member(name, element):
                            changed = True
                            stats.facts_added += 1
                            self._emit(stats, "fact", rule, f"{name}({element!r})")
                    else:
                        if not isinstance(element, Oid):
                            raise EvaluationError(
                                f"class head {head!r} derived non-oid {element!r}"
                            )
                        if instance.add_class_member(name, element):
                            changed = True
                            stats.facts_added += 1
                            self._emit(stats, "fact", rule, f"{name}({element!r})")
                elif isinstance(container, Deref):
                    oid = theta[container.var]
                    if instance.add_set_element(oid, element):
                        changed = True
                        stats.facts_added += 1
                        self._emit(stats, "fact", rule, f"{oid!r}^({element!r})")
                else:  # pragma: no cover - rejected by the type checker
                    raise EvaluationError(f"illegal head container {container!r}")
            elif isinstance(head, Equality):
                deref = head.left
                if not isinstance(deref, Deref):  # pragma: no cover
                    raise EvaluationError(f"illegal equality head {head!r}")
                oid = theta[deref.var]
                value = eval_term(head.right, theta, instance)
                if value is None:
                    raise EvaluationError(
                        f"head {head!r} not evaluable (undefined dereference)"
                    )
                if oid not in weak_was_defined:
                    weak_was_defined[oid] = instance.value_of(oid) is not None
                weak.setdefault(oid, set()).add(value)

        # (★): assign only previously-undefined oids with a unique derived value.
        for oid, values in weak.items():
            if weak_was_defined[oid]:
                if self._trace is not None:
                    self._trace.append(
                        TraceEvent(
                            stats.steps + 1,
                            "ignore",
                            "(★)",
                            f"{oid!r} already defined; derived value(s) dropped",
                        )
                    )
                continue
            if len(values) != 1:
                if self._trace is not None:
                    self._trace.append(
                        TraceEvent(
                            stats.steps + 1,
                            "ignore",
                            "(★)",
                            f"{oid!r}: {len(values)} conflicting values dropped",
                        )
                    )
                continue
            if instance.assign(oid, next(iter(values))):
                changed = True
                stats.facts_added += 1
                if self._trace is not None:
                    self._trace.append(
                        TraceEvent(
                            stats.steps + 1,
                            "assign",
                            "(★)",
                            f"{oid!r} := {next(iter(values))!r}",
                        )
                    )

        # IQL* deletions, applied after additions: a fact both derived and
        # deleted in the same step ends up deleted.
        if deletions:
            changed = self._apply_deletions(instance, deletions, stats) or changed

        return changed

    # -- head satisfiability (the valuation-domain blocking condition) ---------------

    def _head_satisfiable(self, rule: Rule, theta: Bindings, instance: Instance) -> bool:
        """∃ extension θ̄ of θ with I ⊨ θ̄ head(r)?

        Head-only variables range over the *existing* oids of their class
        (the type interpretation given π); for fully-bound heads this is
        plain satisfaction.
        """
        head = rule.head
        if isinstance(head, Membership):
            # Fast paths avoid materializing the container as an OSet per
            # valuation — the blocking check runs once per candidate firing.
            if isinstance(head.container, NameTerm):
                name = head.container.name
                if instance.schema.is_relation(name):
                    members = instance.relations[name]
                else:
                    members = instance.classes[name]
                element = eval_term(head.element, theta, instance)
                if element is not None:
                    return element in members
                for existing in members:
                    for _ in match(
                        head.element, existing, theta, instance, self.indexed
                    ):
                        return True
                return False
            container = eval_term(head.container, theta, instance)
            if container is None:
                return False
            for element in container:
                for _ in match(head.element, element, theta, instance, self.indexed):
                    return True
            return False
        if isinstance(head, Equality):
            deref = head.left
            oid = theta.get(deref.var)
            candidates = (
                [oid]
                if oid is not None
                else sorted(instance.classes.get(deref.var.type.name, ()), key=sort_key)
            )
            for candidate in candidates:
                value = instance.value_of(candidate)
                if value is None:
                    continue
                extended = dict(theta)
                extended[deref.var] = candidate
                for _ in match(head.right, value, extended, instance, self.indexed):
                    return True
            return False
        raise EvaluationError(f"illegal head {head!r}")  # pragma: no cover

    # -- choose (IQL+) -----------------------------------------------------------------

    def _choose(self, var: Var, instance: Instance) -> Oid:
        class_name = var.type.name
        candidates = sorted(instance.classes.get(class_name, ()), key=sort_key)
        if not candidates:
            raise GenericityError(f"choose over empty class {class_name!r}")
        if self.choose_mode == "nondeterministic":
            # N-IQL: the witness operator — any candidate, genericity be
            # damned. Nondeterministically complete (Remark N-IQL).
            return self._rng.choice(candidates)
        if len(candidates) > 1 and self.choose_mode == "verify":
            orbits = orbit_partition(instance, candidates)
            if len(orbits) > 1:
                raise GenericityError(
                    f"choose over class {class_name!r} would violate genericity: "
                    f"{len(candidates)} candidates fall into {len(orbits)} distinguishable orbits"
                )
        return candidates[0]

    # -- deletions (IQL*) ----------------------------------------------------------------

    def _apply_deletions(
        self,
        instance: Instance,
        deletions: List[Tuple[Rule, Bindings]],
        stats: EvaluationStats,
    ) -> bool:
        changed = False
        # Deletions go through the removal mutators, which retract the
        # affected index entries in place — indexes (and the compiled
        # kernels capturing their buckets) stay warm across IQL* steps.
        doomed_oids: Set[Oid] = set()
        for rule, theta in deletions:
            head = rule.head
            if isinstance(head, Membership):
                container = head.container
                element = eval_term(head.element, theta, instance)
                if element is None:
                    continue
                if isinstance(container, NameTerm):
                    name = container.name
                    if instance.schema.is_relation(name):
                        if instance.remove_relation_member(name, element):
                            changed = True
                            stats.facts_deleted += 1
                    else:
                        if isinstance(element, Oid) and element in instance.classes[name]:
                            doomed_oids.add(element)
                elif isinstance(container, Deref):
                    oid = theta[container.var]
                    if instance.is_set_valued(oid):
                        if instance.remove_set_element(oid, element):
                            changed = True
                            stats.facts_deleted += 1
                    else:  # pragma: no cover - rejected by the type checker
                        current = instance.value_of(oid)
                        if current is not None and element in current:
                            instance.nu[oid] = type(current)(
                                v for v in current if v != element
                            )
                            instance.drop_indexes()
                            changed = True
                            stats.facts_deleted += 1
            elif isinstance(head, Equality):
                oid = theta[head.left.var]
                value = eval_term(head.right, theta, instance)
                if value is not None and instance.nu.get(oid) == value:
                    instance.unassign(oid)
                    changed = True
                    stats.facts_deleted += 1
        if doomed_oids:
            changed = True
            stats.facts_deleted += len(doomed_oids)
            self._cascade_delete(instance, doomed_oids, stats)
        return changed

    def _cascade_delete(
        self, instance: Instance, doomed: Set[Oid], stats: EvaluationStats
    ) -> None:
        """Remove oids and everything that dangles (Section 4.5).

        "Deleting an oid forces deletion of other objects that have this
        oid in their o-value": relation members mentioning a doomed oid are
        removed, and objects whose value mentions one are deleted in turn,
        transitively — the reference-count/garbage-collection discipline
        the paper alludes to.
        """
        from repro.values.ovalues import oids_of

        worklist = set(doomed)
        removed: Set[Oid] = set()
        while worklist:
            batch, worklist = worklist, set()
            removed |= batch
            for oid in batch:
                name = instance.class_of(oid)
                if name is not None:
                    instance.remove_class_member(name, oid)
                else:
                    instance.unassign(oid)
            for name, members in instance.relations.items():
                stale = {v for v in members if oids_of(v) & removed}
                for value in stale:
                    instance.remove_relation_member(name, value)
                stats.facts_deleted += len(stale)
            for oid, value in list(instance.nu.items()):
                if oid in removed:
                    continue
                if oids_of(value) & removed:
                    if oid not in removed:
                        worklist.add(oid)


# -- convenience entry points ----------------------------------------------------------


def evaluate(
    program: Program,
    input_instance: Instance,
    oid_factory: Optional[OidFactory] = None,
    limits: Optional[EvaluatorLimits] = None,
    choose_mode: str = "verify",
) -> Instance:
    """Run ``program`` on ``input_instance`` and return the output instance."""
    return Evaluator(program, oid_factory, limits, choose_mode).run(input_instance).output


def evaluate_full(
    program: Program,
    input_instance: Instance,
    oid_factory: Optional[OidFactory] = None,
    limits: Optional[EvaluatorLimits] = None,
    choose_mode: str = "verify",
) -> EvaluationResult:
    """Run ``program`` and return the full result (instance over S + stats)."""
    return Evaluator(program, oid_factory, limits, choose_mode).run(input_instance)
