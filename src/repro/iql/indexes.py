"""Incremental hash indexes over an :class:`~repro.schema.instance.Instance`.

The paper closes by noting that IQL "is a good candidate for conventional
database optimizations" (§5, §8); this module supplies the storage-level
half of that claim. Three index families back the join planner in
:mod:`repro.iql.valuation`:

* **relation attribute-projection indexes** — for a relation R whose
  members are tuples, the map ``(R, A) → {v → members with member[A] = v}``.
  A membership literal ``R([A: t, ...])`` with ``t`` evaluable probes one
  bucket instead of scanning ρ(R); this is the hash-join inner loop.
* **reverse ν-indexes** — per class P, the map ``v → {o ∈ π(P) | ν(o) = v}``.
  Matching an *unbound* dereference ``x̂ = v`` becomes an O(1) probe instead
  of an O(|π(P)| log |π(P)|) sort-and-scan per call.
* the **plan cache** lives on :class:`~repro.iql.rules.Rule` (the planner
  memoizes one literal order per bound-variable set); this module only
  defines the shared statistics protocol those layers report into.

Indexes are built lazily — the first probe of a (relation, attribute) or
class pays one scan — and then maintained *incrementally* by the instance
mutators: the four growth mutators (``add_relation_member``,
``add_class_member``, ``assign``, ``add_set_element``) and their removal
counterparts (``remove_relation_member``, ``remove_class_member``,
``unassign``, ``remove_set_element``). Retraction happens *in place* —
entries are discarded from the affected buckets, never by dropping the
whole index set — so the IVM runtime (:mod:`repro.iql.ivm`) and the IQL*
deletion step keep warm indexes (and, because the
:class:`InstanceIndexes` object identity is preserved, warm compiled
kernels) across deletions. A property test asserts that
incrementally-maintained contents equal a from-scratch rebuild after
arbitrary mixed add/remove mutation sequences.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, Optional, Set, Tuple

from repro.values.ovalues import Oid, OTuple, OValue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (instance → indexes)
    from repro.schema.instance import Instance

#: An empty bucket, shared by all misses.
_EMPTY: FrozenSet[OValue] = frozenset()


class InstanceIndexes:
    """The lazily-built, incrementally-maintained index set of one instance.

    Obtained via ``instance.indexes``; never constructed directly by
    callers. All probe methods return (possibly shared, do-not-mutate)
    sets; callers must not hold them across instance mutations.
    """

    __slots__ = ("instance", "_relation_attr", "_deref")

    def __init__(self, instance: "Instance"):
        self.instance = instance
        #: (relation name, attribute) → value → set of members with that
        #: attribute value. Only tuple-shaped members carrying the attribute
        #: are indexed; others are unreachable by a tuple-pattern probe.
        self._relation_attr: Dict[Tuple[str, str], Dict[OValue, Set[OValue]]] = {}
        #: class name → value → oids of the class whose ν-value equals it.
        self._deref: Dict[str, Dict[OValue, Set[Oid]]] = {}

    # -- probes ------------------------------------------------------------------

    def relation_index(self, name: str, attr: str) -> Dict[OValue, Set[OValue]]:
        """The (lazily built) projection index of relation ``name`` on ``attr``."""
        key = (name, attr)
        index = self._relation_attr.get(key)
        if index is None:
            index = {}
            for member in self.instance.relations[name]:
                if isinstance(member, OTuple) and attr in member:
                    index.setdefault(member[attr], set()).add(member)
            self._relation_attr[key] = index
        return index

    def relation_probe(self, name: str, attr: str, value: OValue):
        """Members of ρ(name) whose ``attr`` component equals ``value``."""
        return self.relation_index(name, attr).get(value, _EMPTY)

    def ndv(self, name: str, attr: str) -> int:
        """Distinct ``attr`` values among relation ``name``'s tuple members.

        The cardinality statistic behind the cost-based planner
        (:mod:`repro.iql.stats`): it is simply the key count of the
        projection index, so incremental maintenance through every
        mutator keeps it exact for free — the statistic *is* the index.
        """
        return len(self.relation_index(name, attr))

    def deref_index(self, class_name: str) -> Dict[OValue, Set[Oid]]:
        """The (lazily built) reverse ν-index of class ``class_name``."""
        index = self._deref.get(class_name)
        if index is None:
            index = {}
            instance = self.instance
            for oid in instance.classes.get(class_name, ()):
                v = instance.value_of(oid)
                if v is not None:
                    index.setdefault(v, set()).add(oid)
            self._deref[class_name] = index
        return index

    def deref_probe(self, class_name: str, value: OValue):
        """Oids o ∈ π(class_name) with ν(o) = value."""
        return self.deref_index(class_name).get(value, _EMPTY)

    # -- incremental maintenance (called by the Instance mutators) ---------------

    def on_add_relation_member(self, name: str, value: OValue) -> None:
        # Snapshot the registry: under certified concurrency
        # (Evaluator(parallel=N)) another worker may lazily *create* an
        # index while this one maintains its own relation's buckets. The
        # snapshot is complete for ``name`` — an index on ``name`` is only
        # ever created by a stratum that reads it, and the certificate
        # never batches a reader concurrently with this writer.
        if isinstance(value, OTuple):
            for (rname, attr), index in list(self._relation_attr.items()):
                if rname == name and attr in value:
                    index.setdefault(value[attr], set()).add(value)

    def on_add_class_member(self, name: str, oid: Oid) -> None:
        index = self._deref.get(name)
        if index is not None:
            v = self.instance.value_of(oid)
            if v is not None:  # set-valued classes default to { }
                index.setdefault(v, set()).add(oid)

    def on_assign(self, oid: Oid, old: Optional[OValue], new: OValue) -> None:
        """ν(oid) changed from ``old`` (None = undefined) to ``new``.

        Covers raw ``assign``, ``add_set_element`` and ``remove_set_element``
        (whose old value is the previous set, possibly the default { })."""
        class_name = self.instance.class_of(oid)
        index = self._deref.get(class_name)
        if index is None:
            return
        if old is not None:
            self._discard_deref(index, old, oid)
        index.setdefault(new, set()).add(oid)

    # -- in-place retraction (called by the removal mutators) ---------------------

    @staticmethod
    def _discard_deref(index: Dict[OValue, Set[Oid]], value: OValue, oid: Oid) -> None:
        bucket = index.get(value)
        if bucket is not None:
            bucket.discard(oid)
            if not bucket:
                del index[value]

    def on_remove_relation_member(self, name: str, value: OValue) -> None:
        # Snapshot for the same reason as on_add_relation_member (deletion
        # never runs concurrently — it is an IQL802 hazard — but the hooks
        # keep one contract).
        if isinstance(value, OTuple):
            for (rname, attr), index in list(self._relation_attr.items()):
                if rname == name and attr in value:
                    bucket = index.get(value[attr])
                    if bucket is not None:
                        bucket.discard(value)
                        if not bucket:
                            del index[value[attr]]

    def on_remove_class_member(
        self, name: str, oid: Oid, old: Optional[OValue]
    ) -> None:
        """``oid`` left π(name); ``old`` is the ν-value it was indexed under
        (already including the { } default for set-valued classes)."""
        index = self._deref.get(name)
        if index is not None and old is not None:
            self._discard_deref(index, old, oid)

    def on_unassign(self, oid: Oid, old: OValue) -> None:
        """ν(oid) reverted from ``old`` to undefined.

        Set-valued oids fall back to the default { } — which the reverse
        index *does* record — so they are re-indexed under the empty set,
        exactly as a from-scratch rebuild would."""
        class_name = self.instance.class_of(oid)
        if class_name is None:
            return
        index = self._deref.get(class_name)
        if index is None:
            return
        self._discard_deref(index, old, oid)
        fallback = self.instance.value_of(oid)
        if fallback is not None:
            index.setdefault(fallback, set()).add(oid)

    # -- verification (property tests) -------------------------------------------

    def equals_rebuild(self) -> bool:
        """True iff every built index equals a from-scratch rebuild.

        The oracle for the incremental-maintenance property test: after any
        sequence of mutator calls, the maintained contents must be exactly
        what building from the current instance state would produce.
        """
        fresh = InstanceIndexes(self.instance)
        for name, attr in self._relation_attr:
            if self._relation_attr[(name, attr)] != fresh.relation_index(name, attr):
                return False
        for class_name in self._deref:
            if self._deref[class_name] != fresh.deref_index(class_name):
                return False
        return True

    def built_relation_indexes(self) -> FrozenSet[Tuple[str, str]]:
        return frozenset(self._relation_attr)

    def built_deref_indexes(self) -> FrozenSet[str]:
        return frozenset(self._deref)
