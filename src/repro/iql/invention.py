"""Oid invention — valuation-maps made concrete (Section 3.2).

The semantics quantifies over all *valuation-maps*: assignments of fresh,
pairwise-distinct oids to the head-only variables of the firing (rule,
valuation) pairs. All choices yield O-isomorphic results (Theorem 4.1.3);
an :class:`OidFactory` fixes one choice, and the determinacy experiments
run the same program with different factories and check the outputs are
O-isomorphic.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.values.ovalues import Oid


class OidFactory:
    """Produces fresh oids for invention. The base class is the default:
    globally fresh anonymous oids, named for readability."""

    def invent(self, class_name: str) -> Oid:
        return Oid(f"{class_name}!")

    def invent_many(self, class_name: str, count: int) -> Iterable[Oid]:
        return [self.invent(class_name) for _ in range(count)]


class CountingOidFactory(OidFactory):
    """Numbers invented oids per class: ``P!1``, ``P!2``, ... Deterministic
    display names make transcripts and failure messages readable."""

    def __init__(self):
        self._counters = {}

    def invent(self, class_name: str) -> Oid:
        n = self._counters.get(class_name, 0) + 1
        self._counters[class_name] = n
        return Oid(f"{class_name}!{n}")


class PrefixedOidFactory(OidFactory):
    """Invents oids with a distinguishing prefix.

    Two evaluator runs with different prefixes can never collide on oid
    names, which makes the O-isomorphism of their outputs a meaningful
    check rather than an accident of shared identity.
    """

    def __init__(self, prefix: str):
        self.prefix = prefix
        self._counter = itertools.count(1)

    def invent(self, class_name: str) -> Oid:
        return Oid(f"{self.prefix}:{class_name}!{next(self._counter)}")
