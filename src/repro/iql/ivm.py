"""Incremental view maintenance: live fixpoints under base-fact updates.

:class:`MaterializedProgram` keeps one evaluation of an IQL program
*live*: it runs the initial fixpoint once, then applies batches of base
fact inserts and deletes by executing the program's
:class:`~repro.analysis.maintenance.MaintenanceCertificate`\\ s instead
of re-evaluating from scratch. The strategy trichotomy certified by the
PR-6 analysis (IQL701–704) is exactly what runs here:

* **counting** symbols keep per-fact derivation counts
  (:class:`~repro.iql.supports.SupportTable`). An update adjusts counts
  by enumerating only the valuations that touch a delta fact — through
  the compiled semi-naive kernels of :mod:`repro.iql.compile` when
  available — and a fact is physically inserted or retracted exactly
  when its count crosses zero. Exact for both inserts and deletes.
* **dred** symbols (recursive, or reached through negation) get the
  classical two phases: *over-delete* a conservative superset of the
  facts whose derivations may involve the delta, then *re-derive* by
  re-running the stratum to its fixpoint on the new state. Facts that
  come back are counted in ``stats.rederived``.
* **recompute** certificates (a maintenance hazard in the cone) fall
  back — a batch touching one re-evaluates from the maintained base
  input; class-extent updates fall back to re-running only the
  certified slice strata. Both are tallied in
  ``stats.maintenance_fallbacks``.

Exactness of the counting adjustments rests on a dying/born argument: a
valuation θ of a counting rule changes validity across the update iff it
uses at least one deleted fact in a positive relation position (*dying*,
enumerated against the old state) or at least one inserted fact (*born*,
enumerated against the new state); negative literals cannot flip because
a symbol read non-monotonically from a changing symbol makes the reader
DRed, and class extents / ν cannot change because class-base batches
take the slice-recompute path. A valuation enumerated from several delta
positions is deduplicated per rule, and a fact that dies and is reborn
(e.g. through an over-deleted, re-derived upstream fact) nets to zero.
The invariant ``fact ∈ ρ(S) ⟺ count(S, fact) ≥ 1`` holds at the initial
fixpoint because the evaluator runs scheduled (counting symbols live in
certified, topologically ordered strata, so their reads are final when
their stratum converges); a :class:`MaterializedProgram` built over an
unscheduled evaluator detects the mismatch per symbol and demotes it to
DRed instead of serving wrong counts.

Deletion happens *in place*: the removal mutators of
:class:`~repro.schema.instance.Instance` retract the affected index
entries instead of dropping the index set, so the hash joins — and the
compiled kernels capturing their buckets — stay warm across updates.

``repro maintain`` is the CLI face (a read-eval-update loop over
``+R fact`` / ``-R fact`` lines); benchmark E20
(``benchmarks/bench_ivm.py``) measures updates/sec against full
re-evaluation; :func:`repro.analysis.maintenance.replay_insert` is the
differential oracle the property tests compare against.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.effects import delta_body, head_symbol, rule_effects
from repro.analysis.maintenance import (
    COUNTING,
    DRED,
    NOOP,
    _ORDER,
    MaintenanceCertificate,
    build_certificates,
    validate_certificate,
)
from repro.errors import EvaluationError
from repro.iql.evaluator import EvaluationResult, EvaluationStats, Evaluator
from repro.iql.program import Program
from repro.iql.rules import Rule
from repro.iql.supports import SupportTable
from repro.iql.valuation import eval_term, match, solve_body
from repro.schema.instance import Instance
from repro.values.ovalues import Oid, OValue, ensure_ovalue

#: One base-fact update: ``(symbol, value)``.
Update = Tuple[str, OValue]
#: Per-symbol delta sets.
Delta = Dict[str, Set[OValue]]


class _BatchPlan:
    """The merged maintenance plan of one update batch.

    Every involved certificate contributes its cone; since a slice
    stratum is a whole schedule stratum, merging by ``(stage, stratum)``
    key is well defined, and per-symbol strategies fold by severity.
    """

    __slots__ = ("strategies", "ordered", "derived_set", "members", "via_negation")

    def __init__(
        self,
        strategies: Dict[str, str],
        ordered: List[Tuple[Tuple[int, int], Tuple[Rule, ...]]],
        derived_set: Set[str],
        members: Set[str],
        via_negation: bool,
    ):
        self.strategies = strategies
        self.ordered = ordered
        self.derived_set = derived_set
        self.members = members
        self.via_negation = via_negation


class MaterializedProgram:
    """A live, incrementally-maintained fixpoint of one IQL program.

    ``input_instance`` is an instance over the program's input schema
    (it is copied; the copy — the *maintained base* — is kept in sync
    with every applied batch and is what fallback recomputes run from).
    The default evaluator runs scheduled and compiled — scheduling is
    what makes the counting invariant hold at the initial fixpoint, and
    compilation is what the delta joins ride on.

    ``stats`` is one cumulative :class:`EvaluationStats` across the
    initial run and every batch: the IVM counters (``deltas_applied``,
    ``supports_adjusted``, ``overdeleted``, ``rederived``,
    ``maintenance_fallbacks``) only ever grow here.
    """

    def __init__(
        self,
        program: Program,
        input_instance: Instance,
        evaluator: Optional[Evaluator] = None,
    ):
        self.program = program
        if evaluator is None:
            evaluator = Evaluator(program, schedule=True, compile=True)
        if evaluator.program is not program:
            raise EvaluationError(
                "the evaluator was constructed for a different program"
            )
        self._evaluator = evaluator
        self._schema = program.schema
        base = input_instance
        if base.schema != program.input_schema:
            base = base.project(program.input_schema)
        #: The maintained copy of the base input, mirrored on every batch.
        self.base = base.copy()
        self.stats = EvaluationStats()

        result: EvaluationResult = evaluator.run(self.base)
        #: The live full instance (over S); queries read it directly.
        self.instance = result.full
        self.initial_stats = result.stats
        if evaluator._compiler is not None:
            evaluator._compiler.begin_run(self.stats)

        #: ``(base symbol, op) → certificate`` for every update class.
        self.certificates: Dict[Tuple[str, str], MaintenanceCertificate] = {}
        #: Violations per update class (certificate validation is hoisted
        #: here, once, instead of being paid on every replay).
        self._violations: Dict[Tuple[str, str], List[str]] = {}
        for cert in build_certificates(program):
            key = (cert.base, cert.op)
            self.certificates[key] = cert
            bad = validate_certificate(program, cert)
            if bad:
                self._violations[key] = bad

        #: Rules writing each derived relation (the support rebuilders).
        self._writers: Dict[str, List[Rule]] = {}
        for rule in program.rules:
            if not rule.delete:
                self._writers.setdefault(head_symbol(rule), []).append(rule)
        #: *Dual* symbols — base inputs that rules also write. Their
        #: extent is base facts ∪ derivations, so a delete touching one
        #: (directly, or through its cone) cannot be maintained by the
        #: readers-forward certificate alone: the base contribution has
        #: no dying valuation, and a deleted base fact may be
        #: re-derivable by writers outside the cone.
        self._dual: Set[str] = {
            name for name in program.input_names if name in self._writers
        }

        #: Symbols classified counting in at least one *certified* cone.
        self._counting_anywhere: Set[str] = set()
        for (key, cert) in self.certificates.items():
            if cert.certified and key not in self._violations:
                for symbol, strat in cert.classification:
                    if strat == COUNTING:
                        self._counting_anywhere.add(symbol)

        self.supports = SupportTable()
        #: Per counting symbol: does ``extent == supported facts`` hold?
        #: False demotes the symbol to DRed (see the module docstring).
        self._support_exact: Dict[str, bool] = {}
        self._build_supports(None)

    # -- queries -----------------------------------------------------------------

    def extent(self, symbol: str) -> Set[OValue]:
        """The current extent of a relation or class, as a fresh set."""
        if self._schema.is_relation(symbol):
            return set(self.instance.relations[symbol])
        if self._schema.is_class(symbol):
            return set(self.instance.classes[symbol])
        raise EvaluationError(f"unknown symbol {symbol!r}")

    def output(self) -> Instance:
        """The maintained instance projected on the output schema."""
        return self.instance.project(self.program.output_schema)

    # -- the one public mutator ---------------------------------------------------

    def apply_delta(
        self,
        inserts: Iterable[Update] = (),
        deletes: Iterable[Update] = (),
    ) -> EvaluationStats:
        """Apply one batch of base-fact updates and maintain the fixpoint.

        Deletes-then-inserts semantics per symbol: the *net* delta is
        Δ⁺ = inserts − extent and Δ⁻ = (deletes ∩ extent) − inserts, so
        deleting and re-inserting the same fact in one batch is a no-op.
        Returns the cumulative :attr:`stats`.
        """
        from repro.values import intern

        with intern.interning(self._evaluator.interned):
            self._apply(self._group(inserts), self._group(deletes))
            if self._evaluator.cost_planning:
                from repro.iql.stats import check_drift

                # The batch's row counts are fresh evidence; replanning
                # here (plans evicted, kernels invalidated) makes the
                # *next* batch run the corrected order — cardinalities
                # drift across a long maintenance run as the instance
                # grows away from its initial-fixpoint statistics.
                check_drift(
                    self.program.rules, self.stats, self._evaluator.replan_ratio
                )
        return self.stats

    # -- batch dispatch -----------------------------------------------------------

    def _group(self, updates: Iterable[Update]) -> Delta:
        grouped: Delta = {}
        for symbol, value in updates:
            if symbol not in self.program.input_names:
                raise EvaluationError(
                    f"{symbol!r} is not an updatable base symbol of the program"
                )
            if self._schema.is_class(symbol):
                if not isinstance(value, Oid):
                    raise EvaluationError(
                        f"class-extent update on {symbol!r} needs an oid, "
                        f"got {value!r}"
                    )
                grouped.setdefault(symbol, set()).add(value)
            else:
                grouped.setdefault(symbol, set()).add(ensure_ovalue(value))
        return grouped

    def _apply(self, inserts: Delta, deletes: Delta) -> None:
        plus: Delta = {}
        minus: Delta = {}
        for name in set(inserts) | set(deletes):
            extent = (
                self.instance.relations[name]
                if self._schema.is_relation(name)
                else self.instance.classes[name]
            )
            ins = inserts.get(name, set())
            p = {v for v in ins if v not in extent}
            m = {v for v in deletes.get(name, set()) if v in extent and v not in ins}
            if p:
                plus[name] = p
            if m:
                minus[name] = m
        if not plus and not minus:
            return
        self.stats.deltas_applied += sum(len(v) for v in plus.values()) + sum(
            len(v) for v in minus.values()
        )
        self._mirror_base(plus, minus)

        involved: List[MaintenanceCertificate] = []
        for name in plus:
            involved.append(self.certificates[(name, "insert")])
        for name in minus:
            involved.append(self.certificates[(name, "delete")])
        if any(
            not cert.certified or (cert.base, cert.op) in self._violations
            for cert in involved
        ):
            self._full_recompute()
            return
        plan = self._merge(involved)
        if any(self._schema.is_class(name) for name in list(plus) + list(minus)):
            self._slice_recompute(plan, plus, minus)
            return
        if minus and self._dual & (set(minus) | plan.derived_set):
            self._full_recompute()
            return
        if minus or plan.via_negation:
            self._general_path(plan, plus, minus)
        else:
            self._insert_only(plan, plus)
        if self.supports.negative_symbols():  # pragma: no cover - defensive
            self._slice_recompute(plan, {}, {})

    def _merge(self, involved: List[MaintenanceCertificate]) -> _BatchPlan:
        strategies: Dict[str, str] = {}
        slice_map: Dict[Tuple[int, int], Tuple[Rule, ...]] = {}
        derived: Set[str] = set()
        members: Set[str] = set()
        via_negation = False
        for cert in involved:
            for symbol, strat in cert.classification:
                if _ORDER[strat] > _ORDER[strategies.get(symbol, NOOP)]:
                    strategies[symbol] = strat
            for ref, rules in zip(cert.cone.slice, cert.cone.slice_rules):
                slice_map[(ref.stage, ref.stratum)] = rules
            derived.update(cert.cone.derived)
            members.update(cert.cone.impacts)
            if cert.cone.via_negation:
                via_negation = True
        # A counting symbol whose support table does not exactly mirror
        # its extent (unscheduled initial run) cannot be trusted: demote.
        for symbol, strat in strategies.items():
            if strat == COUNTING and not self._support_exact.get(symbol, False):
                strategies[symbol] = DRED
        return _BatchPlan(
            strategies, sorted(slice_map.items()), derived, members, via_negation
        )

    # -- base bookkeeping ----------------------------------------------------------

    def _mirror_base(self, plus: Delta, minus: Delta) -> None:
        for target in (self.base,):
            for name, values in minus.items():
                if self._schema.is_relation(name):
                    for value in values:
                        target.remove_relation_member(name, value)
                else:
                    for oid in values:
                        target.remove_class_member(name, oid)
            for name, values in plus.items():
                if self._schema.is_relation(name):
                    for value in values:
                        target.add_relation_member(name, value)
                else:
                    for oid in values:
                        target.add_class_member(name, oid)

    def _apply_base_live(self, plus: Delta, minus: Delta) -> None:
        for name, values in minus.items():
            if self._schema.is_relation(name):
                for value in values:
                    if self.instance.remove_relation_member(name, value):
                        self.stats.facts_deleted += 1
            else:
                for oid in values:
                    if self.instance.remove_class_member(name, oid):
                        self.stats.facts_deleted += 1
        for name, values in plus.items():
            if self._schema.is_relation(name):
                for value in values:
                    if self.instance.add_relation_member(name, value):
                        self.stats.facts_added += 1
            else:
                for oid in values:
                    if self.instance.add_class_member(name, oid):
                        self.stats.facts_added += 1

    # -- fallback tiers -------------------------------------------------------------

    def _full_recompute(self) -> None:
        """Re-evaluate from the maintained base input (hazardous cone)."""
        self.stats.maintenance_fallbacks += 1
        result = self._evaluator.run(self.base)
        self.instance = result.full
        if self._evaluator._compiler is not None:
            self._evaluator._compiler.begin_run(self.stats)
        self._build_supports(None)

    def _slice_recompute(self, plan: _BatchPlan, plus: Delta, minus: Delta) -> None:
        """Clear and re-run only the certified slice strata (class bases,
        or a defensive recovery when a support count went negative)."""
        self.stats.maintenance_fallbacks += 1
        self._apply_base_live(plus, minus)
        for symbol in sorted(plan.derived_set):
            if self._schema.is_relation(symbol):
                relation = self.instance.relations[symbol]
                relation.clear()
                if symbol in self._dual:
                    # A dual symbol keeps its base contribution.
                    relation |= self.base.relations[symbol]
        self.instance.drop_indexes()
        for _key, rules in plan.ordered:
            self._evaluator.solve_stratum(self.instance, rules, self.stats)
        self._build_supports(self._counting_anywhere & plan.derived_set)

    # -- the incremental paths -------------------------------------------------------

    def _insert_only(self, plan: _BatchPlan, plus: Delta) -> None:
        """Pure insert propagation: no retraction anywhere (no deletes in
        the batch, no negation in the merged cone), so every stratum is
        either an exact counting round or a delta-seeded fixpoint."""
        self._apply_base_live(plus, {})
        delta_plus: Delta = {name: set(values) for name, values in plus.items()}
        dirty: Set[str] = set()
        for _key, rules in plan.ordered:
            live = {name for name, values in delta_plus.items() if values}
            if not live:
                break
            if not any(
                rule_effects(rule, self._schema).reads & live for rule in rules
            ):
                continue
            written = {
                s
                for s in (head_symbol(rule) for rule in rules)
                if self._schema.is_relation(s)
            }
            if self._counting_stratum(rules, plan):
                crossed = self._counting_adjust(
                    rules, delta_plus, self.instance, +1, use_kernels=True
                )
                for symbol, facts in crossed.items():
                    for fact in facts:
                        if self.instance.add_relation_member(symbol, fact):
                            self.stats.facts_added += 1
                    delta_plus.setdefault(symbol, set()).update(facts)
            else:
                added: Delta = {}
                self._evaluator.solve_stratum(
                    self.instance,
                    rules,
                    self.stats,
                    initial_delta=delta_plus,
                    added=added,
                )
                for symbol, facts in added.items():
                    delta_plus.setdefault(symbol, set()).update(facts)
                # Support counts can grow even when no fact is new (a
                # second derivation of an existing fact), so dirtiness is
                # keyed on the stratum having run, not on ``added``.
                dirty |= written & self._counting_anywhere
        if dirty:
            self._build_supports(dirty)

    def _general_path(self, plan: _BatchPlan, plus: Delta, minus: Delta) -> None:
        """The two-phase path for batches that can retract derived facts.

        Phase A sweeps the *old* state in topological order: counting
        strata decrement the dying valuations exactly; DRed strata mark a
        conservative over-delete set. Phase B retracts everything marked,
        in place; phase C applies the base inserts; phase D sweeps the
        *new* state: counting strata increment the born valuations, DRed
        strata re-run to fixpoint (re-deriving survivors of the
        over-delete).

        Nothing mutates until phase B, so the live instance *is* the old
        state throughout phase A — no snapshot copy, and the compiled
        kernels (validated by instance identity) serve both sweeps.
        """
        old = self.instance
        delta_plus: Delta = {name: set(values) for name, values in plus.items()}
        delta_minus: Delta = {name: set(values) for name, values in minus.items()}
        changed = set(plus) | set(minus) | plan.derived_set
        over: Delta = {}
        exact_dead: Delta = {}
        dirty: Set[str] = set()
        counting_strata: Set[Tuple[int, int]] = set()

        # Phase A: dying valuations / over-deletion, against the old state.
        for key, rules in plan.ordered:
            if self._counting_stratum(rules, plan):
                counting_strata.add(key)
                live_minus = {n for n, v in delta_minus.items() if v}
                if not live_minus:
                    continue
                crossed = self._counting_adjust(
                    rules, delta_minus, old, -1, use_kernels=True
                )
                for symbol, facts in crossed.items():
                    delta_minus.setdefault(symbol, set()).update(facts)
                    exact_dead.setdefault(symbol, set()).update(facts)
            else:
                marked = self._overdelete_stratum(rules, old, plan, changed, delta_minus)
                for symbol, facts in marked.items():
                    if not facts:
                        continue
                    self.stats.overdeleted += len(facts)
                    delta_minus.setdefault(symbol, set()).update(facts)
                    over.setdefault(symbol, set()).update(facts)

        # Phase B: retract, in place (indexes and kernels stay warm).
        for doomed in (exact_dead, over):
            for symbol, facts in doomed.items():
                for fact in facts:
                    if self.instance.remove_relation_member(symbol, fact):
                        self.stats.facts_deleted += 1
        # Phase C: the base updates themselves.
        self._apply_base_live(plus, minus)

        # Phase D: born valuations / re-derivation, against the new state.
        for key, rules in plan.ordered:
            if key in counting_strata:
                live_plus = {n for n, v in delta_plus.items() if v}
                if not live_plus:
                    continue
                crossed = self._counting_adjust(
                    rules, delta_plus, self.instance, +1, use_kernels=True
                )
                for symbol, facts in crossed.items():
                    for fact in facts:
                        if self.instance.add_relation_member(symbol, fact):
                            self.stats.facts_added += 1
                    delta_plus.setdefault(symbol, set()).update(facts)
            else:
                written = {
                    s
                    for s in (head_symbol(rule) for rule in rules)
                    if self._schema.is_relation(s)
                }
                before = {s: set(self.instance.relations[s]) for s in written}
                self._evaluator.solve_stratum(self.instance, rules, self.stats)
                for symbol in written:
                    fresh = self.instance.relations[symbol] - before[symbol]
                    if fresh:
                        delta_plus.setdefault(symbol, set()).update(fresh)
                        self.stats.rederived += len(fresh & over.get(symbol, set()))
                dirty |= written & self._counting_anywhere
        if dirty:
            self._build_supports(dirty)

    # -- counting machinery -----------------------------------------------------------

    def _counting_stratum(self, rules: Sequence[Rule], plan: _BatchPlan) -> bool:
        """Can this stratum run as an exact counting round?

        Every rule writing a merged-cone symbol must have a counting head
        and a delta-rewritable body; a rule writing outside the cone must
        not read any cone member (then the batch cannot change it)."""
        for rule in rules:
            head = head_symbol(rule)
            if head in plan.derived_set:
                if plan.strategies.get(head) != COUNTING:
                    return False
                if delta_body(rule, self._schema) is None:
                    return False
            elif rule_effects(rule, self._schema).reads & plan.members:
                return False  # pragma: no cover - forward closure forbids this
        return True

    def _delta_valuations(
        self,
        rule: Rule,
        shape,
        delta: Delta,
        instance: Instance,
        use_kernels: bool,
    ):
        """Yield ``(dedup key, head value)`` for every valuation of
        ``rule`` that uses at least one ``delta`` fact in a positive
        relation position. Keys are canonical per call (kernel slot
        tuples or frozen θs — never mixed, since the kernel decision is
        made once per rule), so the caller can deduplicate valuations
        enumerated from several delta positions.

        Kernels are only valid against the instance they captured (the
        per-rule cache revalidates by identity), which is why the general
        path keeps the live instance unmutated through its whole phase A.
        """
        compiler = self._evaluator._compiler if use_kernels else None
        budget = self._evaluator.limits.enumeration_budget
        indexed = self._evaluator.indexed
        head_term = rule.head.element
        body = list(rule.body)
        kernels = None
        if compiler is not None:
            kernels = compiler.seminaive_kernels(rule, shape, instance)
            if kernels is not None and any(
                p not in kernels.per_position for p in shape.relation_positions
            ):
                kernels = None  # pragma: no cover - per_position is total
        for position in shape.relation_positions:
            literal = body[position]
            source = delta.get(literal.container.name)
            if not source:
                continue
            if kernels is not None:
                matcher, rest_body, head_eval = kernels.per_position[position]
                order = tuple(
                    rest_body.slot_index[v]
                    for v in sorted(rest_body.slot_vars, key=lambda v: v.name)
                )
                firings: List[Tuple[tuple, OValue]] = []

                def consume(
                    slots: List[object],
                    _he: Callable = head_eval,
                    _f: List = firings,
                    _o: tuple = order,
                ) -> None:
                    value = _he(slots)
                    if value is not None:
                        _f.append((tuple(slots[i] for i in _o), value))

                slots = rest_body.new_slots()
                rest_body.sink_cell[0] = consume
                entry = rest_body.entry
                for fact in source:
                    if matcher(fact, slots):
                        entry(slots)
                yield from firings
                continue
            rest = body[:position] + body[position + 1 :]
            for fact in source:
                for seed in match(
                    literal.element, fact, {}, instance, indexed, self.stats
                ):
                    for theta in solve_body(
                        rest,
                        instance,
                        enumeration_budget=budget,
                        initial=seed,
                        stats=self.stats,
                        plan_cache=rule.plan_cache,
                        use_indexes=indexed,
                        costed=self._evaluator.cost_planning,
                        feedback=rule.feedback_cache
                        if self._evaluator.cost_planning
                        else None,
                    ):
                        value = eval_term(head_term, theta, instance)
                        if value is not None:
                            yield (frozenset(theta.items()), value)

    def _counting_adjust(
        self,
        rules: Sequence[Rule],
        delta: Delta,
        instance: Instance,
        sign: int,
        use_kernels: bool,
    ) -> Delta:
        """One exact counting round: enumerate the valuations of ``rules``
        that use at least one ``delta`` fact in a positive relation
        position (deduplicated per rule across positions), adjust the
        support counts by ``sign``, and return the facts whose count
        crossed zero — born facts for +1, dying facts for -1."""
        crossed: Delta = {}
        for rule in rules:
            shape = delta_body(rule, self._schema)
            if shape is None:
                continue  # writes outside the cone; reads no delta
            head_name = head_symbol(rule)
            if head_name not in self.supports.counts and head_name not in (
                self._counting_anywhere
            ):
                continue  # pragma: no cover - counting strata write counting heads
            seen: Set[object] = set()
            for key, value in self._delta_valuations(
                rule, shape, delta, instance, use_kernels
            ):
                if key in seen:
                    continue
                seen.add(key)
                self._adjust(head_name, value, sign, crossed)
        return crossed

    def _adjust(self, symbol: str, fact: OValue, sign: int, crossed: Delta) -> None:
        self.stats.supports_adjusted += 1
        if sign > 0:
            if self.supports.add(symbol, fact) == 1:
                crossed.setdefault(symbol, set()).add(fact)
        else:
            if self.supports.sub(symbol, fact) == 0:
                crossed.setdefault(symbol, set()).add(fact)

    # -- DRed machinery ----------------------------------------------------------------

    def _overdelete_stratum(
        self,
        rules: Sequence[Rule],
        old: Instance,
        plan: _BatchPlan,
        changed: Set[str],
        delta_minus: Delta,
    ) -> Delta:
        """The over-delete set of one DRed stratum, against the old state.

        A head fact is marked when some old-state derivation of it uses a
        deleted (or already-marked — recursion) fact positively; a rule
        with a non-rewritable body, or one reading a changing symbol
        non-monotonically, conservatively marks its whole head extent.
        Marks propagate semi-naively: each round delta-joins only the
        *frontier* (the facts marked in the previous round), so every
        mark is processed as a delta exactly once."""
        marked: Delta = {}
        frontier: Delta = {n: set(v) for n, v in delta_minus.items() if v}
        delta_rules = []
        for rule in rules:
            head_name = head_symbol(rule)
            if head_name not in plan.derived_set:
                continue
            shape = delta_body(rule, self._schema)
            effects = rule_effects(rule, self._schema)
            if shape is None or effects.nonmonotone_reads & changed:
                # Mark-everything rules do not depend on the frontier:
                # one conservative pass up front is their fixpoint.
                extent = old.relations[head_name]
                already = marked.setdefault(head_name, set())
                fresh = extent - already
                if fresh:
                    already |= fresh
                    frontier.setdefault(head_name, set()).update(fresh)
            else:
                delta_rules.append((rule, shape))
        use_kernels = old is self.instance
        while any(frontier.values()):
            next_frontier: Delta = {}
            for rule, shape in delta_rules:
                head_name = head_symbol(rule)
                extent = old.relations[head_name]
                already = marked.setdefault(head_name, set())
                for _key, value in self._delta_valuations(
                    rule, shape, frontier, old, use_kernels
                ):
                    if value in extent and value not in already:
                        already.add(value)
                        next_frontier.setdefault(head_name, set()).add(value)
            frontier = next_frontier
        return marked

    # -- support (re)building ------------------------------------------------------------

    def _build_supports(self, symbols: Optional[Iterable[str]]) -> None:
        """(Re)count the derivations of the given counting symbols (all of
        them when ``symbols`` is None) against the live instance."""
        targets = (
            set(symbols) if symbols is not None else set(self._counting_anywhere)
        )
        budget = self._evaluator.limits.enumeration_budget
        indexed = self._evaluator.indexed
        for symbol in sorted(targets):
            counts: Dict[OValue, int] = {}
            for rule in self._writers.get(symbol, ()):
                seen: Set[object] = set()
                for theta in solve_body(
                    rule.body,
                    self.instance,
                    enumeration_budget=budget,
                    stats=self.stats,
                    plan_cache=rule.plan_cache,
                    use_indexes=indexed,
                    costed=self._evaluator.cost_planning,
                    feedback=rule.feedback_cache
                    if self._evaluator.cost_planning
                    else None,
                ):
                    key = frozenset(theta.items())
                    if key in seen:
                        continue
                    seen.add(key)
                    value = eval_term(rule.head.element, theta, self.instance)
                    if value is not None:
                        counts[value] = counts.get(value, 0) + 1
            self.supports.set_counts(symbol, counts)
            self._support_exact[symbol] = (
                set(counts) == self.instance.relations[symbol]
                if self._schema.is_relation(symbol)
                else False
            )
