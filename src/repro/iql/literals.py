"""IQL literals and facts (Section 3.1).

For terms t1, t2:

* ``t1(t2)`` and ``t1 = t2`` are positive literals,
* ``¬t1(t2)`` and ``t1 ≠ t2`` are negative literals.

A *fact* is a typed positive literal of the restricted forms allowed in
rule heads: ``R(t)``, ``P(t)``, ``x̂(t)`` for set-valued x̂, and ``x̂ = t``
for non-set-valued x̂.

IQL+ (Section 4.4) adds the ``choose`` body literal; IQL* (Section 4.5)
allows negative facts in heads, interpreted as deletions.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from repro.diagnostics import Span
from repro.errors import TypeCheckError
from repro.iql.terms import Deref, NameTerm, Term, Var, as_term
from repro.schema.schema import Schema
from repro.typesys.expressions import SetOf


class Literal:
    """Base class for body/head literals.

    ``span`` is the literal's source region when parsed from text (``None``
    for programmatic construction); like term spans it is provenance only,
    excluded from equality and hashing.
    """

    __slots__ = ("positive", "span")

    def variables(self) -> FrozenSet[Var]:
        raise NotImplementedError

    @property
    def negated(self) -> bool:
        return not self.positive


class Membership(Literal):
    """``t1(t2)`` (or ``¬t1(t2)``): the value of t2 belongs to the set t1."""

    __slots__ = ("container", "element")

    def __init__(
        self, container: Term, element, positive: bool = True, span: Optional[Span] = None
    ):
        if not isinstance(container, Term):
            raise TypeCheckError(f"container is not a term: {container!r}")
        self.container = container
        self.element = as_term(element)
        self.positive = positive
        self.span = span

    def variables(self) -> FrozenSet[Var]:
        return self.container.variables() | self.element.variables()

    def negate(self) -> "Membership":
        return Membership(self.container, self.element, not self.positive, span=self.span)

    def __repr__(self):
        bang = "" if self.positive else "¬"
        return f"{bang}{self.container!r}({self.element!r})"

    def __hash__(self):
        return hash((Membership, self.container, self.element, self.positive))

    def __eq__(self, other):
        return (
            isinstance(other, Membership)
            and self.container == other.container
            and self.element == other.element
            and self.positive == other.positive
        )


class Equality(Literal):
    """``t1 = t2`` (or ``t1 ≠ t2``)."""

    __slots__ = ("left", "right")

    def __init__(self, left, right, positive: bool = True, span: Optional[Span] = None):
        self.left = as_term(left)
        self.right = as_term(right)
        self.positive = positive
        self.span = span

    def variables(self) -> FrozenSet[Var]:
        return self.left.variables() | self.right.variables()

    def negate(self) -> "Equality":
        return Equality(self.left, self.right, not self.positive, span=self.span)

    def __repr__(self):
        op = "=" if self.positive else "≠"
        return f"{self.left!r} {op} {self.right!r}"

    def __hash__(self):
        return hash((Equality, self.left, self.right, self.positive))

    def __eq__(self, other):
        return (
            isinstance(other, Equality)
            and self.left == other.left
            and self.right == other.right
            and self.positive == other.positive
        )


class Choose(Literal):
    """The ``choose`` body literal of IQL+ (Section 4.4).

    Its presence switches the interpretation of head-only variables: instead
    of inventing fresh oids, they are bound to an *existing* oid of the
    right class — provided the choice cannot violate genericity (all
    candidates lie in one automorphism orbit).
    """

    __slots__ = ()

    def __init__(self, span: Optional[Span] = None):
        self.positive = True
        self.span = span

    def variables(self) -> FrozenSet[Var]:
        return frozenset()

    def __repr__(self):
        return "choose"

    def __hash__(self):
        return hash(Choose)

    def __eq__(self, other):
        return isinstance(other, Choose)


# -- fact classification (what may appear in heads) ---------------------------


def is_fact_shape(literal: Literal, schema: Schema) -> bool:
    """Syntactic check: does this positive literal have one of the four
    head shapes R(t) / P(t) / x̂(t) / x̂ = t?

    Full typing of heads is the type checker's job; this only recognizes
    the shape.
    """
    if not literal.positive:
        return False
    if isinstance(literal, Membership):
        if isinstance(literal.container, NameTerm):
            return schema.is_relation(literal.container.name) or schema.is_class(
                literal.container.name
            )
        if isinstance(literal.container, Deref):
            return isinstance(literal.container.type_in(schema), SetOf)
        return False
    if isinstance(literal, Equality):
        if isinstance(literal.left, Deref):
            return not isinstance(literal.left.type_in(schema), SetOf)
        return False
    return False
