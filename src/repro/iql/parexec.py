"""Certified parallel execution: the runtime behind ``Evaluator(parallel=N)``.

This module is the *load-bearing* half of the IQL8xx analysis
(:mod:`repro.analysis.parallel`): the evaluator executes exactly the
concurrency the :class:`~repro.analysis.parallel.ParallelCertificate`
certifies and nothing more. Two mechanisms live here:

* **stat merging** for concurrent strata — each worker task evaluates
  its stratum against the shared instance (disjoint write symbols by the
  certificate) with a private :class:`EvaluationStats`, folded into the
  run's stats at the batch barrier. Counters are additive; nothing in a
  worker reads another worker's stats,
* **partitioned delta rounds** for a single certified-partitionable
  stratum — the semi-naive round loop of
  :func:`repro.iql.seminaive.run_stage_seminaive`, with each round's
  delta split round-robin across workers. Every worker drives its own
  **kernel replica set** compiled through
  :func:`repro.iql.compile.compile_seminaive` directly (bypassing the
  shared per-rule kernel cache): a compiled body's ``sink_cell`` is a
  per-execution mutable slot, so one kernel must never be driven by two
  threads — this is precisely the surface the certificate's IQL803
  audit pins down. Workers only *read* the instance (extents are frozen
  within a round; the blocking check ``value not in existing`` is
  round-stable, which is what makes the split sound — certificate
  condition (b)); derivations land in worker-local buckets merged at the
  round barrier, and the coordinator alone applies them, so inflationary
  semantics makes the merge order-insensitive.

Rounds below :data:`PARTITION_THRESHOLD` facts run inline on the
coordinator — task overhead would dominate. The adaptive replanner's
mid-fixpoint drift check is disabled in partitioned rounds (replicas are
compiled once per stratum); the round-0 full solve also runs on the
coordinator, so partitioning pays off exactly where recursion does: in
the delta rounds.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.effects import DeltaBody, delta_body
from repro.iql.compile import CompileFallback, SeminaiveKernels, compile_seminaive
from repro.iql.rules import Rule
from repro.schema.instance import Instance
from repro.values.ovalues import OValue

#: Minimum facts in a round's delta before splitting beats task overhead.
PARTITION_THRESHOLD = 64


def merge_stats(target, source) -> None:
    """Fold a worker task's private stats into the run's stats.

    Every numeric counter is additive and no worker reads another's
    stats, so a post-barrier fold is exact for everything except wall
    times (which become summed task times — documented). Dict counters
    merge per key; list fields extend (worker tasks never append to the
    per-stage lists, so this is a no-op in practice).
    """
    for field in fields(source):
        value = getattr(source, field.name)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            setattr(target, field.name, getattr(target, field.name) + value)
        elif isinstance(value, dict):
            bucket = getattr(target, field.name)
            for key, count in value.items():
                bucket[key] = bucket.get(key, 0) + count
        elif isinstance(value, list):
            getattr(target, field.name).extend(value)


def compile_replicas(
    rules: Sequence[Rule],
    shapes: Dict[int, DeltaBody],
    instance: Instance,
    workers: int,
    use_indexes: bool,
    enumeration_budget: int,
    costed: bool,
) -> Optional[List[Dict[int, SeminaiveKernels]]]:
    """One full kernel set per worker, or None if any rule won't compile.

    Compiled on the coordinator *before* any concurrency (the per-rule
    plan caches are not thread-safe), through
    :func:`~repro.iql.compile.compile_seminaive` directly so each worker
    owns its kernels' ``sink_cell`` slots outright.
    """
    replicas: List[Dict[int, SeminaiveKernels]] = []
    try:
        for _ in range(workers):
            kernels = {
                index: compile_seminaive(
                    rule,
                    shapes[index],
                    instance,
                    use_indexes=use_indexes,
                    enumeration_budget=enumeration_budget,
                    costed=costed,
                )
                for index, rule in enumerate(rules)
            }
            replicas.append(kernels)
    except CompileFallback:
        return None
    return replicas


def run_stage_seminaive_partitioned(
    instance: Instance,
    rules: Sequence[Rule],
    stats,
    enumeration_budget: int,
    pool,
    workers: int,
    max_steps: int = 10_000,
    use_indexes: bool = True,
    costed: bool = False,
) -> Optional[int]:
    """Evaluate one certified-partitionable stratum with split delta rounds.

    Returns the number of rounds, or None when a rule falls outside the
    compiled fragment — the caller then runs the ordinary serial path
    (never wrong answers, just no speedup). Semantics are identical to
    :func:`repro.iql.seminaive.run_stage_seminaive`: the derived fact
    set of each round is the union over partitions of the same
    derivations the serial round enumerates, deduplicated at the merge.
    """
    schema = instance.schema
    shapes: Dict[int, DeltaBody] = {}
    for index, rule in enumerate(rules):
        shape = delta_body(rule, schema)
        if shape is None:
            return None
        shapes[index] = shape
    replicas = compile_replicas(
        rules, shapes, instance, workers, use_indexes, enumeration_budget, costed
    )
    if replicas is None:
        return None
    if use_indexes:
        # Prewarm: the lazy index build must not race across workers.
        instance.indexes  # noqa: B018

    def drive(worker: int, stride: int, delta_lists: Dict[str, list]) -> Tuple[Dict[str, Set[OValue]], int]:
        """One worker's share of a delta round: positions matched against
        every ``stride``-th delta fact starting at ``worker``, derived
        values staged in worker-local buckets."""
        kernels = replicas[worker]
        local: Dict[str, Set[OValue]] = {}
        considered = [0]
        for index, rule in enumerate(rules):
            head_name = rule.head.container.name
            existing = instance.relations[head_name]
            bucket = local.setdefault(head_name, set())
            compiled = kernels[index]
            body = list(rule.body)
            for position in shapes[index].relation_positions:
                source = delta_lists.get(body[position].container.name)
                if not source:
                    continue
                chunk = source[worker::stride] if stride > 1 else source
                if not chunk:
                    continue
                matcher, rest_body, head_eval = compiled.per_position[position]

                def consume(slots, _he=head_eval, _b=bucket, _ex=existing, _c=considered):
                    value = _he(slots)
                    if value is not None and value not in _ex:
                        _b.add(value)
                        _c[0] += 1

                slots = rest_body.new_slots()
                rest_body.sink_cell[0] = consume
                entry = rest_body.entry
                for fact in chunk:
                    if matcher(fact, slots):
                        entry(slots)
        return local, considered[0]

    rounds = 0
    first = True
    delta: Dict[str, Set[OValue]] = {}
    while True:
        if stats.steps >= max_steps:
            from repro.errors import NonTerminationError  # noqa: PLC0415

            raise NonTerminationError(
                f"no fixpoint within {max_steps} steps (partitioned stage)"
            )
        new: Dict[str, Set[OValue]] = {}
        if first:
            # Round 0 is a full solve over the existing extents — one
            # coordinator pass through replica 0's full kernels.
            kernels0 = replicas[0]
            for index, rule in enumerate(rules):
                head_name = rule.head.container.name
                existing = instance.relations[head_name]
                bucket = new.setdefault(head_name, set())
                compiled = kernels0[index]
                head_eval = compiled.head_full

                def consume(slots, _he=head_eval, _b=bucket, _ex=existing):
                    value = _he(slots)
                    if value is not None and value not in _ex:
                        _b.add(value)
                        stats.valuations_considered += 1

                compiled.full.execute((), consume)
            first = False
        else:
            delta_lists = {name: list(values) for name, values in delta.items()}
            total = sum(len(values) for values in delta_lists.values())
            if workers > 1 and total >= PARTITION_THRESHOLD:
                futures = [
                    pool.submit(drive, worker, workers, delta_lists)
                    for worker in range(workers)
                ]
                stats.parallel_tasks += workers
                for future in futures:
                    local, considered = future.result()
                    stats.valuations_considered += considered
                    for name, values in local.items():
                        if values:
                            new.setdefault(name, set()).update(values)
            else:
                local, considered = drive(0, 1, delta_lists)
                stats.valuations_considered += considered
                new.update(local)

        rounds += 1
        stats.steps += 1
        if not any(new.values()):
            return rounds
        for name, values in new.items():
            for value in values:
                if instance.add_relation_member(name, value):
                    stats.facts_added += 1
        delta = new
