"""Certified parallel execution: the runtime behind ``Evaluator(parallel=N)``.

This module is the *load-bearing* half of the IQL8xx analysis
(:mod:`repro.analysis.parallel`): the evaluator executes exactly the
concurrency the :class:`~repro.analysis.parallel.ParallelCertificate`
certifies and nothing more, through one of two drivers behind a common
interface (:func:`create_driver`):

* :class:`ThreadDriver` — the PR-9 thread pool. Workers share the
  coordinator's instance: concurrent strata write disjoint symbols
  (certificate condition), partitioned delta rounds read frozen extents
  and stage derivations in thread-local buckets merged at the round
  barrier. Cheap to start, but the GIL serializes rule firings; it wins
  exactly where rounds release the GIL or coordination dominates.
* :class:`ProcessDriver` — shared-nothing ``multiprocessing`` workers
  (fork where available, spawn-safe otherwise), one persistent pool per
  :class:`~repro.iql.evaluator.Evaluator`. The program crosses once at
  pool creation; each episode ships the instance state, and within an
  episode only fact deltas cross, in the compact node-table wire
  encoding of :mod:`repro.io`. Every worker runs its own process-local
  hash-consing store, compiles its own kernel replicas against its own
  instance replica, and the coordinator merges returned facts by
  **re-canonicalizing** them into its own store — `Oid`/`OTuple`/`OSet`
  unpickle through interned construction (their ``__reduce__``), so a
  fact coming back from a worker IS the coordinator's canonical node and
  oid identity survives the round trip. This is sound precisely because
  certified-parallel strata are hazard-free: workers never invent oids,
  never weak-assign, never delete — they only derive memberships over
  identities the coordinator already owns.

Two mechanisms are common to both drivers:

* **stat merging** for concurrent strata — each worker task evaluates
  its stratum with a private :class:`EvaluationStats`, folded into the
  run's stats at the batch barrier. Counters are additive; nothing in a
  worker reads another worker's stats,
* **partitioned delta rounds** for a single certified-partitionable
  stratum — the semi-naive round loop of
  :func:`repro.iql.seminaive.run_stage_seminaive`, with each round's
  delta split round-robin across workers. Every worker drives its own
  **kernel replica set** compiled through
  :func:`repro.iql.compile.compile_seminaive` directly (bypassing the
  shared per-rule kernel cache): a compiled body's ``sink_cell`` is a
  per-execution mutable slot, so one kernel must never be driven by two
  executors — this is precisely the surface the certificate's IQL803
  audit pins down. The blocking check ``value not in existing`` is
  round-stable (extents are frozen within a round — certificate
  condition (b)), derivations land in worker-local buckets, and the
  coordinator alone applies the merge, so inflationary semantics makes
  the merge order-insensitive.

Rounds below the driver's partition threshold run inline on the
coordinator — task (or serialization) overhead would dominate; the
process driver defers the corresponding delta sync until the next driven
round so small rounds cost no round trips at all. The adaptive
replanner's mid-fixpoint drift check is disabled in partitioned rounds
(replicas are compiled once per stratum); the round-0 full solve also
runs on the coordinator, so partitioning pays off exactly where
recursion does: in the delta rounds.
"""

from __future__ import annotations

import os
import pickle
import weakref
from dataclasses import fields
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.effects import DeltaBody, delta_body, is_plane
from repro.errors import EvaluationError
from repro.iql.compile import CompileFallback, SeminaiveKernels, compile_seminaive
from repro.iql.rules import Rule
from repro.schema.instance import Instance
from repro.values.ovalues import Oid, OSet, OValue

#: Minimum facts in a round's delta before splitting beats task overhead
#: (thread driver: the task is a pool submit).
PARTITION_THRESHOLD = 64

#: The process driver's threshold: a split round costs a serialization
#: and an IPC round trip per worker, so it must be much fatter than the
#: thread threshold to pay off; thinner rounds run inline on the
#: coordinator and only their deltas are buffered for the workers.
PROCESS_PARTITION_THRESHOLD = 256


def worker_count(requested: Any) -> int:
    """Resolve a worker-count request to a concrete positive int.

    ``"auto"`` (or any falsy value) resolves to the host's usable CPUs —
    the scheduling affinity mask where the platform has one, so a
    container pinned to 2 of 64 cores gets 2. The IQL804 width clamp is
    applied by the caller (the certificate is not known here).
    """
    if isinstance(requested, str):
        if requested != "auto":
            raise EvaluationError(f"unknown parallel setting {requested!r}")
        try:
            return len(os.sched_getaffinity(0)) or 1
        except AttributeError:  # pragma: no cover - non-Linux hosts
            return os.cpu_count() or 1
    return int(requested)


def merge_stats(target, source) -> None:
    """Fold a worker task's private stats into the run's stats.

    Every numeric counter is additive and no worker reads another's
    stats, so a post-barrier fold is exact for everything except wall
    times (which become summed task times — documented). Dict counters
    merge per key; list fields extend (worker tasks never append to the
    per-stage lists, so this is a no-op in practice).
    """
    for field in fields(source):
        value = getattr(source, field.name)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            setattr(target, field.name, getattr(target, field.name) + value)
        elif isinstance(value, dict):
            bucket = getattr(target, field.name)
            for key, count in value.items():
                bucket[key] = bucket.get(key, 0) + count
        elif isinstance(value, list):
            getattr(target, field.name).extend(value)


def compile_replicas(
    rules: Sequence[Rule],
    shapes: Dict[int, DeltaBody],
    instance: Instance,
    workers: int,
    use_indexes: bool,
    enumeration_budget: int,
    costed: bool,
) -> Optional[List[Dict[int, SeminaiveKernels]]]:
    """One full kernel set per worker, or None if any rule won't compile.

    Compiled on the coordinator *before* any concurrency (the per-rule
    plan caches are not thread-safe), through
    :func:`~repro.iql.compile.compile_seminaive` directly so each worker
    owns its kernels' ``sink_cell`` slots outright.
    """
    replicas: List[Dict[int, SeminaiveKernels]] = []
    try:
        for _ in range(workers):
            kernels = {
                index: compile_seminaive(
                    rule,
                    shapes[index],
                    instance,
                    use_indexes=use_indexes,
                    enumeration_budget=enumeration_budget,
                    costed=costed,
                )
                for index, rule in enumerate(rules)
            }
            replicas.append(kernels)
    except CompileFallback:
        return None
    return replicas


def drive_share(
    rules: Sequence[Rule],
    shapes: Dict[int, DeltaBody],
    kernels: Dict[int, SeminaiveKernels],
    instance: Instance,
    worker: int,
    stride: int,
    delta_lists: Dict[str, list],
) -> Tuple[Dict[str, Set[OValue]], int]:
    """One worker's share of a delta round, against one kernel replica set.

    Positions are matched against every ``stride``-th delta fact starting
    at ``worker``; derived values land in worker-local buckets. The
    blocking read (``value not in existing``) observes ``instance``'s
    extents, which both drivers keep frozen (thread: barrier discipline)
    or exactly synced (process: applied deltas) within a round.
    """
    local: Dict[str, Set[OValue]] = {}
    considered = [0]
    for index, rule in enumerate(rules):
        head_name = rule.head.container.name
        existing = instance.relations[head_name]
        bucket = local.setdefault(head_name, set())
        compiled = kernels[index]
        body = list(rule.body)
        for position in shapes[index].relation_positions:
            source = delta_lists.get(body[position].container.name)
            if not source:
                continue
            chunk = source[worker::stride] if stride > 1 else source
            if not chunk:
                continue
            matcher, rest_body, head_eval = compiled.per_position[position]

            def consume(slots, _he=head_eval, _b=bucket, _ex=existing, _c=considered):
                value = _he(slots)
                if value is not None and value not in _ex:
                    _b.add(value)
                    _c[0] += 1

            slots = rest_body.new_slots()
            rest_body.sink_cell[0] = consume
            entry = rest_body.entry
            for fact in chunk:
                if matcher(fact, slots):
                    entry(slots)
    return local, considered[0]


def run_stage_seminaive_partitioned(
    instance: Instance,
    rules: Sequence[Rule],
    stats,
    enumeration_budget: int,
    pool,
    workers: int,
    max_steps: int = 10_000,
    use_indexes: bool = True,
    costed: bool = False,
) -> Optional[int]:
    """Evaluate one certified-partitionable stratum with split delta rounds
    on a shared-memory thread pool.

    Returns the number of rounds, or None when a rule falls outside the
    compiled fragment — the caller then runs the ordinary serial path
    (never wrong answers, just no speedup). Semantics are identical to
    :func:`repro.iql.seminaive.run_stage_seminaive`: the derived fact
    set of each round is the union over partitions of the same
    derivations the serial round enumerates, deduplicated at the merge.
    """
    schema = instance.schema
    shapes: Dict[int, DeltaBody] = {}
    for index, rule in enumerate(rules):
        shape = delta_body(rule, schema)
        if shape is None:
            return None
        shapes[index] = shape
    replicas = compile_replicas(
        rules, shapes, instance, workers, use_indexes, enumeration_budget, costed
    )
    if replicas is None:
        return None
    if use_indexes:
        # Prewarm: the lazy index build must not race across workers.
        instance.indexes  # noqa: B018

    def drive(worker: int, stride: int, delta_lists: Dict[str, list]) -> Tuple[Dict[str, Set[OValue]], int]:
        return drive_share(
            rules, shapes, replicas[worker], instance, worker, stride, delta_lists
        )

    rounds = 0
    first = True
    delta: Dict[str, Set[OValue]] = {}
    while True:
        if stats.steps >= max_steps:
            from repro.errors import NonTerminationError  # noqa: PLC0415

            raise NonTerminationError(
                f"no fixpoint within {max_steps} steps (partitioned stage)"
            )
        new: Dict[str, Set[OValue]] = {}
        if first:
            # Round 0 is a full solve over the existing extents — one
            # coordinator pass through replica 0's full kernels.
            kernels0 = replicas[0]
            for index, rule in enumerate(rules):
                head_name = rule.head.container.name
                existing = instance.relations[head_name]
                bucket = new.setdefault(head_name, set())
                compiled = kernels0[index]
                head_eval = compiled.head_full

                def consume(slots, _he=head_eval, _b=bucket, _ex=existing):
                    value = _he(slots)
                    if value is not None and value not in _ex:
                        _b.add(value)
                        stats.valuations_considered += 1

                compiled.full.execute((), consume)
            first = False
        else:
            delta_lists = {name: list(values) for name, values in delta.items()}
            total = sum(len(values) for values in delta_lists.values())
            if workers > 1 and total >= PARTITION_THRESHOLD:
                futures = [
                    pool.submit(drive, worker, workers, delta_lists)
                    for worker in range(workers)
                ]
                stats.parallel_tasks += workers
                for future in futures:
                    local, considered = future.result()
                    stats.valuations_considered += considered
                    for name, values in local.items():
                        if values:
                            new.setdefault(name, set()).update(values)
            else:
                local, considered = drive(0, 1, delta_lists)
                stats.valuations_considered += considered
                new.update(local)

        rounds += 1
        stats.steps += 1
        if not any(new.values()):
            return rounds
        for name, values in new.items():
            for value in values:
                if instance.add_relation_member(name, value):
                    stats.facts_added += 1
        delta = new


# -- the driver interface ------------------------------------------------------------
#
# Both drivers expose the same three-call surface the evaluator's
# parallel stage walker uses:
#
#   run_batch(instance, stage_index, batch, strata, stats) -> steps
#   run_partitioned(instance, stage_index, rules, stats)   -> rounds | None
#   release() / close()
#
# ``release()`` ends one run (the thread driver tears its pool down, the
# process driver keeps its workers warm); ``close()`` ends the driver.


class ThreadDriver:
    """The shared-memory thread pool driver (PR 9), one pool per run."""

    backend = "thread"

    def __init__(self, evaluator, workers: int) -> None:
        from concurrent.futures import ThreadPoolExecutor  # noqa: PLC0415

        self.evaluator = evaluator
        self.workers = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-par"
        )

    def run_batch(
        self,
        instance: Instance,
        stage_index: int,
        batch: Sequence[int],
        strata: Sequence[Sequence[Rule]],
        stats,
    ) -> int:
        evaluator = self.evaluator
        if evaluator.indexed:
            # Prewarm: the lazy index build must not race across workers.
            instance.indexes  # noqa: B018
        # The incremental constants fold (_note_constants) is a
        # read-modify-write; concurrent workers adding facts could
        # tear it and silently drop constants. Certified batches
        # never *read* constants(I) — the enumeration fallback is
        # an IQL802 hazard — so run the batch with the cache cold:
        # _note_constants is then a no-op and the next serial
        # reader rebuilds from scratch.
        instance._forget_constants()
        futures = []
        subs = []
        for stratum_index in batch:
            sub = type(stats)()
            futures.append(
                self._pool.submit(
                    evaluator._solve_stratum_scheduled,
                    instance,
                    list(strata[stratum_index]),
                    sub,
                )
            )
            subs.append(sub)
        stats.parallel_strata += len(batch)
        stats.parallel_tasks += len(batch)
        steps = 0
        for future, sub in zip(futures, subs):
            steps += future.result()
            merge_stats(stats, sub)
        return steps

    def run_partitioned(
        self,
        instance: Instance,
        stage_index: int,
        rules: Sequence[Rule],
        stats,
    ) -> Optional[int]:
        evaluator = self.evaluator
        return run_stage_seminaive_partitioned(
            instance,
            rules,
            stats,
            evaluator.limits.enumeration_budget,
            self._pool,
            self.workers,
            max_steps=evaluator.limits.max_steps,
            use_indexes=evaluator.indexed,
            costed=evaluator.cost_planning,
        )

    def release(self) -> None:
        self._pool.shutdown(wait=True)

    def close(self) -> None:
        pass


# -- the process driver ---------------------------------------------------------------


def _batch_facts_to_wire(
    relation_adds: Dict[str, List[OValue]],
    class_adds: Dict[str, List[Oid]],
    element_adds: List[OValue],
):
    """Flatten a stratum diff into one :func:`repro.io.batch_to_wire` call.

    Keys are namespaced (``R:``/``C:`` plus the flat ``E:`` pair list for
    set-element additions) so one node table serves the whole diff.
    """
    from repro import io  # noqa: PLC0415

    facts: Dict[str, List[OValue]] = {}
    for name, values in relation_adds.items():
        facts["R:" + name] = values
    for name, oids in class_adds.items():
        facts["C:" + name] = list(oids)
    if element_adds:
        facts["E:"] = element_adds
    return io.batch_to_wire(facts)


def _apply_wire_diff(instance: Instance, wire) -> int:
    """Apply a worker's stratum diff to the coordinator's instance.

    Decoding re-canonicalizes every fact into this process's intern
    store and resolves oids through the serial registry, so the values
    applied here are the coordinator's own nodes.
    """
    from repro import io  # noqa: PLC0415

    applied = 0
    decoded = io.batch_from_wire(wire)
    elements = decoded.pop("E:", [])
    for key, values in decoded.items():
        kind, name = key[:2], key[2:]
        if kind == "R:":
            for value in values:
                if instance.add_relation_member(name, value):
                    applied += 1
        else:  # "C:"
            for oid in values:
                if instance.add_class_member(name, oid):
                    applied += 1
    for position in range(0, len(elements), 2):
        if instance.add_set_element(elements[position], elements[position + 1]):
            applied += 1
    return applied


def _solve_stratum_with_diff(evaluator, instance: Instance, rules: List[Rule], stats):
    """Run one stratum fixpoint and capture what it added, as a wire diff.

    The snapshot covers exactly the stratum's written symbols (the
    certificate guarantees hazard-freedom, so additions are the only
    possible mutations: relation members, class members of existing
    oids, set elements of existing oids).
    """
    from repro.analysis.effects import rule_effects  # noqa: PLC0415

    schema = instance.schema
    writes: Set[str] = set()
    for rule in rules:
        writes |= rule_effects(rule, schema).writes
    written_relations = [w for w in writes if schema.is_relation(w)]
    written_classes = [w for w in writes if not schema.is_relation(w) and not is_plane(w)]
    written_planes = [w for w in writes if is_plane(w)]
    before_relations = {n: set(instance.relations[n]) for n in written_relations}
    before_classes = {n: set(instance.classes[n]) for n in written_classes}
    before_nu = dict(instance.nu) if written_planes else None

    steps = evaluator._solve_stratum_scheduled(instance, rules, stats)

    relation_adds = {
        n: sorted(instance.relations[n] - before_relations[n], key=_stable_key)
        for n in written_relations
        if instance.relations[n] - before_relations[n]
    }
    class_adds = {
        n: sorted(instance.classes[n] - before_classes[n], key=_stable_key)
        for n in written_classes
        if instance.classes[n] - before_classes[n]
    }
    element_adds: List[OValue] = []
    if before_nu is not None:
        for oid, value in instance.nu.items():
            old = before_nu.get(oid)
            if value is old:
                continue
            if not isinstance(value, OSet):
                raise EvaluationError(
                    "process worker observed a non-set ν mutation in a "
                    "certified-parallel stratum — hazard analysis violated"
                )
            old_elements = old.elements if isinstance(old, OSet) else frozenset()
            for element in sorted(value.elements - old_elements, key=_stable_key):
                element_adds.append(oid)
                element_adds.append(element)
    return _batch_facts_to_wire(relation_adds, class_adds, element_adds), steps


def _stable_key(value: OValue):
    from repro.values.ovalues import sort_key  # noqa: PLC0415

    return sort_key(value)


def _pool_worker_main(conn, worker_id: int, nworkers: int, startup: bytes) -> None:
    """The persistent process worker's command loop (spawn-safe: module
    level, imports inside). One reply per ``solve``/``begin``/``round``;
    ``state`` is fire-and-forget; any exception answers ``("error", tb)``."""
    import gc  # noqa: PLC0415
    import traceback  # noqa: PLC0415

    from repro import io  # noqa: PLC0415
    from repro.values import intern  # noqa: PLC0415

    # Under fork the worker inherits the coordinator's whole heap via
    # copy-on-write. A collection here would traverse (and so dirty) every
    # inherited page for objects this worker will never free; freeze them
    # into the permanent generation so worker GC only ever walks what the
    # worker itself allocates.
    gc.freeze()

    program, options = pickle.loads(startup)
    intern.set_interning(options["interned"])
    from repro.iql.evaluator import Evaluator, EvaluatorLimits  # noqa: PLC0415

    evaluator = Evaluator(
        program,
        limits=EvaluatorLimits(
            max_steps=options["max_steps"],
            enumeration_budget=options["enumeration_budget"],
            max_invented_oids=options["max_invented_oids"],
        ),
        seminaive=options["seminaive"],
        indexed=options["indexed"],
        interned=options["interned"],
        compile=options["compile"],
        cost_planning=options["cost_planning"],
        replan_ratio=options["replan_ratio"],
        schedule=False,
        parallel=0,
    )
    instance: Optional[Instance] = None
    episode: Optional[tuple] = None  # (rules, shapes, kernels)
    while True:
        try:
            message = pickle.loads(conn.recv_bytes())
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "stop":
            return
        try:
            if kind == "state":
                instance = pickle.loads(message[1])
                episode = None
                continue
            if kind == "solve":
                from repro.iql.evaluator import EvaluationStats  # noqa: PLC0415

                _, stage_index, rule_indexes = message
                stage = program.stages[stage_index]
                rules = [stage[i] for i in rule_indexes]
                stats = EvaluationStats()
                wire, steps = _solve_stratum_with_diff(
                    evaluator, instance, rules, stats
                )
                conn.send_bytes(pickle.dumps(("diff", wire, steps, stats)))
            elif kind == "begin":
                _, stage_index, rule_indexes = message
                stage = program.stages[stage_index]
                rules = [stage[i] for i in rule_indexes]
                shapes: Dict[int, DeltaBody] = {}
                for index, rule in enumerate(rules):
                    shape = delta_body(rule, instance.schema)
                    if shape is None:
                        raise CompileFallback("outside the delta fragment")
                    shapes[index] = shape
                replicas = compile_replicas(
                    rules,
                    shapes,
                    instance,
                    1,
                    options["indexed"],
                    options["enumeration_budget"],
                    options["cost_planning"],
                )
                if replicas is None:
                    raise CompileFallback("kernel replica compile failed")
                if options["indexed"]:
                    instance.indexes  # noqa: B018
                episode = (rules, shapes, replicas[0])
                conn.send_bytes(pickle.dumps(("ready",)))
            elif kind == "round":
                _, pending, drive = message
                assert episode is not None and instance is not None
                # Catch up: apply every unshipped coordinator delta, in
                # round order. The last one IS the current round's delta
                # (already decoded into this store's canonical nodes, in
                # wire order — every worker sees the same order, so the
                # [worker::stride] shares partition exactly).
                delta_lists: Dict[str, list] = {}
                for wire in pending:
                    decoded = io.batch_from_wire(wire)
                    for name, values in decoded.items():
                        for value in values:
                            instance.add_relation_member(name, value)
                    delta_lists = decoded
                if drive:
                    rules, shapes, kernels = episode
                    local, considered = drive_share(
                        rules,
                        shapes,
                        kernels,
                        instance,
                        worker_id,
                        nworkers,
                        delta_lists,
                    )
                    wire = io.batch_to_wire(
                        {n: sorted(vs, key=_stable_key) for n, vs in local.items() if vs}
                    )
                    conn.send_bytes(pickle.dumps(("derived", wire, considered)))
                else:
                    conn.send_bytes(pickle.dumps(("synced",)))
            else:
                raise EvaluationError(f"unknown pool command {kind!r}")
        except Exception:
            conn.send_bytes(pickle.dumps(("error", traceback.format_exc())))


def _shutdown_pool(processes, connections) -> None:
    """Best-effort teardown, shared by close() and the GC finalizer."""
    for conn in connections:
        try:
            conn.send_bytes(pickle.dumps(("stop",)))
        except (OSError, ValueError):
            pass
    for process in processes:
        process.join(timeout=2)
        if process.is_alive():  # pragma: no cover - stuck worker
            process.terminate()
    for conn in connections:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


class ProcessDriver:
    """The shared-nothing multiprocessing driver.

    Workers are persistent (one pool per Evaluator, reused across runs):
    the program and evaluator options cross once at pool creation, each
    parallel episode ships the instance state to the workers it engages,
    and per round only fact deltas cross, in the :mod:`repro.io` wire
    encoding. Deltas from rounds too small to split are buffered and
    piggy-backed on the next driven round, so small rounds cost zero
    round trips.
    """

    backend = "process"

    def __init__(self, evaluator, workers: int) -> None:
        import multiprocessing as mp  # noqa: PLC0415

        self.evaluator = evaluator
        self.workers = workers
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        context = mp.get_context(method)
        startup = pickle.dumps(
            (
                evaluator.program,
                {
                    "seminaive": evaluator.seminaive,
                    "indexed": evaluator.indexed,
                    "interned": evaluator.interned,
                    "compile": evaluator.compile,
                    "cost_planning": evaluator.cost_planning,
                    "replan_ratio": evaluator.replan_ratio,
                    "max_steps": evaluator.limits.max_steps,
                    "enumeration_budget": evaluator.limits.enumeration_budget,
                    "max_invented_oids": evaluator.limits.max_invented_oids,
                },
            )
        )
        self._connections = []
        self._processes = []
        for worker_id in range(workers):
            ours, theirs = context.Pipe()
            process = context.Process(
                target=_pool_worker_main,
                args=(theirs, worker_id, workers, startup),
                daemon=True,
                name=f"repro-par-{worker_id}",
            )
            process.start()
            theirs.close()
            self._connections.append(ours)
            self._processes.append(process)
        self._finalizer = weakref.finalize(
            self, _shutdown_pool, self._processes, self._connections
        )

    # -- plumbing ---------------------------------------------------------------

    def _send(self, worker: int, message: tuple) -> None:
        self._connections[worker].send_bytes(pickle.dumps(message))

    def _recv(self, worker: int):
        reply = pickle.loads(self._connections[worker].recv_bytes())
        if reply[0] == "error":
            raise EvaluationError(
                f"process pool worker {worker} failed:\n{reply[1]}"
            )
        return reply

    def _ship_state(self, instance: Instance, workers: Sequence[int]) -> None:
        blob = pickle.dumps(instance)
        for worker in workers:
            self._send(worker, ("state", blob))

    @staticmethod
    def _rule_indexes(stage_rules: Sequence[Rule], rules: Sequence[Rule]) -> Tuple[int, ...]:
        """Positions of ``rules`` within the program stage — positional
        identity is the one rule naming that survives pickling (labels
        can repeat, hashes are salted per process)."""
        by_identity = {id(rule): i for i, rule in enumerate(stage_rules)}
        out: List[int] = []
        for rule in rules:
            index = by_identity.get(id(rule))
            if index is None:  # pragma: no cover - schedule copies rules
                index = next(
                    i
                    for i, candidate in enumerate(stage_rules)
                    if candidate == rule and i not in out
                )
            out.append(index)
        return tuple(out)

    # -- the driver surface -------------------------------------------------------

    def run_batch(
        self,
        instance: Instance,
        stage_index: int,
        batch: Sequence[int],
        strata: Sequence[Sequence[Rule]],
        stats,
    ) -> int:
        stage_rules = self.evaluator.program.stages[stage_index]
        assignments = [
            (k % self.workers, self._rule_indexes(stage_rules, strata[stratum_index]))
            for k, stratum_index in enumerate(batch)
        ]
        engaged = sorted({worker for worker, _ in assignments})
        self._ship_state(instance, engaged)
        for worker, rule_indexes in assignments:
            self._send(worker, ("solve", stage_index, rule_indexes))
        stats.parallel_strata += len(batch)
        stats.parallel_tasks += len(batch)
        steps = 0
        # Collect in per-worker FIFO order (a worker with two strata
        # answers them in submission order).
        for worker, _ in assignments:
            _, wire, worker_steps, sub = self._recv(worker)
            steps += worker_steps
            applied = _apply_wire_diff(instance, wire)
            sub.facts_added = applied  # the coordinator's view is canonical
            merge_stats(stats, sub)
        return steps

    def run_partitioned(
        self,
        instance: Instance,
        stage_index: int,
        rules: Sequence[Rule],
        stats,
    ) -> Optional[int]:
        from repro import io  # noqa: PLC0415
        from repro.errors import NonTerminationError  # noqa: PLC0415

        evaluator = self.evaluator
        schema = instance.schema
        shapes: Dict[int, DeltaBody] = {}
        for index, rule in enumerate(rules):
            shape = delta_body(rule, schema)
            if shape is None:
                return None
            shapes[index] = shape
        replicas = compile_replicas(
            list(rules),
            shapes,
            instance,
            1,
            evaluator.indexed,
            evaluator.limits.enumeration_budget,
            evaluator.cost_planning,
        )
        if replicas is None:
            return None
        kernels0 = replicas[0]
        if evaluator.indexed:
            instance.indexes  # noqa: B018

        rule_indexes = self._rule_indexes(
            evaluator.program.stages[stage_index], rules
        )
        engaged = list(range(self.workers))
        self._ship_state(instance, engaged)
        for worker in engaged:
            self._send(worker, ("begin", stage_index, rule_indexes))
        ready = True
        for worker in engaged:
            try:
                self._recv(worker)
            except EvaluationError:
                ready = False
        if not ready:  # pragma: no cover - deterministic compile succeeded above
            return None

        rounds = 0
        first = True
        delta: Dict[str, Set[OValue]] = {}
        pending: List = []  # applied-but-unshipped round deltas, in order
        while True:
            if stats.steps >= evaluator.limits.max_steps:
                raise NonTerminationError(
                    f"no fixpoint within {evaluator.limits.max_steps} steps "
                    f"(partitioned stage)"
                )
            new: Dict[str, Set[OValue]] = {}
            if first:
                # Round 0: full solve on the coordinator's replica.
                for index, rule in enumerate(rules):
                    head_name = rule.head.container.name
                    existing = instance.relations[head_name]
                    bucket = new.setdefault(head_name, set())
                    compiled = kernels0[index]
                    head_eval = compiled.head_full

                    def consume(slots, _he=head_eval, _b=bucket, _ex=existing):
                        value = _he(slots)
                        if value is not None and value not in _ex:
                            _b.add(value)
                            stats.valuations_considered += 1

                    compiled.full.execute((), consume)
                first = False
            else:
                delta_lists = {
                    name: sorted(values, key=_stable_key)
                    for name, values in delta.items()
                }
                total = sum(len(values) for values in delta_lists.values())
                if total >= PROCESS_PARTITION_THRESHOLD:
                    for worker in engaged:
                        self._send(worker, ("round", pending, True))
                    pending = []
                    stats.parallel_tasks += self.workers
                    for worker in engaged:
                        _, wire, considered = self._recv(worker)
                        stats.valuations_considered += considered
                        for name, values in io.batch_from_wire(wire).items():
                            existing = instance.relations[name]
                            bucket = new.setdefault(name, set())
                            for value in values:
                                if value not in existing:
                                    bucket.add(value)
                else:
                    local, considered = drive_share(
                        rules, shapes, kernels0, instance, 0, 1, delta_lists
                    )
                    stats.valuations_considered += considered
                    new.update(local)

            rounds += 1
            stats.steps += 1
            if not any(new.values()):
                return rounds
            for name, values in new.items():
                for value in values:
                    if instance.add_relation_member(name, value):
                        stats.facts_added += 1
            delta = new
            pending.append(
                io.batch_to_wire(
                    {
                        name: sorted(values, key=_stable_key)
                        for name, values in delta.items()
                        if values
                    }
                )
            )

    def release(self) -> None:
        """A run ended; the pool stays warm for the next one."""

    def close(self) -> None:
        self._finalizer()


def create_driver(backend: str, evaluator, workers: int):
    """The one backend dispatch point (``Evaluator(backend=...)``)."""
    if backend == "thread":
        return ThreadDriver(evaluator, workers)
    if backend == "process":
        return ProcessDriver(evaluator, workers)
    raise EvaluationError(f"unknown parallel backend {backend!r}")
