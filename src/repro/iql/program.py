"""IQL programs G(S, Sin, Sout) (Section 3).

A program is a finite set of rules over a schema S, together with two
projections of S: the input schema Sin and the output schema Sout. Its
semantics is a binary relation between instances(Sin) and instances(Sout):
the input is loaded into S, the rules run to their inflationary fixpoint,
and the result is projected on Sout.

Sequential composition "``;``" is definable inside IQL (Section 3.4, via
negation and inflationary semantics); following the paper's own usage we
treat it as a meta-construct: a program is a sequence of *stages*, each a
set of rules run to fixpoint before the next stage starts.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import TypeCheckError
from repro.iql.rules import Rule
from repro.schema.schema import Schema


class Program:
    """An IQL program: stages of rules over ``schema``, with input/output
    projections named by ``input_names`` / ``output_names``."""

    __slots__ = ("schema", "stages", "input_names", "output_names")

    def __init__(
        self,
        schema: Schema,
        rules: Optional[Iterable[Rule]] = None,
        stages: Optional[Sequence[Iterable[Rule]]] = None,
        input_names: Iterable[str] = (),
        output_names: Iterable[str] = (),
    ):
        if (rules is None) == (stages is None):
            raise TypeCheckError("provide exactly one of rules= (single stage) or stages=")
        if rules is not None:
            rule_list = tuple(rules)
            # No rules means no stages: the identity program (legal to
            # build programmatically; the surface syntax still rejects an
            # empty rules block). A present stage must be non-empty — an
            # empty stage in a sequence is always a construction bug.
            stage_list: List[Tuple[Rule, ...]] = [rule_list] if rule_list else []
        else:
            stage_list = [tuple(stage) for stage in stages]
        if any(len(stage) == 0 for stage in stage_list):
            raise TypeCheckError("every stage must contain at least one rule")
        self.schema = schema
        self.stages: Tuple[Tuple[Rule, ...], ...] = tuple(stage_list)
        self.input_names = tuple(input_names)
        self.output_names = tuple(output_names)
        unknown = (set(self.input_names) | set(self.output_names)) - schema.names
        if unknown:
            raise TypeCheckError(f"input/output names not in the schema: {sorted(unknown)}")

    # -- projections --------------------------------------------------------------

    @property
    def input_schema(self) -> Schema:
        return self.schema.project(self.input_names)

    @property
    def output_schema(self) -> Schema:
        return self.schema.project(self.output_names)

    def has_disjoint_io(self) -> bool:
        """True iff Sin and Sout share no names (the dio setting of §4.2)."""
        return not set(self.input_names) & set(self.output_names)

    # -- structure ------------------------------------------------------------------

    @property
    def rules(self) -> Tuple[Rule, ...]:
        """All rules, across stages."""
        return tuple(rule for stage in self.stages for rule in stage)

    def then(self, other: "Program") -> "Program":
        """Sequential composition G1;G2 (schemas merged)."""
        schema = self.schema.merge(other.schema)
        return Program(
            schema,
            stages=list(self.stages) + list(other.stages),
            input_names=self.input_names,
            output_names=other.output_names or self.output_names,
        )

    def uses_choose(self) -> bool:
        return any(rule.has_choose() for rule in self.rules)

    def uses_deletion(self) -> bool:
        return any(rule.delete for rule in self.rules)

    def is_plain_iql(self) -> bool:
        """True iff neither IQL+ (choose) nor IQL* (deletion) features occur."""
        return not self.uses_choose() and not self.uses_deletion()

    def __repr__(self):
        parts = []
        for i, stage in enumerate(self.stages):
            if len(self.stages) > 1:
                parts.append(f"-- stage {i + 1} --")
            parts.extend(repr(rule) for rule in stage)
        return "\n".join(parts)
