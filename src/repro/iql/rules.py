"""IQL rules (Section 3.1) and deletion rules (Section 4.5).

A rule is ``L ← L1, ..., Lk`` (k ≥ 0) where L is a *fact* (head) and the
Li are body literals, subject to:

1. the head is typed,
2. each body literal is typed, or is an equality typed modulo union
   coercion,
3. each variable in the head but not the body has class type — these are
   the *invention* variables.

IQL* additionally allows negative facts as heads (deletions). The static
conditions are enforced by :mod:`repro.iql.typecheck`; this module carries
the syntax and the derived syntactic notions the semantics and the
sublanguage tests need (head-only variables, presence of ``choose``, ...).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple

from repro.caches import BoundedDict
from repro.diagnostics import Span
from repro.errors import TypeCheckError
from repro.iql.literals import Choose, Equality, Literal, Membership
from repro.iql.terms import Deref, NameTerm, Var
from repro.typesys.expressions import ClassRef

#: Bound on the per-rule body-plan memo: one entry per (sub-body,
#: bound-set, indexes on/off) shape; the semi-naive rewriting produces at
#: most a few per rule, so evictions mean pathological reuse, not normal
#: operation.
PLAN_CACHE_SIZE = 128

#: Bound on the per-rule compiled-kernel cache (repro.iql.compile): at
#: most a handful of shapes per rule ("rule"/"sn" × indexes on/off).
KERNEL_CACHE_SIZE = 16


class Rule:
    """A single IQL rule ``head ← body``.

    ``delete=True`` marks an IQL* deletion rule: the head is interpreted as
    removing the matching ground fact rather than adding it (Section 4.5).
    ``label`` is an optional name used in diagnostics and in the v-terms of
    the Theorem 4.3.1 experiment.
    """

    __slots__ = (
        "head",
        "body",
        "delete",
        "label",
        "span",
        "_plan_cache",
        "_kernel_cache",
        "_feedback_cache",
    )

    def __init__(
        self,
        head: Literal,
        body: Iterable[Literal] = (),
        delete: bool = False,
        label: Optional[str] = None,
        span: Optional[Span] = None,
    ):
        if not isinstance(head, (Membership, Equality)):
            raise TypeCheckError(f"head must be a membership or equality literal: {head!r}")
        if not head.positive:
            raise TypeCheckError(
                "negative heads are written with delete=True, not with a negated literal"
            )
        body_tuple: Tuple[Literal, ...] = tuple(body)
        for lit in body_tuple:
            if not isinstance(lit, Literal):
                raise TypeCheckError(f"body element is not a literal: {lit!r}")
        self.head = head
        self.body = body_tuple
        self.delete = delete
        self.label = label
        self.span = span if span is not None else head.span
        self._plan_cache = None
        self._kernel_cache = None
        self._feedback_cache = None

    @property
    def plan_cache(self) -> dict:
        """The body planner's memo (repro.iql.valuation.solve_body).

        Keyed by (literal tuple, bound-variable set, use_indexes); the
        semi-naive delta rewriting solves many sub-bodies of the same rule,
        so the cache lives here rather than per call. Bounded (FIFO, see
        :mod:`repro.caches`) so long-lived rules cannot accumulate plans
        without limit. Excluded from equality and hashing — it is an
        evaluation artifact, not syntax.
        """
        if self._plan_cache is None:
            self._plan_cache = BoundedDict(PLAN_CACHE_SIZE)
        return self._plan_cache

    @property
    def kernel_cache(self) -> dict:
        """The rule compiler's kernel memo (repro.iql.compile).

        Keyed by (shape, use_indexes); entries are revalidated against the
        current instance on every fetch (compiled kernels capture one
        instance's sets and index dicts), so a stale entry costs one
        recompile, never a wrong answer. Bounded like :attr:`plan_cache`
        and likewise excluded from equality and hashing.
        """
        if self._kernel_cache is None:
            self._kernel_cache = BoundedDict(KERNEL_CACHE_SIZE)
        return self._kernel_cache

    @property
    def feedback_cache(self) -> dict:
        """Observed fan-outs from the drift detector (repro.iql.stats).

        Keyed like :attr:`plan_cache`; each entry carries the measured
        per-step fan-outs of an evicted plan plus its replan count, so the
        next planning of the same (body, bound-set) costs those steps with
        reality instead of the model. Bounded like the other caches and
        likewise excluded from equality and hashing.
        """
        if self._feedback_cache is None:
            self._feedback_cache = BoundedDict(PLAN_CACHE_SIZE)
        return self._feedback_cache

    def display_label(self) -> str:
        """The rule's label, or a rendering of it, for diagnostics."""
        return self.label if self.label else repr(self)

    # -- pickling ----------------------------------------------------------------

    def __getstate__(self):
        """Pickle the syntax only — never the evaluation caches.

        Plans and compiled kernels capture one process's instance sets
        and index buckets; a process worker receiving this rule compiles
        its own against its local replica (and its caches then warm up
        independently, which is the point of a persistent worker pool).
        """
        return (self.head, self.body, self.delete, self.label, self.span)

    def __setstate__(self, state) -> None:
        self.head, self.body, self.delete, self.label, self.span = state
        self._plan_cache = None
        self._kernel_cache = None
        self._feedback_cache = None

    # -- variable classification ------------------------------------------------

    def head_variables(self) -> FrozenSet[Var]:
        return self.head.variables()

    def body_variables(self) -> FrozenSet[Var]:
        out: FrozenSet[Var] = frozenset()
        for lit in self.body:
            out |= lit.variables()
        return out

    def variables(self) -> FrozenSet[Var]:
        return self.head_variables() | self.body_variables()

    def invention_variables(self) -> FrozenSet[Var]:
        """Variables in the head and not the body — the oid inventors.

        (Under ``choose`` these are *selection* variables instead; the
        evaluator distinguishes the two by :meth:`has_choose`.)
        """
        return self.head_variables() - self.body_variables()

    def has_choose(self) -> bool:
        return any(isinstance(lit, Choose) for lit in self.body)

    def is_invention_free(self) -> bool:
        """No variable occurs in the head and not the body (Section 5)."""
        return not self.invention_variables()

    # -- structural accessors ----------------------------------------------------

    def head_name(self) -> Optional[str]:
        """The relation/class name of the head when it is R(t) or P(t)."""
        if isinstance(self.head, Membership) and isinstance(self.head.container, NameTerm):
            return self.head.container.name
        return None

    def head_deref(self) -> Optional[Deref]:
        """The x̂ of the head when it is x̂(t) or x̂ = t."""
        if isinstance(self.head, Membership) and isinstance(self.head.container, Deref):
            return self.head.container
        if isinstance(self.head, Equality) and isinstance(self.head.left, Deref):
            return self.head.left
        return None

    def check_invention_variable_types(self) -> None:
        """Condition (3) of the rule syntax: head-only vars have class type."""
        for var in self.invention_variables():
            if not isinstance(var.type, ClassRef):
                raise TypeCheckError(
                    f"variable {var.name!r} occurs only in the head of {self!r} "
                    f"but has non-class type {var.type!r}"
                )

    def __repr__(self):
        arrow = "⊣" if self.delete else "←"
        if not self.body:
            return f"{self.head!r} {arrow}"
        return f"{self.head!r} {arrow} " + ", ".join(repr(lit) for lit in self.body)

    def __hash__(self):
        return hash((Rule, self.head, self.body, self.delete))

    def __eq__(self, other):
        return (
            isinstance(other, Rule)
            and self.head == other.head
            and self.body == other.body
            and self.delete == other.delete
        )
