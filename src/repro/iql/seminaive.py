"""Semi-naive evaluation for eligible IQL stages.

The paper notes (§5, §8) that IQL "is a good candidate for conventional
database optimizations"; this module supplies the classical one. A stage
qualifies when its only *instance-dependent generators* are positive
memberships over relation names:

* every rule is plain (no delete, no choose), invention-free,
* every head is a relation membership ``R(t)`` whose element mentions no
  relation/class name term,
* positive membership literals have name containers (relations are the
  delta-driven generators; class extents are constant within such a stage,
  so class memberships act as constant generators),
* negative literals and equalities are admitted as long as (a) they
  mention no name terms — a name term's value is the *growing* extension —
  and (b) every rule variable is reachable from the generators, possibly
  through positive-equality binders (``y = x̂`` and tuple/set construction
  read only ν, which such a stage never mutates).

Soundness of the delta rewriting under these conditions: within the stage
only ρ grows — π and ν are untouched (relation heads only, invention-free)
— so negative literals can only become *falser* round over round and
equalities never change truth value. A derivation new in round k+1 must
therefore use at least one fact first derived in round k in a positive
relation membership, which is exactly what the rewriting enumerates. The
equivalence is tested against the naive evaluator (the specification) on
randomized inputs; benchmark E11 measures the speedup.

Derefence containers, class or deref heads, invention, set-variable
enumeration — anything beyond this fragment — falls back to the naive
loop. Delta joins run through the hash indexes and the selectivity planner
of :mod:`repro.iql.valuation` like every other body solve.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

from repro.analysis.effects import DeltaBody, delta_body, mentions_name
from repro.iql.literals import Membership
from repro.iql.rules import Rule
from repro.iql.terms import NameTerm, Var
from repro.iql.valuation import eval_term, match, solve_body
from repro.schema.instance import Instance
from repro.schema.schema import Schema
from repro.values.ovalues import OValue


def rule_eligible(rule: Rule, schema: Schema) -> bool:
    """True iff ``rule`` sits in the delta-staged fragment.

    Purely schema-level — the parallel-safety analysis
    (:mod:`repro.analysis.parallel`) reuses this exact predicate to
    decide hash-partitionability, so the fragment the certificate
    reasons about and the fragment the executor runs are one predicate,
    not two that could drift.
    """
    if rule.delete or rule.has_choose() or not rule.is_invention_free():
        return False
    head = rule.head
    if not (
        isinstance(head, Membership)
        and isinstance(head.container, NameTerm)
        and schema.is_relation(head.container.name)
        and not mentions_name(head.element)
    ):
        return False
    if not rule.body:
        return False  # unconditional facts: let the naive loop seed them

    # The literal classification is shared with the analysis layer: a
    # ``None`` body shape means a literal falls outside the delta fragment
    # (name terms in value positions, choose, unknown literal kinds).
    body = delta_body(rule, schema)
    if body is None:
        return False

    # Range check: every rule variable must be derivable from the
    # generators, closing over constant generators and equality binders, so
    # the enumeration fallback (whose search space constants(I) *grows*
    # with ρ) is never needed.
    derived: Set[Var] = set()
    for literal in body.relation_generators:
        derived |= literal.variables()
    changed = True
    while changed:
        changed = False
        for literal in body.constant_generators:
            if literal.container.variables() <= derived:
                before = len(derived)
                derived |= literal.element.variables()
                changed = changed or len(derived) != before
        for literal in body.equalities:
            for known, pattern in (
                (literal.left, literal.right),
                (literal.right, literal.left),
            ):
                if known.variables() <= derived and not pattern.variables() <= derived:
                    derived |= pattern.variables()
                    changed = True
    return rule.variables() <= derived


def stage_eligible(rules: Sequence[Rule], instance: Instance) -> bool:
    """True iff the delta rewriting is sound for this stage."""
    return all(rule_eligible(rule, instance.schema) for rule in rules)


def run_stage_seminaive(
    instance: Instance,
    rules: Sequence[Rule],
    stats,
    enumeration_budget: int,
    max_steps: int = 10_000,
    use_indexes: bool = True,
    compiler=None,
    initial_delta: Optional[Dict[str, Set[OValue]]] = None,
    added: Optional[Dict[str, Set[OValue]]] = None,
    costed: bool = False,
    replan_ratio: Optional[float] = None,
) -> int:
    """Evaluate an eligible stage to fixpoint with delta rewriting.

    Returns the number of rounds. Round 0 seeds the delta with a full
    evaluation; each later round requires one positive relation membership
    to match a fact from the previous round's delta — matched directly,
    with the remaining literals solved under the resulting bindings (so
    all the planning and indexing machinery is reused verbatim).

    With ``initial_delta`` (the IVM runtime's delta-seeded mode) round 0
    is skipped entirely: the given per-relation fact sets — already
    present in ``instance``, new since its last fixpoint — play the role
    of the previous round's delta, so the cost is proportional to the
    delta, not the instance. Sound whenever every derivation new since
    that fixpoint must use at least one delta fact in a positive relation
    position, which insert propagation into a converged stratum
    guarantees. ``added`` (if given) collects the facts each relation
    actually gained, for downstream propagation.

    With a ``compiler`` (:class:`repro.iql.compile.RuleCompiler`) each
    rule's round-0 body, per-position delta matchers and rest bodies run
    as compiled closure kernels over slot lists; rules the compiler
    cannot take (a fallback construct in the body) run the interpreted
    path above, rule by rule.

    ``costed``/``replan_ratio`` wire in the adaptive planner
    (:mod:`repro.iql.stats`): kernels are re-fetched and the drift check
    runs *per round*, so a plan whose round-0 estimates prove wrong (the
    classic case: a recursive relation planned while still empty) is
    replanned mid-fixpoint and the remaining rounds run the better order.
    """
    schema = instance.schema
    shapes: Dict[int, DeltaBody] = {}
    for index, rule in enumerate(rules):
        shape = delta_body(rule, schema)
        assert shape is not None  # guaranteed by stage_eligible
        shapes[index] = shape

    def fetch_kernels():
        fetched = {}
        if compiler is not None:
            for index, rule in enumerate(rules):
                compiled = compiler.seminaive_kernels(rule, shapes[index], instance)
                if compiled is not None:
                    fetched[index] = compiled
        return fetched

    kernels = fetch_kernels()
    rounds = 0
    first = initial_delta is None
    delta: Dict[str, Set[OValue]] = (
        {name: set(values) for name, values in initial_delta.items() if values}
        if initial_delta is not None
        else {}
    )
    if not first and not delta:
        return 0
    while True:
        if stats.steps >= max_steps:
            from repro.errors import NonTerminationError

            raise NonTerminationError(
                f"no fixpoint within {max_steps} steps (semi-naive stage)"
            )
        new: Dict[str, Set[OValue]] = {}
        for rule_index, rule in enumerate(rules):
            head = rule.head
            assert isinstance(head, Membership)  # guaranteed by rule_eligible
            assert isinstance(head.container, NameTerm)
            head_name = head.container.name
            head_term = head.element
            existing = instance.relations[head_name]
            compiled = kernels.get(rule_index)

            def derive(theta, _ht=head_term, _ex=existing, _hn=head_name, _new=new):
                value = eval_term(_ht, theta, instance)
                if value is not None and value not in _ex:
                    _new.setdefault(_hn, set()).add(value)
                    stats.valuations_considered += 1

            if first:
                if compiled is not None:
                    bucket = new.setdefault(head_name, set())
                    head_eval = compiled.head_full

                    def consume(slots, _he=head_eval, _b=bucket, _ex=existing):
                        value = _he(slots)
                        if value is not None and value not in _ex:
                            _b.add(value)
                            stats.valuations_considered += 1

                    compiled.full.execute((), consume)
                    continue
                for theta in solve_body(
                    rule.body,
                    instance,
                    enumeration_budget=enumeration_budget,
                    stats=stats,
                    plan_cache=rule.plan_cache,
                    use_indexes=use_indexes,
                    costed=costed,
                    feedback=rule.feedback_cache if costed else None,
                ):
                    derive(theta)
                continue

            body = list(rule.body)
            for position in shapes[rule_index].relation_positions:
                literal = body[position]
                assert isinstance(literal, Membership)  # by delta_body
                assert isinstance(literal.container, NameTerm)
                source = delta.get(literal.container.name)
                if not source:
                    continue
                if compiled is not None:
                    matcher, rest_body, head_eval = compiled.per_position[position]
                    bucket = new.setdefault(head_name, set())

                    def consume(slots, _he=head_eval, _b=bucket, _ex=existing):
                        value = _he(slots)
                        if value is not None and value not in _ex:
                            _b.add(value)
                            stats.valuations_considered += 1

                    slots = rest_body.new_slots()
                    rest_body.sink_cell[0] = consume
                    entry = rest_body.entry
                    for fact in source:
                        if matcher(fact, slots):
                            entry(slots)
                    continue
                rest = body[:position] + body[position + 1 :]
                for fact in source:
                    for seed in match(
                        literal.element, fact, {}, instance, use_indexes, stats
                    ):
                        for theta in solve_body(
                            rest,
                            instance,
                            enumeration_budget=enumeration_budget,
                            initial=seed,
                            stats=stats,
                            plan_cache=rule.plan_cache,
                            use_indexes=use_indexes,
                            costed=costed,
                            feedback=rule.feedback_cache if costed else None,
                        ):
                            derive(theta)

        first = False
        rounds += 1
        stats.steps += 1
        if not any(new.values()):
            return rounds
        for name, values in new.items():
            for value in values:
                if instance.add_relation_member(name, value):
                    stats.facts_added += 1
                    if added is not None:
                        added.setdefault(name, set()).add(value)
        delta = new
        if costed and replan_ratio is not None:
            from repro.iql.stats import check_drift

            # Mid-fixpoint adaptivity: a drifted plan is evicted here and
            # the re-fetch below recompiles the rule against the replanned
            # order for the remaining rounds.
            if check_drift(rules, stats, replan_ratio):
                kernels = fetch_kernels()
