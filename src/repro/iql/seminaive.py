"""Semi-naive evaluation for eligible IQL stages.

The paper notes (§5, §8) that IQL "is a good candidate for conventional
database optimizations"; this module supplies the classical one. A stage
qualifies when it is, in effect, positive Datalog inside IQL:

* every rule is plain (no delete, no choose), invention-free,
* every head is a relation membership ``R(t)``,
* every body literal is a *positive* membership over a relation name.

For such stages the inflationary one-step operator coincides with the
Datalog immediate-consequence operator, so the textbook delta rewriting is
sound: a derivation in round k+1 must use at least one fact first derived
in round k. The evaluator applies this automatically (it can be disabled
to force naive evaluation); the equivalence is tested against the naive
evaluator on randomized inputs, and benchmark E11 measures the speedup.

Classes, dereferences, invention, negation, set variables — anything that
makes IQL more than Datalog — falls back to the naive loop, whose
semantics is the specification.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set

from repro.iql.literals import Membership
from repro.iql.rules import Rule
from repro.iql.terms import NameTerm
from repro.iql.valuation import eval_term, match, solve_body
from repro.schema.instance import Instance
from repro.values.ovalues import OValue


def stage_eligible(rules: Sequence[Rule], instance: Instance) -> bool:
    """True iff the delta rewriting is sound for this stage."""
    schema = instance.schema
    for rule in rules:
        if rule.delete or rule.has_choose() or not rule.is_invention_free():
            return False
        head = rule.head
        if not (
            isinstance(head, Membership)
            and isinstance(head.container, NameTerm)
            and schema.is_relation(head.container.name)
        ):
            return False
        if not rule.body:
            return False  # unconditional facts: let the naive loop seed them
        for literal in rule.body:
            if not (
                isinstance(literal, Membership)
                and literal.positive
                and isinstance(literal.container, NameTerm)
                and schema.is_relation(literal.container.name)
            ):
                return False
    return True


def run_stage_seminaive(
    instance: Instance,
    rules: Sequence[Rule],
    stats,
    enumeration_budget: int,
    max_steps: int = 10_000,
) -> int:
    """Evaluate an eligible stage to fixpoint with delta rewriting.

    Returns the number of rounds. Round 0 seeds the delta with a full
    evaluation; each later round requires one body literal to match a fact
    from the previous round's delta — matched directly, with the remaining
    literals solved under the resulting bindings (so all the generic
    matching machinery is reused verbatim).
    """
    delta: Dict[str, Set[OValue]] = {
        name: set(members) for name, members in instance.relations.items()
    }
    rounds = 0
    first = True
    while True:
        if stats.steps >= max_steps:
            from repro.errors import NonTerminationError

            raise NonTerminationError(
                f"no fixpoint within {max_steps} steps (semi-naive stage)"
            )
        new: Dict[str, Set[OValue]] = {}
        for rule in rules:
            head_name = rule.head.container.name
            head_term = rule.head.element
            existing = instance.relations[head_name]

            def derive(theta):
                value = eval_term(head_term, theta, instance)
                if value is not None and value not in existing:
                    new.setdefault(head_name, set()).add(value)
                    stats.valuations_considered += 1

            if first:
                for theta in solve_body(
                    rule.body, instance, enumeration_budget=enumeration_budget
                ):
                    derive(theta)
                continue

            body = list(rule.body)
            for position, literal in enumerate(body):
                source = delta.get(literal.container.name)
                if not source:
                    continue
                rest = body[:position] + body[position + 1 :]
                for fact in source:
                    for seed in match(literal.element, fact, {}, instance):
                        for theta in solve_body(
                            rest,
                            instance,
                            enumeration_budget=enumeration_budget,
                            initial=seed,
                        ):
                            derive(theta)

        first = False
        rounds += 1
        stats.steps += 1
        if not any(new.values()):
            return rounds
        for name, values in new.items():
            for value in values:
                if instance.add_relation_member(name, value):
                    stats.facts_added += 1
        delta = new
