"""Shorthands and derived operations (Section 3.4).

The paper writes ``R(t1, ..., tk)`` for ``R([A1: t1, ..., Ak: tk])`` under
an implicit attribute ordering, omits variable types where inference fills
them in, and uses nest/unnest as derived operations. This module supplies
the same conveniences for programmatic construction:

* :func:`atom` / :func:`neg` — positional atoms over relations and classes,
* :func:`positional_attrs` — the canonical zero-padded attribute names,
  whose lexicographic order equals their positional order,
* :func:`make_vars` — bulk variable construction,
* :func:`unnest_program` / :func:`nest_program` — the Example 3.4.1
  programs, generalized to any attribute pair,
* :func:`datalog_rules_to_iql` lives in :mod:`repro.datalog.embed` (the
  embedding needs the Datalog AST).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import TypeCheckError
from repro.iql.literals import Membership
from repro.iql.program import Program
from repro.iql.rules import Rule
from repro.iql.terms import NameTerm, TupleTerm, Var, as_term
from repro.schema.schema import Schema
from repro.typesys.expressions import TupleOf, TypeExpr, classref, set_of, tuple_of


def positional_attrs(k: int) -> Tuple[str, ...]:
    """``k`` attribute names whose sorted order equals positional order.

    Zero-padded (``A01``, ``A02``, ...) so relations with ten or more
    columns still order correctly under the canonical attribute sort.
    """
    width = max(2, len(str(k)))
    return tuple(f"A{i + 1:0{width}d}" for i in range(k))


def columns(*types: TypeExpr) -> TupleOf:
    """A tuple type with positional attributes: ``columns(D, D)`` is the
    paper's ``[A1: D, A2: D]``."""
    attrs = positional_attrs(len(types))
    return tuple_of({attr: t for attr, t in zip(attrs, types)})


def atom(schema: Schema, name: str, *args, positive: bool = True) -> Membership:
    """``name(t1, ..., tk)`` — the positional shorthand of Section 3.4.

    For a relation whose member type is a tuple of k attributes, k
    arguments map positionally (canonical attribute order); a single
    argument against a non-tuple member type is the member itself; class
    atoms ``P(x)`` always take a single argument.
    """
    container = NameTerm(name)
    if schema.is_class(name):
        if len(args) != 1:
            raise TypeCheckError(f"class atom {name}(x) takes exactly one argument")
        return Membership(container, as_term(args[0]), positive)
    if not schema.is_relation(name):
        raise TypeCheckError(f"unknown relation/class {name!r}")
    member_type = schema.relations[name]
    if isinstance(member_type, TupleOf) and len(member_type.attributes) == len(args):
        fields = {attr: as_term(arg) for attr, arg in zip(member_type.attributes, args)}
        return Membership(container, TupleTerm(fields), positive)
    if len(args) == 1:
        return Membership(container, as_term(args[0]), positive)
    raise TypeCheckError(
        f"{name} has member type {member_type!r}; cannot build a {len(args)}-ary atom"
    )


def neg(schema: Schema, name: str, *args) -> Membership:
    """``¬name(t1, ..., tk)``."""
    return atom(schema, name, *args, positive=False)


def make_vars(type: TypeExpr, *names: str) -> List[Var]:
    """Variables of a shared type: ``x, y = make_vars(D, "x", "y")``."""
    return [Var(name, type) for name in names]


# -- nest / unnest (Example 3.4.1) ----------------------------------------------


def unnest_program(
    source: str,
    target: str,
    key_type: TypeExpr,
    element_type: TypeExpr,
) -> Program:
    """Unnest ``source: [A, {B}]`` into ``target: [A, B]`` — the single rule

        target(x, y) ← source(x, Y), Y(y).
    """
    schema = Schema(
        relations={
            source: columns(key_type, set_of(element_type)),
            target: columns(key_type, element_type),
        }
    )
    x = Var("x", key_type)
    y = Var("y", element_type)
    big_y = Var("Y", set_of(element_type))
    rule = Rule(
        head=atom(schema, target, x, y),
        body=[atom(schema, source, x, big_y), Membership(big_y, y)],
        label="unnest",
    )
    return Program(schema, rules=[rule], input_names=[source], output_names=[target])


def nest_program(
    source: str,
    target: str,
    key_type: TypeExpr,
    element_type: TypeExpr,
    aux_class: str = "P_nest",
    aux_prefix: str = "R_nest",
) -> Program:
    """Nest ``source: [A, B]`` into ``target: [A, {B}]`` (Example 3.4.1).

    Stage G1 invents one set-valued oid per key and pours the grouped
    elements into it; stage G2 dereferences into the result::

        R4(x)     ← source(x, y)
        R5(x, z)  ← R4(x)                 -- z invented, one oid per x
        ẑ(y)      ← source(x, y), R5(x, z)
        ;
        target(x, ẑ) ← R5(x, z)

    This is the paper's demonstration that COL data-functions / LDL
    grouping need no dedicated primitive: invented oids do the job.
    """
    r4 = f"{aux_prefix}4"
    r5 = f"{aux_prefix}5"
    schema = Schema(
        relations={
            source: columns(key_type, element_type),
            target: columns(key_type, set_of(element_type)),
            r4: columns(key_type),
            r5: columns(key_type, classref(aux_class)),
        },
        classes={aux_class: set_of(element_type)},
    )
    x = Var("x", key_type)
    y = Var("y", element_type)
    z = Var("z", classref(aux_class))
    stage1 = [
        Rule(atom(schema, r4, x), [atom(schema, source, x, y)], label="keys"),
        Rule(atom(schema, r5, x, z), [atom(schema, r4, x)], label="invent-groups"),
        Rule(
            Membership(z.hat(), y),
            [atom(schema, source, x, y), atom(schema, r5, x, z)],
            label="pour",
        ),
    ]
    stage2 = [
        Rule(atom(schema, target, x, z.hat()), [atom(schema, r5, x, z)], label="collect"),
    ]
    return Program(
        schema, stages=[stage1, stage2], input_names=[source], output_names=[target]
    )


def compose(*programs: Program) -> Program:
    """G1; G2; ...; Gk — sequential composition over the merged schema."""
    if not programs:
        raise TypeCheckError("compose() needs at least one program")
    result = programs[0]
    for nxt in programs[1:]:
        result = result.then(nxt)
    return result
