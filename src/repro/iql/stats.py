"""Cardinality statistics and the adaptive-planning feedback loop.

The paper's closing remark — IQL "is a good candidate for conventional
database optimizations" — licensed the indexes (PR 2), the semi-naive
deltas and the compiled kernels; this module supplies the *optimizer
statistics* that turn the body planner of :mod:`repro.iql.valuation` from
a static rank heuristic into a cost model. It has two halves:

**Statistics** (:class:`Statistics`) answers the planner's cardinality
questions about one instance:

* per-relation / per-class sizes — read straight off the live extension
  sets, so they are exact and free,
* per-attribute distinct-value counts (NDV) — ``len`` of the lazy
  projection indexes of :class:`~repro.iql.indexes.InstanceIndexes`.
  Because those indexes are maintained incrementally through the four
  insert mutators *and* the removal mutators (PR 7), NDV stays warm under
  arbitrary mutation — including :meth:`MaterializedProgram.apply_delta`
  batches — without any separate bookkeeping: the statistic *is* the
  index,
* average dereference width per class (the mean ``|ν(o)|`` over oids with
  set values) — the estimate for scanning a ``x̂`` container,
* set-pattern branching factors — ``width ** k`` for a k-slot set pattern
  instead of the old hard-coded 64.

Rewriting a body's join order is answer-preserving (every literal is still
checked on every valuation; Bonifati et al.'s equivalence results for
object-creating conjunctive queries are the semantic license), so the
planner may consume these numbers aggressively: estimates affect speed,
never the solution set.

**Feedback** (:func:`check_drift`) closes the loop at run time. Cost-based
plans (:class:`~repro.iql.valuation.Plan`) carry their per-step estimates
and a row-counter array that both the interpreter and the compiled kernels
maintain; between fixpoint rounds the evaluator calls :func:`check_drift`,
which compares observed per-step fan-out against the estimate. When they
disagree by ≥ ``replan_ratio`` (default 10×), the plan is evicted from the
rule's plan cache, its compiled kernels are invalidated, and the observed
fan-outs are recorded in ``Rule.feedback_cache`` so the *next* planning of
the same (body, bound-set) costs those steps with measured reality instead
of the model. Replanning is double-bounded: the feedback store is a
:class:`~repro.caches.BoundedDict` like the plan cache, and each plan key
replans at most :data:`MAX_REPLANS` times, so a workload whose fan-out
genuinely oscillates settles on its last plan instead of thrashing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.iql.terms import Deref, SetTerm, Term, TupleTerm
from repro.values.ovalues import OSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (valuation → stats)
    from repro.iql.rules import Rule
    from repro.iql.valuation import Plan
    from repro.schema.instance import Instance

#: Fan-out assumed for a dereference container when the class has no
#: set-valued members to average over (and for use_indexes=False planning,
#: which must not touch the index layer).
DEFAULT_DEREF_WIDTH = 8.0

#: Elements assumed per matched set value when no class statistic applies
#: (the branching base for set-pattern equalities).
DEFAULT_SET_WIDTH = 4.0

#: Fraction of rows assumed to survive a fully-bound filter literal.
FILTER_SELECTIVITY = 0.5

#: Hard cap on replans per plan-cache key: after this many rounds of
#: feedback the last plan sticks, so oscillating fan-outs cannot thrash
#: the compiler (the feedback store itself is a BoundedDict on the rule).
MAX_REPLANS = 4

#: Minimum observed rows (into + out of a step) before its fan-out counts
#: as evidence for drift. Ratios at or below 1.0 ("replan whenever the
#: estimate is not exact" — the forced-replan test mode) accept any
#: non-empty observation instead.
MIN_EVIDENCE = 16

#: Additive smoothing for fan-out ratios, so bucket estimates below one
#: row do not manufacture infinite drift.
_SMOOTH = 0.125

#: Plan-step kinds that generate rows (and therefore maintain row counts).
GENERATOR_KINDS = ("member", "equal")


class Statistics:
    """Cardinality statistics of one instance, piggybacked on its indexes.

    Stateless by construction: every answer is derived from the live
    extension sets and the incrementally-maintained
    :class:`~repro.iql.indexes.InstanceIndexes`, so there is nothing to
    refresh and nothing that can go stale — mutations (inserts, PR-7
    removals, IVM delta batches) update the underlying structures and the
    statistics follow. The only write this class ever causes is the lazy
    first build of a projection index it is asked an NDV question about,
    which is the same scan a probe of that attribute would pay anyway.
    """

    __slots__ = ("instance",)

    def __init__(self, instance: "Instance"):
        self.instance = instance

    # -- cardinalities -----------------------------------------------------------

    def relation_size(self, name: str) -> int:
        return len(self.instance.relations[name])

    def class_size(self, name: str) -> int:
        return len(self.instance.classes.get(name, ()))

    def ndv(self, name: str, attr: str) -> int:
        """Distinct values of ``attr`` among relation ``name``'s tuples."""
        return self.instance.indexes.ndv(name, attr)

    # -- derived estimates -------------------------------------------------------

    def bucket_estimate(self, name: str, attrs: Tuple[str, ...]) -> Tuple[float, float]:
        """(work, fan-out) of probing relation ``name`` on ``attrs``.

        Work is the expected candidate count of the *smallest* probed
        bucket (the runtime probes every attribute and scans the smallest);
        fan-out is the expected surviving rows under independence — size
        times ``1/NDV`` per probed attribute, floored just above zero so a
        perfectly selective probe still costs one lookup.
        """
        size = float(self.relation_size(name))
        if size == 0.0:
            return 0.0, 0.0
        best_ndv = 1
        fanout = size
        for attr in attrs:
            n = self.ndv(name, attr)
            if n > best_ndv:
                best_ndv = n
            fanout /= max(1, n)
        work = size / best_ndv
        return max(work, _SMOOTH), max(fanout, _SMOOTH)

    def deref_width(self, class_name: str) -> float:
        """Mean ``|ν(o)|`` over the class's set-valued oids (scan estimate)."""
        instance = self.instance
        total = 0
        counted = 0
        for oid in instance.classes.get(class_name, ()):
            value = instance.nu.get(oid)
            if isinstance(value, OSet):
                total += len(value)
                counted += 1
        if counted == 0:
            return DEFAULT_DEREF_WIDTH
        return max(total / counted, _SMOOTH)

    def container_width(self, container: Term, use_indexes: bool) -> float:
        """Estimated element count of a non-name membership container."""
        if isinstance(container, SetTerm):
            return float(max(len(container.terms), 1))
        if isinstance(container, Deref) and use_indexes:
            class_name = getattr(container.var.type, "name", None)
            if class_name is not None:
                return self.deref_width(class_name)
        return DEFAULT_DEREF_WIDTH

    def set_branching(self, pattern: Term, known: Optional[Term], use_indexes: bool) -> float:
        """Match extensions of an equality whose pattern contains set terms.

        A k-slot set pattern matched against a set of width s branches over
        s**k slot assignments; s comes from the known side's class when it
        is a dereference (the common ``x̂ = {y, z}`` shape), else defaults.
        The old planner hard-coded 64 here regardless of the pattern.
        """
        width = DEFAULT_SET_WIDTH
        if isinstance(known, Deref) and use_indexes:
            class_name = getattr(known.var.type, "name", None)
            if class_name is not None:
                width = max(self.deref_width(class_name), 1.0)
        branching = 1.0
        for k in _set_slot_counts(pattern):
            branching *= max(width, 1.0) ** k
        return max(branching, 1.0)


def _set_slot_counts(term: Term) -> Iterator[int]:
    if isinstance(term, SetTerm):
        yield len(term.terms)
        for sub in term.terms:
            yield from _set_slot_counts(sub)
    elif isinstance(term, TupleTerm):
        for _, sub in term.fields:
            yield from _set_slot_counts(sub)


# -- the runtime feedback loop -------------------------------------------------


def _segments(plan: "Plan") -> Iterator[Tuple[int, int, int, float, float]]:
    """(generator step, obs_in, obs_out, est_in, est_out) per counted segment.

    Row counters exist at generator steps and at the sink; a segment runs
    from one counted checkpoint to the next, so its observed and estimated
    fan-outs both include any filter steps in between (the estimates chain
    applies :data:`FILTER_SELECTIVITY` at the same places).
    """
    estimates = plan.estimates
    if estimates is None:
        return
    counts = plan.counts
    points = [i for i, step in enumerate(plan) if step[0] in GENERATOR_KINDS]
    points.append(len(plan))
    for j in range(len(points) - 1):
        i, nxt = points[j], points[j + 1]
        est_in = estimates[i - 1] if i > 0 else 1.0
        est_out = estimates[nxt - 1]
        yield i, counts[i], counts[nxt], est_in, est_out


def drifted_segments(plan: "Plan", ratio: float) -> List[Tuple[int, float]]:
    """(generator step, observed fan-out) for segments off by ≥ ``ratio``."""
    out: List[Tuple[int, float]] = []
    min_evidence = 1 if ratio <= 1.0 else MIN_EVIDENCE
    for i, obs_in, obs_out, est_in, est_out in _segments(plan):
        if obs_in <= 0 or obs_in + obs_out < min_evidence:
            continue
        obs_f = obs_out / obs_in
        est_f = est_out / max(est_in, 1e-9)
        r = max(
            (obs_f + _SMOOTH) / (est_f + _SMOOTH),
            (est_f + _SMOOTH) / (obs_f + _SMOOTH),
        )
        if r >= ratio:
            out.append((i, obs_f))
    return out


def observed_fanouts(plan: "Plan") -> Dict[tuple, float]:
    """Every measured generator fan-out, keyed for the planner's reuse.

    The key is (literal, bound-set before the step): a replanned body
    consulting the feedback hits it exactly when it considers the same
    literal at a point where the same variables are bound — the situation
    in which the measurement is meaningful.
    """
    out: Dict[tuple, float] = {}
    for i, obs_in, obs_out, _, _ in _segments(plan):
        if obs_in <= 0:
            continue
        step = plan[i]
        out[(step[1], plan.bound_before[i])] = obs_out / obs_in
    return out


def check_drift(rules, stats, ratio: float = 10.0) -> int:
    """Replan every cached cost-based plan whose estimates drifted ≥ ``ratio``.

    For each drifted plan: record all measured fan-outs into the rule's
    ``feedback_cache`` (a BoundedDict keyed like the plan cache), evict the
    plan, and invalidate the rule's compiled kernels so the next fetch
    recompiles against the replanned order. Returns the number of plans
    evicted; ``stats`` (an :class:`EvaluationStats`) gains
    ``estimate_drifts`` per drifted segment and ``plan_replans`` per
    eviction. Plans that already replanned :data:`MAX_REPLANS` times are
    left alone — their last ordering sticks.
    """
    replanned = 0
    for rule in rules:
        cache = rule._plan_cache
        if not cache:
            continue
        for key, plan in list(cache.items()):
            if plan.estimates is None or plan.replans >= MAX_REPLANS:
                continue
            drifts = drifted_segments(plan, ratio)
            if not drifts:
                continue
            if stats is not None:
                stats.estimate_drifts += len(drifts)
                stats.plan_replans += 1
            feedback = rule.feedback_cache
            entry = feedback.get(key)
            fanouts = dict(entry["fanouts"]) if entry else {}
            fanouts.update(observed_fanouts(plan))
            feedback[key] = {"fanouts": fanouts, "replans": plan.replans + 1}
            del cache[key]
            kernel_cache = rule._kernel_cache
            if kernel_cache is not None:
                for kkey, kernel in list(kernel_cache.items()):
                    # Keep negative entries (fallback markers stay true);
                    # drop real kernels — they embed the evicted plan.
                    if hasattr(kernel, "valid_for"):
                        del kernel_cache[kkey]
            replanned += 1
    return replanned


# -- plan rendering (repro analyze --plans) ------------------------------------


def describe_plan(plan: "Plan") -> List[str]:
    """One human-readable line per plan step, with cost estimates."""
    lines: List[str] = []
    estimates = plan.estimates
    for i, step in enumerate(plan):
        kind = step[0]
        if kind == "filter":
            detail = f"filter  {step[1]!r}"
        elif kind == "member":
            lit, probes = step[1], step[2]
            if probes:
                attrs = ",".join(attr for attr, _ in probes)
                detail = f"probe   {lit.container!r}[{attrs}] match {lit.element!r}"
            else:
                detail = f"scan    {lit.container!r} match {lit.element!r}"
        elif kind == "equal":
            lit, left_known = step[1], step[2]
            known, pattern = (
                (lit.left, lit.right) if left_known else (lit.right, lit.left)
            )
            detail = f"match   {pattern!r} = eval({known!r})"
        else:  # enum
            detail = f"enum    {step[1].name}: {step[1].type!r}"
        if estimates is not None:
            detail += f"  → est {estimates[i]:.1f} rows"
        lines.append(detail)
    if not lines:
        lines.append("(empty body: one empty valuation)")
    return lines
