"""The PTIME sublanguages of IQL (Section 5).

Definitions 5.1-5.3 carve out IQLrr ⊂ IQLpr ⊂ IQL by three syntactic
conditions:

* **ptime-restriction** (Definition 5.1): every body variable is reachable
  from set-constructor-free types through positive literals — enumeration
  of set-free type interpretations over constants(I) is polynomial,
* **range-restriction** (Definition 5.2): stricter — only class-typed
  variables are granted for free; everything else must be bound through
  positive literals (no type-interpretation search at all),
* **invention-freedom** / **recursion-freedom** (Section 5): each stage of
  the composition must either invent no oids or be acyclic in the
  dependency graph G(Γ), which is what stops invention loops like
  ``R3(y, z) ← R3(x, y)`` from diverging.

Theorem 5.4: every IQLpr program evaluates in time polynomial in the size
of the input instance; benchmark E10 measures exactly this.

The dependency graph follows the paper's definition, generalized (per its
footnote 6) to rules whose head is x̂(t) or x̂ = t: the "leftmost symbol"
of such a rule is the class of the dereferenced variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import SublanguageError
from repro.iql.literals import Choose, Equality, Literal, Membership
from repro.iql.program import Program
from repro.iql.rules import Rule
from repro.iql.terms import Deref, NameTerm, SetTerm, Term, TupleTerm, Var
from repro.typesys.expressions import ClassRef


# -- restriction of variables (Definitions 5.1 and 5.2) ---------------------------


def _restricted_vars(rule: Rule, base_case) -> FrozenSet[Var]:
    """The least fixpoint of the restriction propagation.

    ``base_case(var)`` decides clause (1); clause (2) propagates through
    positive body literals t1(t2) / t1 = t2 / t2 = t1: once every variable
    of t1 is restricted, every variable of t2 is.
    """
    body_vars = rule.body_variables()
    restricted: Set[Var] = {v for v in body_vars if base_case(v)}

    pairs: List[Tuple[Term, Term]] = []
    for literal in rule.body:
        if not literal.positive or isinstance(literal, Choose):
            continue
        if isinstance(literal, Membership):
            pairs.append((literal.container, literal.element))
        elif isinstance(literal, Equality):
            pairs.append((literal.left, literal.right))
            pairs.append((literal.right, literal.left))

    changed = True
    while changed:
        changed = False
        for t1, t2 in pairs:
            if t1.variables() <= restricted:
                new = t2.variables() - restricted
                if new:
                    restricted |= new
                    changed = True
    return frozenset(restricted)


def ptime_restricted_vars(rule: Rule) -> FrozenSet[Var]:
    """Definition 5.1: base case = type without the set constructor."""
    return _restricted_vars(rule, lambda v: not v.type.has_set_constructor())


def range_restricted_vars(rule: Rule) -> FrozenSet[Var]:
    """Definition 5.2: base case = class type."""
    return _restricted_vars(rule, lambda v: isinstance(v.type, ClassRef))


def is_ptime_restricted(rule: Rule) -> bool:
    return rule.body_variables() <= ptime_restricted_vars(rule)


def is_range_restricted(rule: Rule) -> bool:
    return rule.body_variables() <= range_restricted_vars(rule)


# -- invention / recursion freedom -------------------------------------------------


def is_invention_free(rules: Iterable[Rule]) -> bool:
    """No variable occurs in a head and not the corresponding body."""
    return all(rule.is_invention_free() for rule in rules)


def _head_symbol(rule: Rule) -> str:
    """The paper's "leftmost symbol", generalized per its footnote 6.

    For a relation/class head R(t) / P(t) it is that name; for a value head
    x̂(t) or x̂ = t it is the *value plane* of x's class, written ``^P`` —
    a node distinct from the extent node ``P``. The distinction is what
    keeps the paper's own Example 3.4.1 recursion-free: a rule that pours
    values into existing P-objects does not grow the extent of P, so it
    must not close an invention cycle through P.
    """
    name = rule.head_name()
    if name is not None:
        return name
    deref = rule.head_deref()
    if deref is not None:
        return f"^{deref.var.type.name}"
    raise SublanguageError(f"cannot determine the head symbol of {rule!r}")


def dependency_graph(rules: Sequence[Rule]) -> Dict[str, Set[str]]:
    """The directed graph G(Γ) of Section 5, as adjacency sets n → {n'}.

    Nodes are relation names, class *extent* nodes P, and class *value
    plane* nodes ^P (footnote-6 generalization — the paper's (*) assumes
    relation heads only; rules with x̂ heads grow ν, not π).

    Arcs run from everything a rule consumes — relation/class names in the
    body (1)(a), classes in the types of body variables (1)(b), and the
    value planes of dereferences read anywhere in the rule — to everything
    it can grow: its head symbol (2)(a) and the classes its invention
    variables populate (2)(b).
    """
    edges: Dict[str, Set[str]] = {}

    def add_edge(src: str, dst: str) -> None:
        edges.setdefault(src, set()).add(dst)
        edges.setdefault(dst, set())

    for rule in rules:
        sources: Set[str] = set()
        for literal in rule.body:
            for term in _terms_of(literal):
                for sub in _walk_terms(term):
                    if isinstance(sub, NameTerm):
                        sources.add(sub.name)  # (1)(a)
                    if isinstance(sub, Var):
                        sources |= sub.type.class_names()  # (1)(b)
                    if isinstance(sub, Deref):
                        sources.add(f"^{sub.var.type.name}")  # value read
        # Dereferences *read* inside the head (e.g. R1(ẑ) ← P(z)) are also
        # consumption: the derived facts depend on those values.
        head_container_var = None
        deref = rule.head_deref()
        if deref is not None:
            head_container_var = deref.var
        for term in _terms_of(rule.head):
            for sub in _walk_terms(term):
                if isinstance(sub, Deref) and sub.var != head_container_var:
                    sources.add(f"^{sub.var.type.name}")

        targets: Set[str] = {_head_symbol(rule)}  # (2)(a)
        for var in rule.invention_variables():  # (2)(b)
            if isinstance(var.type, ClassRef):
                targets.add(var.type.name)
        for src in sources:
            for dst in targets:
                add_edge(src, dst)
        for dst in targets:
            edges.setdefault(dst, set())
    return edges


def _terms_of(literal: Literal):
    if isinstance(literal, Membership):
        yield literal.container
        yield literal.element
    elif isinstance(literal, Equality):
        yield literal.left
        yield literal.right


def _walk_terms(term: Term):
    yield term
    if isinstance(term, SetTerm):
        for sub in term.terms:
            yield from _walk_terms(sub)
    elif isinstance(term, TupleTerm):
        for _, sub in term.fields:
            yield from _walk_terms(sub)
    elif isinstance(term, Deref):
        yield term.var


def find_cycle(edges: Dict[str, Set[str]]) -> Optional[List[str]]:
    """A directed cycle in an adjacency-set graph, as a node path
    ``[n1, n2, ..., n1]`` (first == last), or ``None`` when acyclic.

    Iterative depth-first search with an explicit stack so deep dependency
    chains cannot overflow Python's recursion limit.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in edges}
    for root in sorted(edges):
        if colour[root] != WHITE:
            continue
        path: List[str] = []
        stack: List[Tuple[str, Iterator[str]]] = []
        colour[root] = GREY
        path.append(root)
        stack.append((root, iter(sorted(edges.get(root, ())))))
        while stack:
            node, successors = stack[-1]
            advanced = False
            for succ in successors:
                if colour[succ] == GREY:
                    return path[path.index(succ):] + [succ]
                if colour[succ] == WHITE:
                    colour[succ] = GREY
                    path.append(succ)
                    stack.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                path.pop()
                stack.pop()
    return None


def has_cycle(edges: Dict[str, Set[str]]) -> bool:
    """Cycle detection over an adjacency-set graph."""
    return find_cycle(edges) is not None


def find_invention_cycle(rules: Sequence[Rule]) -> Optional[List[str]]:
    """A cycle of G(Γ) through an invention target, or ``None``.

    This is the static early warning for divergence: a set of rules that
    (a) invents oids and (b) does so inside a dependency cycle can fire
    forever — the loop ``R3(y, z) ← R3(x, y)`` of Section 5 invents a fresh
    z each round and re-enables its own body. The returned path is a node
    cycle ``[n1, ..., n1]`` that passes through the head symbol or target
    class of some inventing (non-``choose``) rule; rules whose head-only
    variables are ``choose``-selected never invent, so they seed nothing.
    """
    rules = list(rules)
    head_seeds: Set[str] = set()
    class_seeds: Set[str] = set()
    for rule in rules:
        if rule.has_choose() or not rule.invention_variables():
            continue
        head_seeds.add(_head_symbol(rule))
        for var in rule.invention_variables():
            if isinstance(var.type, ClassRef):
                class_seeds.add(var.type.name)
    if not head_seeds and not class_seeds:
        return None
    edges = dependency_graph(rules)
    # Prefer a cycle through an inventing rule's head symbol (the loop the
    # programmer wrote) over one through the invented class's extent node.
    for seed in sorted(head_seeds) + sorted(class_seeds - head_seeds):
        cycle = _cycle_through(edges, seed)
        if cycle is not None:
            return cycle
    return None


def _cycle_through(edges: Dict[str, Set[str]], target: str) -> Optional[List[str]]:
    """The shortest cycle ``[target, ..., target]``, or ``None``.

    Breadth-first search from ``target`` back to itself; ``parents`` maps
    each discovered node to its predecessor on a shortest path from the
    target, so the cycle reconstruction walks back until it re-reaches it.
    """
    if target not in edges:
        return None
    parents: Dict[str, str] = {}
    queue: List[str] = [target]
    head = 0
    while head < len(queue):
        node = queue[head]
        head += 1
        for succ in sorted(edges.get(node, ())):
            if succ == target:
                chain: List[str] = []
                cursor = node
                while cursor != target:
                    chain.append(cursor)
                    cursor = parents[cursor]
                return [target, *reversed(chain), target]
            if succ not in parents:
                parents[succ] = node
                queue.append(succ)
    return None


def is_recursion_free(rules: Sequence[Rule]) -> bool:
    """G(Γ) is acyclic — invention cannot feed itself."""
    return not has_cycle(dependency_graph(rules))


# -- program-level classification (Definition 5.3) -----------------------------------


@dataclass
class StageReport:
    """Which restrictions one stage satisfies."""

    index: int
    ptime_restricted: bool
    range_restricted: bool
    invention_free: bool
    recursion_free: bool
    offending_vars: List[str] = field(default_factory=list)

    @property
    def admissible_pr(self) -> bool:
        return self.ptime_restricted and (self.invention_free or self.recursion_free)

    @property
    def admissible_rr(self) -> bool:
        return self.range_restricted and (self.invention_free or self.recursion_free)


@dataclass
class SublanguageReport:
    """The program's position in the IQLrr ⊂ IQLpr ⊂ IQL hierarchy."""

    stages: List[StageReport]

    @property
    def is_iql_pr(self) -> bool:
        return all(stage.admissible_pr for stage in self.stages)

    @property
    def is_iql_rr(self) -> bool:
        return all(stage.admissible_rr for stage in self.stages)

    def summary(self) -> str:
        if self.is_iql_rr:
            return "IQLrr (range-restricted; PTIME data complexity)"
        if self.is_iql_pr:
            return "IQLpr (ptime-restricted; PTIME data complexity)"
        return "full IQL (no PTIME guarantee)"


def classify(program: Program) -> SublanguageReport:
    """Analyze every stage of ``program`` against Definitions 5.1-5.3."""
    stages = []
    for index, stage in enumerate(program.stages):
        rules = list(stage)
        offending = sorted(
            {
                v.name
                for rule in rules
                for v in rule.body_variables() - range_restricted_vars(rule)
            }
        )
        stages.append(
            StageReport(
                index=index,
                ptime_restricted=all(is_ptime_restricted(r) for r in rules),
                range_restricted=all(is_range_restricted(r) for r in rules),
                invention_free=is_invention_free(rules),
                recursion_free=is_recursion_free(rules),
                offending_vars=offending,
            )
        )
    return SublanguageReport(stages)


def _first_rule_location(program: Program, stage_indexes: Iterable[int]):
    """(rule_label, span) of the first rule of the first offending stage."""
    for index in stage_indexes:
        for rule in program.stages[index]:
            return rule.display_label(), rule.span
    return None, None


def require_iql_rr(program: Program) -> Program:
    """Raise unless the program is IQLrr; returns it unchanged otherwise."""
    report = classify(program)
    if not report.is_iql_rr:
        bad = [s for s in report.stages if not s.admissible_rr]
        label, span = _first_rule_location(program, (s.index for s in bad))
        raise SublanguageError(
            f"program is not IQLrr; offending stages: "
            f"{[(s.index, s.offending_vars) for s in bad]}",
            rule_label=label,
            span=span,
        )
    return program


def require_iql_pr(program: Program) -> Program:
    """Raise unless the program is IQLpr; returns it unchanged otherwise."""
    report = classify(program)
    if not report.is_iql_pr:
        bad = [s for s in report.stages if not s.admissible_pr]
        label, span = _first_rule_location(program, (s.index for s in bad))
        raise SublanguageError("program is not IQLpr", rule_label=label, span=span)
    return program


# -- Lemma 5.7 instrumentation ----------------------------------------------------------


def max_constructor_width(program: Program) -> int:
    """The paper's ``m``: the largest set/tuple constructor a rule can build.

    Lemma 5.7 shows an invention-free step keeps the instance's branching
    factor below max(m, n) where n is the input's branching factor; test
    E15 measures this bound on real evaluations.
    """
    best = 0
    for rule in program.rules:
        for literal in (rule.head, *rule.body):
            for term in _terms_of(literal):
                for sub in _walk_terms(term):
                    if isinstance(sub, SetTerm):
                        best = max(best, len(sub.terms))
                    elif isinstance(sub, TupleTerm):
                        best = max(best, len(sub.fields))
    return best
