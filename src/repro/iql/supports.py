"""Support tables: derivation counts for counting-maintained symbols.

The counting strategy of incremental view maintenance (GMS93-style, the
:data:`~repro.analysis.maintenance.COUNTING` leg of the PR-6 trichotomy)
keeps, for every fact of a counting-certified derived relation, the
number of *distinct derivations* — pairs ``(rule, θ)`` with ``θ(body)``
true in the current state and ``θ(head)`` equal to the fact. The
invariant the IVM runtime (:mod:`repro.iql.ivm`) maintains is::

    fact ∈ ρ(S)  ⟺  count(S, fact) ≥ 1

which holds at the initial fixpoint because counting-certified symbols
live in certified (topologically scheduled, negation-stratified) strata:
by the time their stratum converges every symbol they read is final, so
every present fact has at least one final-state derivation. Updates then
adjust counts exactly — one increment per *born* valuation (valid in the
new state, using at least one inserted fact), one decrement per *dying*
valuation (valid in the old state, using at least one deleted fact) — and
a fact is physically inserted or retracted exactly when its count crosses
zero.

This module is just the table; the valuation enumeration lives in
:mod:`repro.iql.ivm`. Counts must never go negative — a negative count
means the runtime's exactness argument was violated somewhere, and
:meth:`SupportTable.negative_symbols` lets the runtime detect that and
fall back to a recompute instead of serving wrong answers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Tuple

from repro.values.ovalues import OValue


class SupportTable:
    """Per-symbol ``fact → derivation count`` maps.

    Zero-count entries are pruned on decrement, so ``counts[symbol]``
    enumerates exactly the supported facts; negative counts are *kept*
    (not pruned) so :meth:`negative_symbols` can surface the corruption.
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[str, Dict[OValue, int]] = {}

    def table(self, symbol: str) -> Dict[OValue, int]:
        """The (created-on-demand) count map of ``symbol``."""
        return self.counts.setdefault(symbol, {})

    def get(self, symbol: str, fact: OValue) -> int:
        table = self.counts.get(symbol)
        if table is None:
            return 0
        return table.get(fact, 0)

    def add(self, symbol: str, fact: OValue, n: int = 1) -> int:
        """Increment ``fact``'s count by ``n``; returns the new count."""
        table = self.table(symbol)
        count = table.get(fact, 0) + n
        table[fact] = count
        return count

    def sub(self, symbol: str, fact: OValue, n: int = 1) -> int:
        """Decrement ``fact``'s count by ``n``; returns the new count.

        A count reaching exactly zero is pruned (the fact is no longer
        derivable and the caller retracts it); a count going *below* zero
        is kept so the corruption is observable.
        """
        table = self.table(symbol)
        count = table.get(fact, 0) - n
        if count == 0:
            table.pop(fact, None)
        else:
            table[fact] = count
        return count

    def set_counts(self, symbol: str, counts: Mapping[OValue, int]) -> None:
        """Replace ``symbol``'s whole table (a rebuild after a DRed pass)."""
        self.counts[symbol] = {
            fact: count for fact, count in counts.items() if count != 0
        }

    def drop(self, symbol: str) -> None:
        self.counts.pop(symbol, None)

    def facts(self, symbol: str) -> Iterator[Tuple[OValue, int]]:
        """The supported facts of ``symbol`` with their counts."""
        return iter(self.counts.get(symbol, {}).items())

    def supported(self, symbol: str) -> int:
        """How many facts of ``symbol`` currently have a nonzero count."""
        return len(self.counts.get(symbol, {}))

    def total(self) -> int:
        """Total derivation count over all symbols (an observability sum)."""
        return sum(sum(t.values()) for t in self.counts.values())

    def negative_symbols(self) -> List[str]:
        """Symbols holding a negative count — the runtime's tilt sensor."""
        return sorted(
            symbol
            for symbol, table in self.counts.items()
            if any(count < 0 for count in table.values())
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{symbol}: {self.supported(symbol)} facts"
            for symbol in sorted(self.counts)
        )
        return f"SupportTable({parts})"
