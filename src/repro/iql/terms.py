"""IQL terms (Section 3.1).

The term language, for ``k ≥ 0``:

* each typed variable ``x`` is a term of its type,
* each relation name R is a term of type {T(R)}; each class name P is a
  term of type {P},
* for a variable ``x`` of class type P, the *dereference* ``x̂`` is a term
  of type T(P) — the paper's controlled indirection,
* ``{t1, ..., tk}`` is a set term, ``[A1: t1, ..., Ak: tk]`` a tuple term.

Constants are also admitted as terms here. The paper omits them "to
simplify the presentation as in Chandra and Harel" and notes they "can be
added easily without changing the framework" (Remark 3.1.1) — examples are
far more pleasant with them, so we add them.

Terms are immutable and hashable. Variable identity is by *name*: two
``Var("x", t)`` objects with the same name denote the same variable, and
the type checker verifies that a rule types each name consistently.

Every term optionally carries a source :class:`~repro.diagnostics.Span`
(set by the parser, ``None`` for programmatically built terms). Spans are
provenance, not identity: they are excluded from equality and hashing.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.diagnostics import Span
from repro.errors import TypeCheckError
from repro.typesys.expressions import ClassRef, SetOf, TupleOf, TypeExpr
from repro.schema.schema import Schema
from repro.values.ovalues import OValue, is_constant


class Term:
    """Base class for IQL terms."""

    __slots__ = ()

    def variables(self) -> FrozenSet["Var"]:
        """All variables occurring in this term."""
        return frozenset()

    def type_in(self, schema: Schema) -> TypeExpr:
        """The (static) type of this term over ``schema``."""
        raise NotImplementedError

    def is_ground(self) -> bool:
        return not self.variables()


class Var(Term):
    """A typed variable. Identity is by name; the type travels with it."""

    __slots__ = ("name", "type", "span")

    def __init__(self, name: str, type: TypeExpr, span: Optional[Span] = None):
        if not isinstance(name, str) or not name:
            raise TypeCheckError(f"variable name must be a non-empty string, got {name!r}")
        if not isinstance(type, TypeExpr):
            raise TypeCheckError(f"variable {name!r} needs a type expression, got {type!r}")
        self.name = name
        self.type = type
        self.span = span

    def variables(self) -> FrozenSet["Var"]:
        return frozenset([self])

    def type_in(self, schema: Schema) -> TypeExpr:
        return self.type

    @property
    def class_name(self) -> Optional[str]:
        """The class P when this variable has type P, else None."""
        return self.type.name if isinstance(self.type, ClassRef) else None

    def hat(self) -> "Deref":
        """The dereference x̂ of this (class-typed) variable."""
        return Deref(self)

    def __repr__(self):
        return self.name

    def __hash__(self):
        return hash((Var, self.name))

    def __eq__(self, other):
        return isinstance(other, Var) and self.name == other.name


class Const(Term):
    """A constant of the base domain D used as a term (Remark 3.1.1)."""

    __slots__ = ("value", "span")

    def __init__(self, value: OValue, span: Optional[Span] = None):
        if not is_constant(value):
            raise TypeCheckError(f"{value!r} is not a constant of D")
        self.value = value
        self.span = span

    def type_in(self, schema: Schema) -> TypeExpr:
        from repro.typesys.expressions import Base

        return Base()

    def __repr__(self):
        return repr(self.value)

    def __hash__(self):
        return hash((Const, self.value))

    def __eq__(self, other):
        return isinstance(other, Const) and self.value == other.value


class NameTerm(Term):
    """A relation or class name used as a term.

    R has type {T(R)} (the relation is a set of member values); P has type
    {P} (the class is a set of its oids).
    """

    __slots__ = ("name", "span")

    def __init__(self, name: str, span: Optional[Span] = None):
        if not isinstance(name, str) or not name:
            raise TypeCheckError(f"invalid relation/class name {name!r}")
        self.name = name
        self.span = span

    def type_in(self, schema: Schema) -> TypeExpr:
        if schema.is_relation(self.name):
            return SetOf(schema.relations[self.name])
        if schema.is_class(self.name):
            return SetOf(ClassRef(self.name))
        raise TypeCheckError(f"unknown relation/class {self.name!r}")

    def __repr__(self):
        return self.name

    def __hash__(self):
        return hash((NameTerm, self.name))

    def __eq__(self, other):
        return isinstance(other, NameTerm) and self.name == other.name


class Deref(Term):
    """x̂ — the value of the oid bound to ``var`` (Section 3.1).

    Only variables of class type may be dereferenced; the term's type is
    T(P). Dereferencing is the language's single, type-checked use of
    indirection.
    """

    __slots__ = ("var", "span")

    def __init__(self, var: Var, span: Optional[Span] = None):
        if not isinstance(var, Var):
            raise TypeCheckError(f"only variables can be dereferenced, got {var!r}")
        self.var = var
        self.span = span if span is not None else var.span

    def variables(self) -> FrozenSet[Var]:
        return frozenset([self.var])

    def type_in(self, schema: Schema) -> TypeExpr:
        if not isinstance(self.var.type, ClassRef):
            raise TypeCheckError(
                f"x̂ requires x of class type; {self.var.name!r} has type {self.var.type!r}"
            )
        name = self.var.type.name
        if not schema.is_class(name):
            raise TypeCheckError(f"variable {self.var.name!r} refers to unknown class {name!r}")
        return schema.classes[name]

    def __repr__(self):
        return f"{self.var.name}^"

    def __hash__(self):
        return hash((Deref, self.var))

    def __eq__(self, other):
        return isinstance(other, Deref) and self.var == other.var


class SetTerm(Term):
    """``{t1, ..., tk}`` — a set of terms, all of the same type; type {t}."""

    __slots__ = ("terms", "span")

    def __init__(self, *terms: Term, span: Optional[Span] = None):
        for t in terms:
            if not isinstance(t, Term):
                raise TypeCheckError(f"not a term: {t!r}")
        self.terms: Tuple[Term, ...] = tuple(terms)
        self.span = span

    def variables(self) -> FrozenSet[Var]:
        out: FrozenSet[Var] = frozenset()
        for t in self.terms:
            out |= t.variables()
        return out

    def type_in(self, schema: Schema) -> TypeExpr:
        from repro.typesys.expressions import Empty

        if not self.terms:
            return SetOf(Empty())
        types = {t.type_in(schema) for t in self.terms}
        if len(types) == 1:
            return SetOf(types.pop())
        raise TypeCheckError(
            f"set term {self!r} mixes member types {sorted(map(repr, types))}"
        )

    def __repr__(self):
        return "{" + ", ".join(repr(t) for t in self.terms) + "}"

    def __hash__(self):
        return hash((SetTerm, self.terms))

    def __eq__(self, other):
        return isinstance(other, SetTerm) and self.terms == other.terms


class TupleTerm(Term):
    """``[A1: t1, ..., Ak: tk]`` — a tuple of terms; canonical attr order."""

    __slots__ = ("fields", "span")

    def __init__(
        self, fields: Mapping[str, Term] = None, *, span: Optional[Span] = None, **kwargs: Term
    ):
        items: Dict[str, Term] = dict(fields or {})
        self.span = span
        for attr, t in kwargs.items():
            if attr in items:
                raise TypeCheckError(f"duplicate attribute {attr!r}")
            items[attr] = t
        for attr, t in items.items():
            if not isinstance(t, Term):
                raise TypeCheckError(f"component {attr} is not a term: {t!r}")
        self.fields: Tuple[Tuple[str, Term], ...] = tuple(sorted(items.items()))

    def variables(self) -> FrozenSet[Var]:
        out: FrozenSet[Var] = frozenset()
        for _, t in self.fields:
            out |= t.variables()
        return out

    def type_in(self, schema: Schema) -> TypeExpr:
        return TupleOf({attr: t.type_in(schema) for attr, t in self.fields})

    def __repr__(self):
        inner = ", ".join(f"{attr}: {t!r}" for attr, t in self.fields)
        return f"[{inner}]"

    def __hash__(self):
        return hash((TupleTerm, self.fields))

    def __eq__(self, other):
        return isinstance(other, TupleTerm) and self.fields == other.fields


def as_term(value) -> Term:
    """Coerce a Python value into a term: constants wrap in :class:`Const`."""
    if isinstance(value, Term):
        return value
    if is_constant(value):
        return Const(value)
    raise TypeCheckError(f"cannot interpret {value!r} as a term")
