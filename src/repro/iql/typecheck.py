"""Static type checking of IQL programs (Sections 3.1 and 3.3).

The syntax of rules imposes:

1. the head is a *fact* — R(t), P(t), x̂(t) for set-valued x̂, or x̂ = t for
   non-set-valued x̂ — and is strictly typed,
2. each body literal is typed, where equality literals enjoy *union
   coercion*: ``t1 = t2`` is legal when t1 has type t and t2 type t ∨ t'
   (this is how Example 3.4.3 matches a value of a union type against its
   branches),
3. every variable occurring in the head but not the body has class type,
4. a variable name is typed consistently throughout a rule.

The paper argues (Section 3.3) that these checks guarantee soundness —
evaluation of a well-typed program only ever produces legal instances —
except for the inexpensive dynamic check of the weak-assignment rule (★),
which the evaluator performs.

The checker is a pure function from programs to (possibly empty) lists of
structured :class:`~repro.diagnostics.Diagnostic` objects with stable
``IQL1xx`` codes and source spans (``check_rule_diagnostics`` /
``check_program_diagnostics``); the historical error-based APIs remain as
thin wrappers: ``check_program`` converts diagnostics to
:class:`~repro.errors.TypeCheckError` and ``typecheck_program`` raises the
first one.
"""

from __future__ import annotations

from typing import List, Optional

from repro.diagnostics import Diagnostic, Span, diagnostic
from repro.errors import TypeCheckError
from repro.iql.literals import Choose, Equality, Literal, Membership
from repro.iql.program import Program
from repro.iql.rules import Rule
from repro.iql.terms import Deref, NameTerm, SetTerm, Term, TupleTerm, Var
from repro.schema.schema import Schema
from repro.typesys.expressions import (
    ClassRef,
    Empty,
    Intersection,
    SetOf,
    TupleOf,
    TypeExpr,
    Union,
)
from repro.typesys.reduction import intersection_free


def types_equal(a: TypeExpr, b: TypeExpr) -> bool:
    """Strict structural equality (types are canonical by construction)."""
    return a == b


def assignable(actual: TypeExpr, expected: TypeExpr) -> bool:
    """Sound subsumption for head typing: every value of ``actual`` is a
    value of ``expected``.

    Strict equality, plus the inclusions the value semantics gives for
    free: ⊥ into anything, {⊥} (the type of the literal empty-set term)
    into any set type, a branch into its union, and the congruent closure
    through set and tuple constructors. This is a mild, semantics-preserving
    liberalization of the paper's "heads are typed": Example 3.4.2's head
    ``R1({ })`` types as {⊥} against T(R1) = {D}.
    """
    if actual == expected:
        return True
    if isinstance(actual, Empty):
        return True
    if isinstance(expected, Union):
        return any(assignable(actual, member) for member in expected.members)
    if isinstance(actual, Union):
        return all(assignable(member, expected) for member in actual.members)
    if isinstance(actual, SetOf) and isinstance(expected, SetOf):
        return assignable(actual.element, expected.element)
    if isinstance(actual, TupleOf) and isinstance(expected, TupleOf):
        if actual.attributes != expected.attributes:
            return False
        return all(
            assignable(ct, expected.component(attr)) for attr, ct in actual.fields
        )
    return False


def coercible(a: TypeExpr, b: TypeExpr) -> bool:
    """The union-coercion relation of rule-body equalities.

    ``a`` is coercible to ``b`` when a = b, or b is a union having a as a
    member (t versus t ∨ t'), or — to cover nested cases like the decoding
    programs of Lemma 4.2.6 — the two types have a non-empty intersection
    after intersection elimination over disjoint assignments. The last
    clause is a conservative semantic reading of "typed modulo coercion":
    an equality between types that can never share a value is surely an
    error; one between overlapping types is meaningful.
    """
    if a == b:
        return True
    if isinstance(b, Union) and a in b.members:
        return True
    if isinstance(a, Union) and b in a.members:
        return True
    reduced = intersection_free(Intersection.make(a, b))
    return not isinstance(reduced, Empty)


class RuleDiagnostics:
    """Collects diagnostics for one rule, with rule context in every message."""

    def __init__(self, rule: Rule):
        self.rule = rule
        self.errors: List[Diagnostic] = []

    def error(self, message: str, code: str = "IQL104", span: Optional[Span] = None) -> None:
        self.errors.append(
            diagnostic(
                code,
                f"{message} — in rule: {self.rule!r}",
                span=span if span is not None else self.rule.span,
                rule_label=self.rule.display_label(),
            )
        )


def check_rule_diagnostics(rule: Rule, schema: Schema) -> List[Diagnostic]:
    """All static errors in one rule, as structured diagnostics."""
    diag = RuleDiagnostics(rule)
    _check_variable_consistency(rule, diag)
    _check_names_exist(rule, schema, diag)
    if diag.errors:
        return diag.errors  # cascading checks would only produce noise
    _check_head(rule, schema, diag)
    _check_body(rule, schema, diag)
    for var in rule.invention_variables():
        if not isinstance(var.type, ClassRef):
            diag.error(
                f"variable {var.name!r} occurs only in the head "
                f"but has non-class type {var.type!r}",
                code="IQL106",
                span=var.span,
            )
    if rule.delete and rule.invention_variables():
        diag.error(
            "a deletion rule cannot have head-only (invention) variables", code="IQL107"
        )
    if rule.has_choose() and rule.delete:
        diag.error("choose and deletion cannot be combined in one rule", code="IQL108")
    return diag.errors


def _to_error(diag: Diagnostic) -> TypeCheckError:
    return TypeCheckError(diag.message, rule_label=diag.rule_label, span=diag.span)


def check_rule(rule: Rule, schema: Schema) -> List[TypeCheckError]:
    """All static errors in one rule (legacy error-object form)."""
    return [_to_error(d) for d in check_rule_diagnostics(rule, schema)]


def _all_terms(literal: Literal):
    if isinstance(literal, Membership):
        yield literal.container
        yield literal.element
    elif isinstance(literal, Equality):
        yield literal.left
        yield literal.right


def _subterms(term: Term):
    yield term
    if isinstance(term, SetTerm):
        for sub in term.terms:
            yield from _subterms(sub)
    elif isinstance(term, TupleTerm):
        for _, sub in term.fields:
            yield from _subterms(sub)
    elif isinstance(term, Deref):
        yield term.var


def _check_variable_consistency(rule: Rule, diag: RuleDiagnostics) -> None:
    seen = {}
    for literal in (rule.head, *rule.body):
        for top in _all_terms(literal):
            for term in _subterms(top):
                if isinstance(term, Var):
                    prior = seen.get(term.name)
                    if prior is None:
                        seen[term.name] = term.type
                    elif prior != term.type:
                        diag.error(
                            f"variable {term.name!r} typed both {prior!r} and {term.type!r}",
                            code="IQL101",
                            span=term.span,
                        )


def _check_names_exist(rule: Rule, schema: Schema, diag: RuleDiagnostics) -> None:
    for literal in (rule.head, *rule.body):
        for top in _all_terms(literal):
            for term in _subterms(top):
                if isinstance(term, NameTerm) and term.name not in schema.names:
                    diag.error(
                        f"unknown relation/class {term.name!r}",
                        code="IQL102",
                        span=term.span,
                    )
                if isinstance(term, Var) and isinstance(term.type, ClassRef):
                    if not schema.is_class(term.type.name):
                        diag.error(
                            f"variable {term.name!r} has type {term.type!r}, "
                            f"but no such class exists",
                            code="IQL103",
                            span=term.span,
                        )
                unknown = (
                    term.type.class_names() - set(schema.classes)
                    if isinstance(term, Var)
                    else frozenset()
                )
                if unknown:
                    diag.error(
                        f"variable {term.name!r} mentions unknown classes {sorted(unknown)}",
                        code="IQL103",
                        span=term.span,
                    )


def _check_head(rule: Rule, schema: Schema, diag: RuleDiagnostics) -> None:
    head = rule.head
    head_span = head.span if head.span is not None else rule.span
    if isinstance(head, Membership):
        container = head.container
        if isinstance(container, NameTerm):
            name = container.name
            expected = schema.type_of(name)
            if schema.is_class(name):
                expected = ClassRef(name)
            try:
                actual = head.element.type_in(schema)
            except TypeCheckError as exc:
                diag.error(str(exc), span=head.element.span)
                return
            if not assignable(actual, expected):
                diag.error(
                    f"head {name}(t) requires t of type {expected!r}, got {actual!r}",
                    span=head_span,
                )
        elif isinstance(container, Deref):
            try:
                value_type = container.type_in(schema)
            except TypeCheckError as exc:
                diag.error(str(exc), span=container.span)
                return
            if not isinstance(value_type, SetOf):
                diag.error(
                    f"head x̂(t) requires x̂ set valued; {container!r} has type {value_type!r}",
                    span=head_span,
                )
                return
            try:
                actual = head.element.type_in(schema)
            except TypeCheckError as exc:
                diag.error(str(exc), span=head.element.span)
                return
            if not assignable(actual, value_type.element):
                diag.error(
                    f"head {container!r}(t) requires t of type "
                    f"{value_type.element!r}, got {actual!r}",
                    span=head_span,
                )
        else:
            diag.error(f"illegal head container {container!r}", code="IQL109", span=head_span)
    elif isinstance(head, Equality):
        left = head.left
        if not isinstance(left, Deref):
            diag.error("an equality head must have the form x̂ = t", code="IQL109", span=head_span)
            return
        try:
            value_type = left.type_in(schema)
            actual = head.right.type_in(schema)
        except TypeCheckError as exc:
            diag.error(str(exc), span=head_span)
            return
        if isinstance(value_type, SetOf):
            diag.error(
                f"head x̂ = t requires x̂ non-set valued; {left!r} has type {value_type!r}",
                span=head_span,
            )
            return
        if not assignable(actual, value_type):
            diag.error(
                f"head {left!r} = t requires t of type {value_type!r}, got {actual!r}",
                span=head_span,
            )
    else:
        diag.error(f"illegal head literal {head!r}", code="IQL109", span=head_span)


def _check_body(rule: Rule, schema: Schema, diag: RuleDiagnostics) -> None:
    for literal in rule.body:
        if isinstance(literal, Choose):
            continue
        span = literal.span if literal.span is not None else rule.span
        if isinstance(literal, Membership):
            try:
                container_type = literal.container.type_in(schema)
                element_type = literal.element.type_in(schema)
            except TypeCheckError as exc:
                diag.error(str(exc), code="IQL105", span=span)
                continue
            if not isinstance(container_type, SetOf):
                diag.error(
                    f"body literal {literal!r}: container has non-set type "
                    f"{container_type!r}",
                    code="IQL105",
                    span=span,
                )
                continue
            if not (
                assignable(element_type, container_type.element)
                or coercible(element_type, container_type.element)
            ):
                diag.error(
                    f"body literal {literal!r}: element type {element_type!r} "
                    f"does not match member type {container_type.element!r}",
                    code="IQL105",
                    span=span,
                )
        elif isinstance(literal, Equality):
            try:
                left_type = literal.left.type_in(schema)
                right_type = literal.right.type_in(schema)
            except TypeCheckError as exc:
                diag.error(str(exc), code="IQL105", span=span)
                continue
            if not coercible(left_type, right_type):
                diag.error(
                    f"body equality {literal!r}: types {left_type!r} and "
                    f"{right_type!r} cannot coerce (no common values)",
                    code="IQL105",
                    span=span,
                )
        else:
            diag.error(f"unknown body literal {literal!r}", code="IQL105", span=span)


def check_program_diagnostics(program: Program, schema: Optional[Schema] = None) -> List[Diagnostic]:
    """All static errors in the program, as structured diagnostics.

    ``schema`` overrides the program's own schema when the caller wants to
    check the rules against a different typing environment (the
    ``analyze(program, schema)`` entry point of :mod:`repro.analysis`).
    """
    schema = schema if schema is not None else program.schema
    diagnostics: List[Diagnostic] = []
    for rule in program.rules:
        diagnostics.extend(check_rule_diagnostics(rule, schema))
    return diagnostics


def check_program(program: Program) -> List[TypeCheckError]:
    """All static errors in the program (empty list = well typed)."""
    return [_to_error(d) for d in check_program_diagnostics(program)]


def typecheck_program(program: Program) -> Program:
    """Raise the first static error, or return the program unchanged.

    Use as a checked smart constructor::

        program = typecheck_program(Program(schema, rules=[...], ...))
    """
    errors = check_program(program)
    if errors:
        raise errors[0]
    return program
