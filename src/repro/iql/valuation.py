"""Valuations, term evaluation and pattern matching (Section 3.2).

A *valuation* θ (given an instance I) is a partial map from variables to
o-values such that θx lies in the interpretation of x's type given π, and
the constants of θx come from constants(I). Valuations extend to terms:

* θR and θP are the current extensions of the relation/class,
* θx̂ is ν(θx) — the set of its ô(v) facts for set-valued oids, the ô = v
  value otherwise (undefined if ν is),
* set and tuple terms evaluate componentwise.

This module provides the two directions the evaluator needs:

* :func:`eval_term` — evaluate a term under (possibly partial) bindings;
  returns None when a variable is unbound or a dereference undefined,
* :func:`match` — extend bindings so that a term evaluates to a given
  value (the generator yields every such extension),
* :func:`solve_body` — enumerate all valuations of a rule body, choosing a
  literal order greedily and falling back to type-interpretation
  enumeration for variables no literal can bind (the non-range-restricted
  case, e.g. the ``R1(X) ← X = X`` powerset program of Example 3.4.2).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EvaluationError
from repro.iql.literals import Choose, Equality, Literal, Membership
from repro.iql.terms import Const, Deref, NameTerm, SetTerm, Term, TupleTerm, Var
from repro.schema.instance import Instance
from repro.typesys.enumeration import enumerate_type
from repro.typesys.interpretation import member
from repro.values.ovalues import Oid, OSet, OTuple, OValue, sort_key

Bindings = Dict[Var, OValue]


def eval_term(term: Term, bindings: Bindings, instance: Instance) -> Optional[OValue]:
    """θt, or None if the term is not yet evaluable under ``bindings``."""
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        return bindings.get(term)
    if isinstance(term, NameTerm):
        name = term.name
        if instance.schema.is_relation(name):
            return OSet(instance.relations[name])
        return OSet(instance.classes[name])
    if isinstance(term, Deref):
        oid = bindings.get(term.var)
        if oid is None:
            return None
        if not isinstance(oid, Oid):
            raise EvaluationError(f"{term.var.name!r} bound to non-oid {oid!r} in a dereference")
        return instance.value_of(oid)
    if isinstance(term, SetTerm):
        elements = []
        for sub in term.terms:
            v = eval_term(sub, bindings, instance)
            if v is None:
                return None
            elements.append(v)
        return OSet(elements)
    if isinstance(term, TupleTerm):
        fields = {}
        for attr, sub in term.fields:
            v = eval_term(sub, bindings, instance)
            if v is None:
                return None
            fields[attr] = v
        return OTuple(fields)
    raise EvaluationError(f"not a term: {term!r}")


def is_evaluable(term: Term, bindings: Bindings) -> bool:
    """True iff :func:`eval_term` would produce a value (all vars bound and,
    for dereferences, the oid's value defined is still checked at eval time)."""
    return all(var in bindings for var in term.variables())


def match(
    term: Term, value: OValue, bindings: Bindings, instance: Instance
) -> Iterator[Bindings]:
    """All extensions of ``bindings`` making ``term`` evaluate to ``value``.

    Variable bindings respect the valuation conditions: the value must
    belong to the variable's type interpretation given the current π (this
    is where class-typed variables refuse oids of other classes, and where
    union coercion in bodies is effectively decided).
    """
    if isinstance(term, Const):
        if term.value == value:
            yield bindings
        return
    if isinstance(term, Var):
        bound = bindings.get(term)
        if bound is not None:
            if bound == value:
                yield bindings
            return
        if member(value, term.type, instance.classes):
            extended = dict(bindings)
            extended[term] = value
            yield extended
        return
    if isinstance(term, NameTerm):
        if eval_term(term, bindings, instance) == value:
            yield bindings
        return
    if isinstance(term, Deref):
        oid = bindings.get(term.var)
        if oid is not None:
            if instance.value_of(oid) == value:
                yield bindings
            return
        # Unbound dereference: find class oids whose value matches.
        class_name = term.var.type.name
        for candidate in sorted(instance.classes.get(class_name, ()), key=sort_key):
            if instance.value_of(candidate) == value:
                extended = dict(bindings)
                extended[term.var] = candidate
                yield extended
        return
    if isinstance(term, TupleTerm):
        if not isinstance(value, OTuple):
            return
        attrs = tuple(attr for attr, _ in term.fields)
        if attrs != value.attributes:
            return
        yield from _match_sequence(
            [(sub, value[attr]) for attr, sub in term.fields], bindings, instance
        )
        return
    if isinstance(term, SetTerm):
        if not isinstance(value, OSet):
            return
        if not term.terms:
            if len(value) == 0:
                yield bindings
            return
        if len(value) == 0:
            return  # a non-empty list of terms always denotes ≥ 1 element
        elements = sorted(value, key=sort_key)
        seen = set()
        for assignment in _set_assignments(len(term.terms), elements):
            for extended in _match_sequence(
                list(zip(term.terms, assignment)), bindings, instance
            ):
                # The term set must equal the value exactly (cover check).
                result = eval_term(term, extended, instance)
                if result == value:
                    key = tuple(sorted((v.name, repr(extended[v])) for v in term.variables()))
                    if key not in seen:
                        seen.add(key)
                        yield extended
        return
    raise EvaluationError(f"not a term: {term!r}")


def _match_sequence(
    pairs: List[Tuple[Term, OValue]], bindings: Bindings, instance: Instance
) -> Iterator[Bindings]:
    if not pairs:
        yield bindings
        return
    (term, value), rest = pairs[0], pairs[1:]
    for extended in match(term, value, bindings, instance):
        yield from _match_sequence(rest, extended, instance)


def _set_assignments(k: int, elements: List[OValue]) -> Iterator[Tuple[OValue, ...]]:
    """All ways to assign ``k`` term slots to elements (onto not required
    here; the cover check in :func:`match` enforces exact equality)."""
    if k == 0:
        yield ()
        return
    for first in elements:
        for rest in _set_assignments(k - 1, elements):
            yield (first,) + rest


# -- literal satisfaction under full bindings ------------------------------------


def satisfies(literal: Literal, bindings: Bindings, instance: Instance) -> bool:
    """I ⊨ θ[literal], for θ defined on all the literal's variables."""
    if isinstance(literal, Choose):
        return True  # handled by the evaluator's invention machinery
    if isinstance(literal, Membership):
        container = eval_term(literal.container, bindings, instance)
        element = eval_term(literal.element, bindings, instance)
        if container is None or element is None:
            return False
        if not isinstance(container, OSet):
            raise EvaluationError(
                f"membership against non-set value {container!r} in {literal!r}"
            )
        return (element in container) == literal.positive
    if isinstance(literal, Equality):
        left = eval_term(literal.left, bindings, instance)
        right = eval_term(literal.right, bindings, instance)
        if left is None or right is None:
            return False
        return (left == right) == literal.positive
    raise EvaluationError(f"unknown literal {literal!r}")


# -- body solving ------------------------------------------------------------------


def solve_body(
    body: Sequence[Literal],
    instance: Instance,
    enumeration_budget: int = 100_000,
    initial: Optional[Bindings] = None,
) -> Iterator[Bindings]:
    """All valuations θ of the body's variables with I ⊨ θ(body).

    Strategy: repeatedly pick a *processable* literal — a positive
    membership whose container is evaluable, or a positive equality with
    one side evaluable — and branch on its matches; literals whose
    variables are all bound become filters. When nothing is processable,
    fall back to enumerating one unbound variable's type interpretation
    restricted to constants(I) (the valuation definition makes this the
    exact search space). Negative literals are only ever used as filters,
    as inflationary Datalog¬ requires.
    """
    constants = sorted(instance.constants(), key=sort_key)
    literals = [lit for lit in body if not isinstance(lit, Choose)]

    def process(remaining: List[Literal], bindings: Bindings) -> Iterator[Bindings]:
        if not remaining:
            yield dict(bindings)
            return

        # 1. Filters first: fully-bound literals just get checked.
        for i, lit in enumerate(remaining):
            if all(v in bindings for v in lit.variables()):
                if satisfies(lit, bindings, instance):
                    yield from process(remaining[:i] + remaining[i + 1 :], bindings)
                return

        # 2. A positive membership with evaluable container binds by iteration.
        for i, lit in enumerate(remaining):
            if (
                isinstance(lit, Membership)
                and lit.positive
                and is_evaluable(lit.container, bindings)
            ):
                rest = remaining[:i] + remaining[i + 1 :]
                # Iterate the container without materializing an OSet: the
                # inner loop of every join runs through here.
                if isinstance(lit.container, NameTerm):
                    name = lit.container.name
                    if instance.schema.is_relation(name):
                        members = list(instance.relations[name])
                    else:
                        members = list(instance.classes[name])
                else:
                    container = eval_term(lit.container, bindings, instance)
                    if container is None:
                        return  # undefined dereference: no facts to match
                    if not isinstance(container, OSet):
                        raise EvaluationError(
                            f"membership against non-set value {container!r} in {lit!r}"
                        )
                    members = list(container)
                for element in members:
                    for extended in match(lit.element, element, bindings, instance):
                        yield from process(rest, extended)
                return

        # 3. A positive equality with one evaluable side binds by matching.
        for i, lit in enumerate(remaining):
            if isinstance(lit, Equality) and lit.positive:
                rest = remaining[:i] + remaining[i + 1 :]
                for known, pattern in ((lit.left, lit.right), (lit.right, lit.left)):
                    if is_evaluable(known, bindings):
                        value = eval_term(known, bindings, instance)
                        if value is None:
                            return  # undefined dereference: unsatisfiable
                        for extended in match(pattern, value, bindings, instance):
                            yield from process(rest, extended)
                        return

        # 4. Dead end: enumerate the type interpretation of one unbound var.
        unbound = sorted(
            {v for lit in remaining for v in lit.variables() if v not in bindings},
            key=lambda v: v.name,
        )
        if not unbound:  # pragma: no cover - step 1 would have consumed these
            raise EvaluationError(f"stuck with fully bound literals: {remaining!r}")
        var = unbound[0]
        for value in enumerate_type(
            var.type, constants, instance.classes, budget=enumeration_budget
        ):
            extended = dict(bindings)
            extended[var] = value
            yield from process(remaining, extended)

    yield from process(list(literals), dict(initial or {}))
