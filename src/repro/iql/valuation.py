"""Valuations, term evaluation and pattern matching (Section 3.2).

A *valuation* θ (given an instance I) is a partial map from variables to
o-values such that θx lies in the interpretation of x's type given π, and
the constants of θx come from constants(I). Valuations extend to terms:

* θR and θP are the current extensions of the relation/class,
* θx̂ is ν(θx) — the set of its ô(v) facts for set-valued oids, the ô = v
  value otherwise (undefined if ν is),
* set and tuple terms evaluate componentwise.

This module provides the two directions the evaluator needs:

* :func:`eval_term` — evaluate a term under (possibly partial) bindings;
  returns None when a variable is unbound or a dereference undefined,
* :func:`match` — extend bindings so that a term evaluates to a given
  value (the generator yields every such extension),
* :func:`solve_body` — enumerate all valuations of a rule body through a
  *selectivity-ordered plan*: candidate literals are scored by estimated
  fan-out (index probe < small-container scan < large scan < equality
  match < type enumeration) and the cheapest is processed first, with the
  order decided once per (body, bound-variable-set) and memoized in the
  caller-supplied plan cache (normally the owning
  :class:`~repro.iql.rules.Rule`'s). The enumeration fallback covers
  variables no literal can bind (the non-range-restricted case, e.g. the
  ``R1(X) ← X = X`` powerset program of Example 3.4.2).

Join-level index use (hash probes instead of scans) is routed through
:mod:`repro.iql.indexes`; pass ``use_indexes=False`` to force the original
generate-and-test behaviour — the differential tests use that as the
oracle.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import EvaluationError
from repro.iql.literals import Choose, Equality, Literal, Membership
from repro.iql.stats import FILTER_SELECTIVITY, Statistics
from repro.iql.terms import Const, Deref, NameTerm, SetTerm, Term, TupleTerm, Var
from repro.schema.instance import Instance
from repro.typesys.enumeration import enumerate_type
from repro.values.ovalues import Oid, OSet, OTuple, OValue, sort_key, sorted_elements

Bindings = Dict[Var, OValue]

#: Containers at or below this size count as "small scans" for the planner.
SMALL_SCAN = 16


def eval_term(term: Term, bindings: Bindings, instance: Instance) -> Optional[OValue]:
    """θt, or None if the term is not yet evaluable under ``bindings``."""
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        return bindings.get(term)
    if isinstance(term, NameTerm):
        name = term.name
        if instance.schema.is_relation(name):
            return OSet(instance.relations[name])
        return OSet(instance.classes[name])
    if isinstance(term, Deref):
        oid = bindings.get(term.var)
        if oid is None:
            return None
        if not isinstance(oid, Oid):
            raise EvaluationError(f"{term.var.name!r} bound to non-oid {oid!r} in a dereference")
        return instance.value_of(oid)
    if isinstance(term, SetTerm):
        elements = []
        for sub in term.terms:
            v = eval_term(sub, bindings, instance)
            if v is None:
                return None
            elements.append(v)
        return OSet(elements)
    if isinstance(term, TupleTerm):
        fields = {}
        for attr, sub in term.fields:
            v = eval_term(sub, bindings, instance)
            if v is None:
                return None
            fields[attr] = v
        return OTuple(fields)
    raise EvaluationError(f"not a term: {term!r}")


def is_evaluable(term: Term, bindings: Bindings) -> bool:
    """True iff :func:`eval_term` would produce a value (all vars bound and,
    for dereferences, the oid's value defined is still checked at eval time)."""
    return all(var in bindings for var in term.variables())


def match(
    term: Term,
    value: OValue,
    bindings: Bindings,
    instance: Instance,
    use_indexes: bool = True,
    stats=None,
) -> Iterator[Bindings]:
    """All extensions of ``bindings`` making ``term`` evaluate to ``value``.

    Variable bindings respect the valuation conditions: the value must
    belong to the variable's type interpretation given the current π (this
    is where class-typed variables refuse oids of other classes, and where
    union coercion in bodies is effectively decided).

    With ``use_indexes`` (the default) an *unbound* dereference probes the
    class's reverse ν-index instead of scanning and re-sorting the whole
    class per call; ``stats`` (any object with ``index_probes`` /
    ``index_scans_avoided`` counters) records what that saved.
    """
    if isinstance(term, Const):
        if term.value == value:
            yield bindings
        return
    if isinstance(term, Var):
        bound = bindings.get(term)
        if bound is not None:
            if bound == value:
                yield bindings
            return
        if instance.member_of(value, term.type):
            extended = dict(bindings)
            extended[term] = value
            yield extended
        return
    if isinstance(term, NameTerm):
        if eval_term(term, bindings, instance) == value:
            yield bindings
        return
    if isinstance(term, Deref):
        oid = bindings.get(term.var)
        if oid is not None:
            if instance.value_of(oid) == value:
                yield bindings
            return
        # Unbound dereference: find class oids whose value matches.
        class_name = term.var.type.name
        if use_indexes:
            bucket = instance.indexes.deref_probe(class_name, value)
            if stats is not None:
                stats.index_probes += 1
                stats.index_scans_avoided += max(
                    0, len(instance.classes.get(class_name, ())) - len(bucket)
                )
            candidates = sorted(bucket, key=sort_key)
        else:
            candidates = [
                c
                for c in sorted(instance.classes.get(class_name, ()), key=sort_key)
                if instance.value_of(c) == value
            ]
        for candidate in candidates:
            extended = dict(bindings)
            extended[term.var] = candidate
            yield extended
        return
    if isinstance(term, TupleTerm):
        if not isinstance(value, OTuple):
            return
        attrs = tuple(attr for attr, _ in term.fields)
        if attrs != value.attributes:
            return
        yield from _match_sequence(
            [(sub, value[attr]) for attr, sub in term.fields],
            bindings,
            instance,
            use_indexes,
            stats,
        )
        return
    if isinstance(term, SetTerm):
        if not isinstance(value, OSet):
            return
        if not term.terms:
            if len(value) == 0:
                yield bindings
            return
        if len(value) == 0:
            return  # a non-empty list of terms always denotes ≥ 1 element
        elements = sorted_elements(value)
        seen = set()
        for assignment in _set_assignments(len(term.terms), elements):
            for extended in _match_sequence(
                list(zip(term.terms, assignment)), bindings, instance, use_indexes, stats
            ):
                # The term set must equal the value exactly (cover check).
                result = eval_term(term, extended, instance)
                if result == value:
                    key = tuple(sorted((v.name, repr(extended[v])) for v in term.variables()))
                    if key not in seen:
                        seen.add(key)
                        yield extended
        return
    raise EvaluationError(f"not a term: {term!r}")


def _match_sequence(
    pairs: List[Tuple[Term, OValue]],
    bindings: Bindings,
    instance: Instance,
    use_indexes: bool = True,
    stats=None,
) -> Iterator[Bindings]:
    if not pairs:
        yield bindings
        return
    (term, value), rest = pairs[0], pairs[1:]
    for extended in match(term, value, bindings, instance, use_indexes, stats):
        yield from _match_sequence(rest, extended, instance, use_indexes, stats)


def _set_assignments(k: int, elements: List[OValue]) -> Iterator[Tuple[OValue, ...]]:
    """All ways to assign ``k`` term slots to elements (onto not required
    here; the cover check in :func:`match` enforces exact equality)."""
    if k == 0:
        yield ()
        return
    for first in elements:
        for rest in _set_assignments(k - 1, elements):
            yield (first,) + rest


# -- literal satisfaction under full bindings ------------------------------------


def satisfies(literal: Literal, bindings: Bindings, instance: Instance) -> bool:
    """I ⊨ θ[literal], for θ defined on all the literal's variables."""
    if isinstance(literal, Choose):
        return True  # handled by the evaluator's invention machinery
    if isinstance(literal, Membership):
        if isinstance(literal.container, NameTerm):
            # Fast path: test against the stored extension instead of
            # materializing it as an OSet — this is what makes a
            # fully-bound relation membership a unit-cost filter step.
            element = eval_term(literal.element, bindings, instance)
            if element is None:
                return False
            name = literal.container.name
            members = (
                instance.relations[name]
                if instance.schema.is_relation(name)
                else instance.classes[name]
            )
            return (element in members) == literal.positive
        container = eval_term(literal.container, bindings, instance)
        element = eval_term(literal.element, bindings, instance)
        if container is None or element is None:
            return False
        if not isinstance(container, OSet):
            raise EvaluationError(
                f"membership against non-set value {container!r} in {literal!r}"
            )
        return (element in container) == literal.positive
    if isinstance(literal, Equality):
        left = eval_term(literal.left, bindings, instance)
        right = eval_term(literal.right, bindings, instance)
        if left is None or right is None:
            return False
        return (left == right) == literal.positive
    raise EvaluationError(f"unknown literal {literal!r}")


# -- body solving: the cost-based planner -------------------------------------------
#
# A *plan* is a tuple of steps, each one of
#
#   ("filter", lit)              check a fully-bound literal,
#   ("member", lit, probes)      branch on a positive membership; ``probes``
#                                is a tuple of (attr, subterm) pairs usable
#                                as hash-index probes, or () for a scan,
#   ("equal", lit, left_known)   branch on a positive equality, evaluating
#                                the known side and matching the other,
#   ("enum", var)                enumerate one variable's type interpretation.
#
# The plan depends only on the body and the set of initially-bound
# variables (each generator step binds exactly its literal's variables, so
# the bound set evolves deterministically along the plan); it is memoized
# per (body, bound-set, use_indexes, costed) in the caller's plan cache.
#
# Two planners emit these steps. The *static* one (``costed=False``) keeps
# the original lexicographic ranks — index probe < small scan < large scan
# < equality — as the A/B baseline. The *cost-based* one (``costed=True``,
# the evaluator default) scores every candidate with the cardinality
# statistics of :mod:`repro.iql.stats`: a probe costs its estimated bucket
# (size/NDV per probed attribute), a scan its container size, equalities
# their pattern's branching factor — and the running estimate of the
# intermediate result size multiplies into every later step, so join
# cardinality propagates along the partial plan. Estimates affect speed,
# never the solution set: every literal is still checked on every
# valuation. Cost-based plans additionally carry their per-step estimates
# and live row counters (:class:`Plan`), which the drift check of
# :func:`repro.iql.stats.check_drift` compares to trigger replanning.


def _tuple_probes(element: Term, bound: Set[Var]) -> Tuple[Tuple[str, Term], ...]:
    """Top-level tuple components evaluable under ``bound`` — index probes."""
    if not isinstance(element, TupleTerm):
        return ()
    return tuple(
        (attr, sub)
        for attr, sub in element.fields
        if all(v in bound for v in sub.variables())
    )


def _contains_set_term(term: Term) -> bool:
    if isinstance(term, SetTerm):
        return True
    if isinstance(term, TupleTerm):
        return any(_contains_set_term(sub) for _, sub in term.fields)
    return False


class Plan(tuple):
    """A step sequence plus the metadata the feedback loop needs.

    Behaves exactly like the plain step tuple it used to be (indexing,
    iteration, hashing), with four attributes on the side:

    * ``estimates`` — per-step estimated intermediate cardinality (rows
      *out* of each step, join-propagated), or None for static plans,
    * ``counts`` — live row counters, one per step plus a final-output
      cell; maintained at generator steps by both the interpreter and the
      compiled kernels,
    * ``bound_before`` — the bound-variable set entering each step (the
      feedback key space of :func:`repro.iql.stats.observed_fanouts`),
    * ``replans`` — how many times this (body, bound-set) has already been
      replanned from feedback (capped by ``stats.MAX_REPLANS``).
    """

    estimates: Optional[Tuple[float, ...]]
    counts: List[int]
    bound_before: Tuple[FrozenSet[Var], ...]
    replans: int


def _finish_plan(
    steps: List[tuple],
    estimates: Optional[List[float]],
    bound_before: List[FrozenSet[Var]],
    replans: int,
) -> Plan:
    plan = Plan(steps)
    plan.estimates = tuple(estimates) if estimates is not None else None
    plan.counts = [0] * (len(steps) + 1)
    plan.bound_before = tuple(bound_before)
    plan.replans = replans
    return plan


def _generator_step(lit: Literal, bound: Set[Var], instance: Instance, use_indexes: bool):
    """(cost, step) if ``lit`` can generate bindings now, else None.

    The *static* ranking, kept as the A/B baseline (``costed=False``):
    cost is a (rank, estimate) pair ordered lexicographically,
    rank 0 index probe < 1 small scan < 2 large scan < 3 equality match;
    the enumeration fallback (rank 4, implicit) is never chosen while any
    literal is processable. Note the known deficiencies the cost-based
    planner fixes: probes are costed at full relation size, deref
    containers and set patterns at magic constants.
    """
    if isinstance(lit, Membership) and lit.positive:
        container = lit.container
        if not all(v in bound for v in container.variables()):
            return None
        if isinstance(container, NameTerm):
            name = container.name
            if instance.schema.is_relation(name):
                size = len(instance.relations[name])
                if use_indexes:
                    probes = _tuple_probes(lit.element, bound)
                    if probes:
                        return ((0, size), ("member", lit, probes))
            else:
                size = len(instance.classes[name])
            rank = 1 if size <= SMALL_SCAN else 2
            return ((rank, size), ("member", lit, ()))
        # Deref / set-term containers: size unknown until evaluated; treat
        # as a small scan (dereferenced sets are typically narrow).
        return ((1, SMALL_SCAN // 2), ("member", lit, ()))
    if isinstance(lit, Equality) and lit.positive:
        left_known = all(v in bound for v in lit.left.variables())
        right_known = all(v in bound for v in lit.right.variables())
        if left_known or right_known:
            pattern = lit.right if left_known else lit.left
            # Set patterns branch combinatorially; plain patterns bind 1:1.
            estimate = 64 if _contains_set_term(pattern) else 1
            return ((3, estimate), ("equal", lit, left_known))
    return None


def _costed_candidate(
    lit: Literal,
    bound: Set[Var],
    instance: Instance,
    use_indexes: bool,
    statistics: Statistics,
    observed: Optional[Dict[tuple, float]],
    snapshot: FrozenSet[Var],
):
    """(work, fan-out, step) under the cost model, or None.

    Work estimates candidates *examined* per input row (a probe examines
    its smallest bucket, a scan the whole container); fan-out estimates
    rows *produced* per input row (a multi-attribute probe intersects, so
    its fan-out can be far below its work). ``observed`` — measured
    fan-outs from a previous plan of the same body (keyed by literal and
    bound set) — overrides the model where available: that is the replan
    half of the feedback loop.
    """
    obs = observed.get((lit, snapshot)) if observed else None
    if isinstance(lit, Membership) and lit.positive:
        container = lit.container
        if not all(v in bound for v in container.variables()):
            return None
        if isinstance(container, NameTerm):
            name = container.name
            if instance.schema.is_relation(name):
                size = float(len(instance.relations[name]))
                if use_indexes:
                    probes = _tuple_probes(lit.element, bound)
                    if probes:
                        work, fanout = statistics.bucket_estimate(
                            name, tuple(attr for attr, _ in probes)
                        )
                        if obs is not None:
                            # A probe examines at least what it produces.
                            work = fanout = max(obs, EST_FLOOR)
                        return (work, fanout, ("member", lit, probes))
                fanout = size if obs is None else max(obs, EST_FLOOR)
                return (size, fanout, ("member", lit, ()))
            size = float(len(instance.classes[name]))
            fanout = size if obs is None else max(obs, EST_FLOOR)
            return (size, fanout, ("member", lit, ()))
        width = statistics.container_width(container, use_indexes)
        fanout = width if obs is None else max(obs, EST_FLOOR)
        return (width, fanout, ("member", lit, ()))
    if isinstance(lit, Equality) and lit.positive:
        left_known = all(v in bound for v in lit.left.variables())
        right_known = all(v in bound for v in lit.right.variables())
        if left_known or right_known:
            known, pattern = (
                (lit.left, lit.right) if left_known else (lit.right, lit.left)
            )
            if _contains_set_term(pattern):
                branching = statistics.set_branching(pattern, known, use_indexes)
            else:
                branching = 1.0
            fanout = branching if obs is None else max(obs, EST_FLOOR)
            return (branching, fanout, ("equal", lit, left_known))
    return None


#: Estimates never fall to zero entirely (a chosen step costs ≥ a lookup).
EST_FLOOR = 0.125

#: Ceiling on the propagated intermediate-size estimate (overflow guard).
EST_CEILING = 1e18


def plan_body(
    literals: Sequence[Literal],
    bound_vars: FrozenSet[Var],
    instance: Instance,
    use_indexes: bool = True,
    costed: bool = False,
    observed: Optional[Dict[tuple, float]] = None,
    replans: int = 0,
) -> Plan:
    """The cost-ordered step sequence for ``literals``.

    With ``costed=False`` the original static ranks decide (the A/B
    baseline); with ``costed=True`` each candidate is scored
    ``est_in * (work + fan-out)`` against the live cardinality statistics,
    with ``est_in`` the estimated intermediate result size propagated
    along the partial plan — so a selective 50-row scan beats an
    unselective probe into a huge skewed bucket, which the static ranks
    get exactly wrong. ``observed``/``replans`` carry replan feedback
    (measured fan-outs) from :mod:`repro.iql.stats`.
    """
    steps: List[tuple] = []
    estimates: List[float] = []
    bound_before: List[FrozenSet[Var]] = []
    est = 1.0
    statistics = Statistics(instance)  # touched only when ``costed``
    remaining = list(literals)
    bound: Set[Var] = set(bound_vars)
    while remaining:
        # 1. Fully-bound literals become filters immediately, in body
        # order. One pass partitions by position — no structural-equality
        # membership tests, no quadratic list rebuild.
        generators: List[Literal] = []
        found_filter = False
        for lit in remaining:
            if all(v in bound for v in lit.variables()):
                bound_before.append(frozenset(bound))
                steps.append(("filter", lit))
                est *= FILTER_SELECTIVITY
                estimates.append(est)
                found_filter = True
            else:
                generators.append(lit)
        remaining = generators
        if found_filter or not remaining:
            continue
        # 2. The cheapest processable generator goes next.
        snapshot = frozenset(bound)
        chosen = None
        if costed:
            best_cost = None
            for position, lit in enumerate(remaining):
                candidate = _costed_candidate(
                    lit, bound, instance, use_indexes, statistics, observed, snapshot
                )
                if candidate is None:
                    continue
                work, fanout, step = candidate
                cost = est * (work + fanout)
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    chosen = (position, step, fanout)
        else:
            best_rank = None
            for position, lit in enumerate(remaining):
                candidate = _generator_step(lit, bound, instance, use_indexes)
                if candidate is not None and (best_rank is None or candidate[0] < best_rank):
                    best_rank = candidate[0]
                    chosen = (position, candidate[1], 1.0)
        if chosen is not None:
            position, step, fanout = chosen
            lit = remaining.pop(position)
            bound_before.append(snapshot)
            steps.append(step)
            if costed:
                est = min(est * max(fanout, EST_FLOOR), EST_CEILING)
            estimates.append(est)
            bound |= lit.variables()
            continue
        # 3. Dead end: enumerate the type interpretation of one unbound var
        # (restricted to constants(I) — the valuation definition makes this
        # the exact search space). Deterministic choice: first by name.
        unbound = sorted(
            {v for lit in remaining for v in lit.variables() if v not in bound},
            key=lambda v: v.name,
        )
        if not unbound:  # pragma: no cover - step 1 would have consumed these
            raise EvaluationError(f"stuck with fully bound literals: {remaining!r}")
        var = unbound[0]
        bound_before.append(frozenset(bound))
        steps.append(("enum", var))
        if costed:
            est = min(
                est * max(1.0, float(len(instance.sorted_constants()))), EST_CEILING
            )
        estimates.append(est)
        bound.add(var)
    return _finish_plan(steps, estimates if costed else None, bound_before, replans)


def lookup_plan(
    literals: Tuple[Literal, ...],
    bound0: FrozenSet[Var],
    instance: Instance,
    use_indexes: bool = True,
    plan_cache: Optional[Dict] = None,
    stats=None,
    costed: bool = False,
    feedback: Optional[Dict] = None,
) -> Plan:
    """The memoized plan for ``literals`` with ``bound0`` pre-bound.

    Shared by the interpreter (:func:`solve_body`) and the rule compiler
    (:mod:`repro.iql.compile`) so both agree on join order; ``stats``
    records the hit/miss per lookup. ``feedback`` (the owning rule's
    feedback cache, written by :func:`repro.iql.stats.check_drift`) feeds
    observed fan-outs into a costed replan after a drift invalidation.
    """
    plan: Optional[Plan] = None
    key = (literals, bound0, use_indexes, costed)
    if plan_cache is not None:
        plan = plan_cache.get(key)
        if stats is not None:
            if plan is None:
                stats.plan_cache_misses += 1
            else:
                stats.plan_cache_hits += 1
    if plan is None:
        observed = None
        replans = 0
        if costed and feedback is not None:
            entry = feedback.get(key)
            if entry is not None:
                observed = entry["fanouts"]
                replans = entry["replans"]
        plan = plan_body(
            literals,
            bound0,
            instance,
            use_indexes,
            costed=costed,
            observed=observed,
            replans=replans,
        )
        if stats is not None and costed:
            stats.plans_costed += 1
        if plan_cache is not None:
            plan_cache[key] = plan
    return plan


def solve_body(
    body: Sequence[Literal],
    instance: Instance,
    enumeration_budget: int = 100_000,
    initial: Optional[Bindings] = None,
    stats=None,
    plan_cache: Optional[Dict] = None,
    use_indexes: bool = True,
    costed: bool = False,
    feedback: Optional[Dict] = None,
) -> Iterator[Bindings]:
    """All valuations θ of the body's variables with I ⊨ θ(body).

    The literal order comes from :func:`plan_body` (cost- or
    selectivity-ordered per ``costed``, memoized in ``plan_cache`` —
    normally the owning rule's); membership literals over relations with
    bound tuple components probe the hash indexes of
    :mod:`repro.iql.indexes` instead of scanning. Negative literals are
    only ever used as filters, as inflationary Datalog¬ requires.
    ``use_indexes=False`` restores the original generate-and-test join
    (the differential-testing oracle); ``stats`` is any object with the
    counters of :class:`~repro.iql.evaluator.EvaluationStats`. Rows
    entering each generator step and rows produced overall are tallied
    into ``plan.counts`` for the estimate-drift check.
    """
    literals = tuple(lit for lit in body if not isinstance(lit, Choose))
    bindings0 = dict(initial or {})
    bound0 = frozenset(bindings0)
    plan = lookup_plan(
        literals, bound0, instance, use_indexes, plan_cache, stats, costed, feedback
    )
    counts = plan.counts

    def run(step_index: int, bindings: Bindings) -> Iterator[Bindings]:
        if step_index == len(plan):
            counts[step_index] += 1
            yield dict(bindings)
            return
        step = plan[step_index]
        kind = step[0]
        if kind == "filter":
            if satisfies(step[1], bindings, instance):
                yield from run(step_index + 1, bindings)
            return
        if kind == "member":
            counts[step_index] += 1
            lit, probes = step[1], step[2]
            members = None
            if probes:
                # Evaluate every plannable component and probe the smallest
                # bucket; match() re-verifies the full element against each
                # candidate, so one probe is enough for correctness.
                name = lit.container.name
                indexes = instance.indexes
                for attr, sub in probes:
                    value = eval_term(sub, bindings, instance)
                    if value is None:
                        return  # undefined dereference: no member can match
                    bucket = indexes.relation_probe(name, attr, value)
                    if members is None or len(bucket) < len(members):
                        members = bucket
                    if not members:
                        break
                if stats is not None:
                    stats.index_probes += 1
                    stats.index_scans_avoided += max(
                        0, len(instance.relations[name]) - len(members)
                    )
                members = list(members)
            elif isinstance(lit.container, NameTerm):
                name = lit.container.name
                if instance.schema.is_relation(name):
                    members = list(instance.relations[name])
                else:
                    members = list(instance.classes[name])
            else:
                container = eval_term(lit.container, bindings, instance)
                if container is None:
                    return  # undefined dereference: no facts to match
                if not isinstance(container, OSet):
                    raise EvaluationError(
                        f"membership against non-set value {container!r} in {lit!r}"
                    )
                members = list(container)
            for element in members:
                for extended in match(
                    lit.element, element, bindings, instance, use_indexes, stats
                ):
                    yield from run(step_index + 1, extended)
            return
        if kind == "equal":
            counts[step_index] += 1
            lit, left_known = step[1], step[2]
            known, pattern = (
                (lit.left, lit.right) if left_known else (lit.right, lit.left)
            )
            value = eval_term(known, bindings, instance)
            if value is None:
                return  # undefined dereference: unsatisfiable
            for extended in match(pattern, value, bindings, instance, use_indexes, stats):
                yield from run(step_index + 1, extended)
            return
        # kind == "enum"
        var = step[1]
        for value in enumerate_type(
            var.type,
            instance.sorted_constants(),
            instance.classes,
            budget=enumeration_budget,
        ):
            extended = dict(bindings)
            extended[var] = value
            yield from run(step_index + 1, extended)

    yield from run(0, bindings0)
