"""Surface syntax: tokenizer, schema/rule/program parsers, type inference."""

from repro.parser.grammar import (
    RuleParser,
    parse_schema_block,
    parse_type,
    program_from_source,
    schema_from_source,
    type_from_source,
)
from repro.parser.infer import infer_variable_types
from repro.parser.unparse import program_to_source, schema_to_source, type_to_source
from repro.parser.lexer import Token, TokenStream, tokenize

__all__ = [
    "RuleParser",
    "parse_schema_block",
    "parse_type",
    "program_from_source",
    "schema_from_source",
    "type_from_source",
    "infer_variable_types",
    "program_to_source",
    "schema_to_source",
    "type_to_source",
    "Token",
    "TokenStream",
    "tokenize",
]
