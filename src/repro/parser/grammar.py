"""Recursive-descent parsers for types, schemas, terms, rules and programs.

The program grammar::

    program   := schema_decl var_decl* io_decl* rules_decl
    schema_decl := "schema" "{" decl* "}"
    decl      := "relation" NAME ":" type
               | "class" NAME ("isa" NAME ("," NAME)*)? ":" type
    type      := type1 (("|" | "&") type1)*
    type1     := "D" | "none" | NAME | "{" type "}"
               | "[" (ATTR ":" type ("," ATTR ":" type)*)? "]"
    var_decl  := "var" NAME ("," NAME)* ":" type
    io_decl   := ("input" | "output") NAME ("," NAME)*
    rules_decl := "rules" "{" (rule | ";")* "}"
    rule      := ("delete")? head (":-" body)? "."
    head      := atom | deref "(" term ")" | deref "=" term
    body      := literal ("," literal)*
    literal   := "choose" | ("not")? atom | term ("=" | "!=") term
    atom      := NAME "(" (term ("," term)*)? ")"
    term      := NAME "^"? | constant | "{" terms? "}" | "[" fields? "]"

``D`` parses as the base type; an identifier in type position is a class
reference. In term position an identifier is a variable unless it is
followed by ``(`` inside a literal (an atom) or is a declared relation or
class name used as a set term.

Variable types come from ``var`` declarations or from inference
(:mod:`repro.parser.infer`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.diagnostics import Span
from repro.errors import ParseError
from repro.iql.literals import Choose, Equality, Literal, Membership
from repro.iql.program import Program
from repro.iql.rules import Rule
from repro.iql.terms import Const, Deref, NameTerm, SetTerm, Term, TupleTerm, Var
from repro.inheritance.inhschema import InheritanceSchema
from repro.parser.lexer import Token, TokenStream, tokenize
from repro.schema.schema import Schema
from repro.typesys.expressions import (
    D,
    EMPTY,
    TypeExpr,
    classref,
    intersection,
    set_of,
    tuple_of,
    union,
)


def _span(start: Token, stream: TokenStream) -> Span:
    """The source region from ``start`` to the last token consumed."""
    end = stream.tokens[max(stream.position - 1, 0)]
    return Span.from_token(start).to(Span.from_token(end))


# -- types -----------------------------------------------------------------------


def parse_type(stream: TokenStream, class_names: Set[str]) -> TypeExpr:
    left = _parse_type1(stream, class_names)
    while stream.at("|") or stream.at("&"):
        op = stream.advance().value
        right = _parse_type1(stream, class_names)
        left = union(left, right) if op == "|" else intersection(left, right)
    return left


def _parse_type1(stream: TokenStream, class_names: Set[str]) -> TypeExpr:
    token = stream.peek()
    if stream.accept("keyword", "none"):
        return EMPTY
    if token.kind == "ident":
        stream.advance()
        if token.value == "D":
            return D
        if class_names and token.value not in class_names:
            raise ParseError(
                f"unknown class {token.value!r} in type", token.line, token.column
            )
        return classref(token.value)
    if stream.accept("{"):
        inner = parse_type(stream, class_names)
        stream.expect("}")
        return set_of(inner)
    if stream.accept("["):
        fields: Dict[str, TypeExpr] = {}
        while not stream.at("]"):
            attr = stream.expect("ident").value
            stream.expect(":")
            fields[attr] = parse_type(stream, class_names)
            if not stream.accept(","):
                break
        stream.expect("]")
        return tuple_of(fields)
    if stream.accept("("):
        inner = parse_type(stream, class_names)
        stream.expect(")")
        return inner
    raise ParseError(f"expected a type, found {token.value!r}", token.line, token.column)


def type_from_source(text: str, class_names: Sequence[str] = ()) -> TypeExpr:
    stream = TokenStream(tokenize(text))
    t = parse_type(stream, set(class_names))
    if not stream.at_end():
        token = stream.peek()
        raise ParseError(f"trailing input {token.value!r}", token.line, token.column)
    return t


# -- schemas -----------------------------------------------------------------------


def parse_schema_block(stream: TokenStream):
    """Parse ``schema { ... }``; returns (relations, classes, isa_pairs)."""
    stream.expect("keyword", "schema")
    stream.expect("{")
    # First pass over the block to collect class names (types may forward-
    # reference classes declared later — Example 1.1 needs this).
    class_names: Set[str] = set()
    depth = 1
    position = stream.position
    while depth > 0:
        token = stream.tokens[position]
        if token.kind == "{":
            depth += 1
        elif token.kind == "}":
            depth -= 1
        elif token.kind == "keyword" and token.value == "class" and depth == 1:
            class_names.add(stream.tokens[position + 1].value)
        elif token.kind == "eof":
            raise ParseError("unterminated schema block", token.line, token.column)
        position += 1

    relations: Dict[str, TypeExpr] = {}
    classes: Dict[str, TypeExpr] = {}
    isa_pairs: List[Tuple[str, str]] = []
    while not stream.at("}"):
        if stream.accept("keyword", "relation"):
            name = stream.expect("ident").value
            stream.expect(":")
            relations[name] = parse_type(stream, class_names)
        elif stream.accept("keyword", "class"):
            name = stream.expect("ident").value
            while stream.accept("keyword", "isa"):
                isa_pairs.append((name, stream.expect("ident").value))
                while stream.accept(","):
                    isa_pairs.append((name, stream.expect("ident").value))
            stream.expect(":")
            classes[name] = parse_type(stream, class_names)
        else:
            token = stream.peek()
            raise ParseError(
                f"expected 'relation' or 'class', found {token.value!r}",
                token.line,
                token.column,
            )
        stream.accept(";")
    stream.expect("}")
    return relations, classes, isa_pairs


def schema_from_source(text: str):
    """Parse a standalone schema; returns :class:`Schema`, or
    :class:`InheritanceSchema` when isa declarations are present."""
    stream = TokenStream(tokenize(text))
    relations, classes, isa_pairs = parse_schema_block(stream)
    if not stream.at_end():
        token = stream.peek()
        raise ParseError(f"trailing input {token.value!r}", token.line, token.column)
    if isa_pairs:
        return InheritanceSchema(relations, classes, isa_pairs)
    return Schema(relations, classes)


# -- terms and rules -----------------------------------------------------------------


class RuleParser:
    """Parses rules over a known schema with (partially) known variable types.

    Variables whose types are not declared are created with a placeholder
    type and resolved by :mod:`repro.parser.infer` afterwards.
    """

    PLACEHOLDER = EMPTY  # replaced by inference; EMPTY never survives

    def __init__(self, schema: Schema, var_types: Dict[str, TypeExpr]):
        self.schema = schema
        self.var_types = dict(var_types)
        self.placeholder_vars: Set[str] = set()

    def _var(self, name: str, span: Optional[Span] = None) -> Var:
        if name in self.var_types:
            return Var(name, self.var_types[name], span=span)
        self.placeholder_vars.add(name)
        return Var(name, self.PLACEHOLDER, span=span)

    # -- terms -------------------------------------------------------------------

    def parse_term(self, stream: TokenStream) -> Term:
        start = stream.peek()
        term = self._parse_term(stream)
        if term.span is None:
            term.span = _span(start, stream)
        return term

    def _parse_term(self, stream: TokenStream) -> Term:
        token = stream.peek()
        if token.kind == "string":
            stream.advance()
            return Const(token.value)
        if token.kind == "number":
            stream.advance()
            text = token.value
            return Const(float(text) if "." in text else int(text))
        if token.kind == "ident":
            stream.advance()
            name = token.value
            where = Span.from_token(token)
            if stream.accept("^"):
                return Deref(self._var(name, span=where), span=_span(token, stream))
            if name in self.schema.names:
                return NameTerm(name, span=where)
            return self._var(name, span=where)
        if stream.accept("{"):
            terms: List[Term] = []
            while not stream.at("}"):
                terms.append(self.parse_term(stream))
                if not stream.accept(","):
                    break
            stream.expect("}")
            return SetTerm(*terms)
        if stream.accept("["):
            fields: Dict[str, Term] = {}
            while not stream.at("]"):
                attr = stream.expect("ident").value
                stream.expect(":")
                fields[attr] = self.parse_term(stream)
                if not stream.accept(","):
                    break
            stream.expect("]")
            return TupleTerm(fields)
        raise ParseError(f"expected a term, found {token.value!r}", token.line, token.column)

    # -- literals -----------------------------------------------------------------

    def parse_literal(self, stream: TokenStream) -> Literal:
        start = stream.peek()
        literal = self._parse_literal(stream)
        if literal.span is None:
            literal.span = _span(start, stream)
        return literal

    def _parse_literal(self, stream: TokenStream) -> Literal:
        token = stream.peek()
        if stream.accept("keyword", "choose"):
            return Choose(span=Span.from_token(token))
        negated = bool(stream.accept("keyword", "not"))
        term = self.parse_term_or_atom(stream)
        if isinstance(term, Membership):
            return term.negate() if negated else term
        if stream.accept("="):
            right = self.parse_term(stream)
            if negated:
                raise ParseError("use != for negated equality", token.line, token.column)
            return Equality(term, right)
        if stream.accept("!="):
            right = self.parse_term(stream)
            return Equality(term, right, positive=False)
        if negated:
            raise ParseError("'not' must precede an atom", token.line, token.column)
        next_token = stream.peek()
        raise ParseError(
            f"expected a literal near {next_token.value!r}", next_token.line, next_token.column
        )

    def parse_term_or_atom(self, stream: TokenStream):
        """An atom ``container(args)`` or a bare term.

        ``name(...)`` parses as an atom over a relation/class name or over
        a dereference/variable container (``X(y)``, ``p^(q)``)."""
        start = stream.peek()
        result = self._parse_term_or_atom(stream)
        if result.span is None:
            result.span = _span(start, stream)
        return result

    def _parse_term_or_atom(self, stream: TokenStream):
        token = stream.peek()
        if token.kind == "ident":
            name = token.value
            next_token = stream.peek(1)
            if next_token.kind == "(" and name in self.schema.names:
                stream.advance()
                args = self._parse_args(stream)
                return self._positional_atom(name, args, token)
            if next_token.kind == "^":
                stream.advance()
                stream.advance()
                deref = Deref(self._var(name, span=Span.from_token(token)), span=_span(token, stream))
                if stream.at("("):
                    args = self._parse_args(stream)
                    if len(args) != 1:
                        raise ParseError(
                            "x^(t) takes exactly one element", token.line, token.column
                        )
                    return Membership(deref, args[0])
                return deref
            if next_token.kind == "(":
                stream.advance()
                args = self._parse_args(stream)
                if len(args) != 1:
                    raise ParseError(
                        "X(t) takes exactly one element", token.line, token.column
                    )
                return Membership(self._var(name, span=Span.from_token(token)), args[0])
        return self.parse_term(stream)

    def _parse_args(self, stream: TokenStream) -> List[Term]:
        stream.expect("(")
        args: List[Term] = []
        while not stream.at(")"):
            args.append(self.parse_term(stream))
            if not stream.accept(","):
                break
        stream.expect(")")
        return args

    def _positional_atom(self, name: str, args: List[Term], token: Token) -> Membership:
        from repro.typesys.expressions import TupleOf

        container = NameTerm(name, span=Span.from_token(token))
        if self.schema.is_class(name):
            if len(args) != 1:
                raise ParseError(
                    f"class atom {name}(x) takes one argument", token.line, token.column
                )
            return Membership(container, args[0])
        member_type = self.schema.relations[name]
        if isinstance(member_type, TupleOf) and len(member_type.attributes) == len(args):
            if len(args) == 1 and isinstance(args[0], TupleTerm):
                return Membership(container, args[0])
            fields = dict(zip(member_type.attributes, args))
            return Membership(container, TupleTerm(fields))
        if len(args) == 1:
            return Membership(container, args[0])
        raise ParseError(
            f"{name} expects {getattr(member_type, 'attributes', 1)} columns, got {len(args)}",
            token.line,
            token.column,
        )

    # -- rules ---------------------------------------------------------------------

    def parse_rule(self, stream: TokenStream) -> Rule:
        start = stream.peek()
        delete = bool(stream.accept("keyword", "delete"))
        head = self.parse_term_or_atom(stream)
        if isinstance(head, Deref):
            stream.expect("=")
            right = self.parse_term(stream)
            head = Equality(head, right, span=_span(start, stream))
        if not isinstance(head, (Membership, Equality)):
            token = stream.peek()
            raise ParseError(
                f"illegal rule head near {token.value!r}", token.line, token.column
            )
        body: List[Literal] = []
        if stream.accept(":-"):
            while not stream.at("."):
                body.append(self.parse_literal(stream))
                if not stream.accept(","):
                    break
        stream.expect(".")
        return Rule(head, body, delete=delete, span=_span(start, stream))


# -- programs -------------------------------------------------------------------------


def program_from_source(text: str) -> Program:
    """Parse a full program file: schema, var/input/output decls, rules.

    Variable types omitted from ``var`` declarations are inferred; see
    :func:`repro.parser.infer.infer_variable_types`.
    """
    from repro.parser.infer import infer_variable_types

    stream = TokenStream(tokenize(text))
    relations, classes, isa_pairs = parse_schema_block(stream)
    if isa_pairs:
        schema = InheritanceSchema(relations, classes, isa_pairs).compile_away_isa()
    else:
        schema = Schema(relations, classes)

    var_types: Dict[str, TypeExpr] = {}
    inputs: List[str] = []
    outputs: List[str] = []
    while True:
        if stream.accept("keyword", "var"):
            names = [stream.expect("ident").value]
            while stream.accept(","):
                names.append(stream.expect("ident").value)
            stream.expect(":")
            t = parse_type(stream, set(schema.classes))
            for name in names:
                var_types[name] = t
            stream.accept(";")
        elif stream.accept("keyword", "input"):
            inputs.append(stream.expect("ident").value)
            while stream.accept(","):
                inputs.append(stream.expect("ident").value)
            stream.accept(";")
        elif stream.accept("keyword", "output"):
            outputs.append(stream.expect("ident").value)
            while stream.accept(","):
                outputs.append(stream.expect("ident").value)
            stream.accept(";")
        else:
            break

    stream.expect("keyword", "rules")
    stream.expect("{")
    parser = RuleParser(schema, var_types)
    stages: List[List[Rule]] = [[]]
    while not stream.at("}"):
        if stream.accept(";"):
            if stages[-1]:
                stages.append([])
            continue
        stages[-1].append(parser.parse_rule(stream))
    stream.expect("}")
    if not stream.at_end():
        token = stream.peek()
        raise ParseError(f"trailing input {token.value!r}", token.line, token.column)
    if not stages[-1]:
        stages.pop()
    if not stages:
        raise ParseError("program has no rules")

    program = Program(
        schema,
        stages=stages,
        input_names=inputs,
        output_names=outputs or sorted(schema.names),
    )
    if parser.placeholder_vars:
        program = infer_variable_types(program, parser.placeholder_vars)
    return program
