"""Variable-type inference for parsed programs (Section 3.3).

"Having to declare the type information for each term would make the
programs tedious to write ... Automatic partial type inference, based on a
number of shorthand conventions, can replace explicit declarations."

The conventions implemented here:

1. an argument of a relation/class atom gets the corresponding component
   of the declared member type (``R(x, y)`` over [A1: D, A2: P] gives
   x: D, y: P),
2. an element of a membership over a typed set container gets the member
   type (``Y(y)`` with Y: {D} gives y: D; ``p^(q)`` with T(P) = {Q} gives
   q: Q),
3. a set container over a typed element gets the set type (``Y(y)`` with
   y: D gives Y: {D}),
4. an equality with one fully typed side types the other side —
   considered *after* the membership conventions, because union coercion
   makes equality constraints deliberately looser (in ``y = x^`` of
   Example 3.4.3, y's type comes from its atom, not from x̂'s union type).

Types are scoped per rule (the paper's variables are rule-local); a name
may have different types in different rules. Variables that remain
untyped raise :class:`ParseError` asking for an explicit ``var``
declaration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.errors import ParseError
from repro.iql.literals import Choose, Equality, Literal, Membership
from repro.iql.program import Program
from repro.iql.rules import Rule
from repro.iql.terms import Const, Deref, NameTerm, SetTerm, Term, TupleTerm, Var
from repro.schema.schema import Schema
from repro.typesys.expressions import (
    ClassRef,
    Empty,
    SetOf,
    TupleOf,
    TypeExpr,
)

PLACEHOLDER = Empty()


def infer_variable_types(program: Program, placeholder_names: Set[str]) -> Program:
    """Resolve all placeholder-typed variables and rebuild the program."""
    new_stages: List[List[Rule]] = []
    for stage in program.stages:
        new_stage = []
        for rule in stage:
            new_stage.append(_infer_rule(rule, program.schema, placeholder_names))
        new_stages.append(new_stage)
    return Program(
        program.schema,
        stages=new_stages,
        input_names=program.input_names,
        output_names=program.output_names,
    )


def _is_placeholder(var: Var, placeholder_names: Set[str]) -> bool:
    return var.name in placeholder_names and isinstance(var.type, Empty)


def _infer_rule(rule: Rule, schema: Schema, placeholder_names: Set[str]) -> Rule:
    resolved: Dict[str, TypeExpr] = {}
    literals = list(rule.body) + [rule.head]

    # Seed with the types of explicitly typed variables (declared via var).
    for literal in literals:
        for term in _terms(literal):
            for var in _vars_in(term):
                if not _is_placeholder(var, placeholder_names):
                    _record(resolved, var.name, var.type, rule)

    # Fixpoint over conventions 1-3, then 4 for what is left.
    for equality_pass in (False, True):
        changed = True
        while changed:
            changed = False
            for literal in literals:
                if isinstance(literal, Choose):
                    continue
                if isinstance(literal, Membership):
                    changed |= _from_membership(literal, schema, resolved, rule)
                elif equality_pass and isinstance(literal, Equality):
                    changed |= _from_equality(literal, schema, resolved, rule)

    missing = sorted(
        {
            var.name
            for literal in literals
            for term in _terms(literal)
            for var in _vars_in(term)
            if _is_placeholder(var, placeholder_names) and var.name not in resolved
        }
    )
    if missing:
        raise ParseError(
            f"cannot infer the types of {missing} in rule {rule!r}; "
            f"add explicit 'var {', '.join(missing)}: <type>' declarations"
        )

    def retype(term: Term) -> Term:
        # Spans are preserved through the rebuild: the retyped AST must
        # still point back at the source the parser read.
        if isinstance(term, Var):
            if _is_placeholder(term, placeholder_names):
                return Var(term.name, resolved[term.name], span=term.span)
            return term
        if isinstance(term, Deref):
            inner = retype(term.var)
            return Deref(inner, span=term.span)
        if isinstance(term, SetTerm):
            return SetTerm(*(retype(t) for t in term.terms), span=term.span)
        if isinstance(term, TupleTerm):
            return TupleTerm({attr: retype(t) for attr, t in term.fields}, span=term.span)
        return term

    def retype_literal(literal: Literal) -> Literal:
        if isinstance(literal, Choose):
            return literal
        if isinstance(literal, Membership):
            return Membership(
                retype(literal.container),
                retype(literal.element),
                literal.positive,
                span=literal.span,
            )
        return Equality(
            retype(literal.left), retype(literal.right), literal.positive, span=literal.span
        )

    return Rule(
        retype_literal(rule.head),
        [retype_literal(lit) for lit in rule.body],
        delete=rule.delete,
        label=rule.label,
        span=rule.span,
    )


def _terms(literal: Literal):
    if isinstance(literal, Membership):
        yield literal.container
        yield literal.element
    elif isinstance(literal, Equality):
        yield literal.left
        yield literal.right


def _vars_in(term: Term):
    if isinstance(term, Var):
        yield term
    elif isinstance(term, Deref):
        yield term.var
    elif isinstance(term, SetTerm):
        for sub in term.terms:
            yield from _vars_in(sub)
    elif isinstance(term, TupleTerm):
        for _, sub in term.fields:
            yield from _vars_in(sub)


def _record(resolved: Dict[str, TypeExpr], name: str, t: TypeExpr, rule: Rule) -> bool:
    if isinstance(t, Empty):
        return False
    prior = resolved.get(name)
    if prior is None:
        resolved[name] = t
        return True
    if prior != t:
        raise ParseError(
            f"conflicting types inferred for {name!r} in rule {rule!r}: "
            f"{prior!r} versus {t!r}"
        )
    return False


def _unify(term: Term, t: TypeExpr, resolved: Dict[str, TypeExpr], rule: Rule) -> bool:
    """Push an expected type down a term; record variable types found."""
    changed = False
    if isinstance(term, Var):
        changed |= _record(resolved, term.name, t, rule)
    elif isinstance(term, SetTerm) and isinstance(t, SetOf):
        for sub in term.terms:
            changed |= _unify(sub, t.element, resolved, rule)
    elif isinstance(term, TupleTerm) and isinstance(t, TupleOf):
        expected = dict(t.fields)
        for attr, sub in term.fields:
            if attr in expected:
                changed |= _unify(sub, expected[attr], resolved, rule)
    # Deref, Const, NameTerm: nothing to record (a deref constrains the
    # class of its variable only through atoms, convention 2).
    return changed


def _known_type(term: Term, schema: Schema, resolved: Dict[str, TypeExpr]) -> Optional[TypeExpr]:
    """The term's type if fully determined, else None."""
    try:
        if isinstance(term, Var):
            t = resolved.get(term.name, term.type)
            return None if isinstance(t, Empty) else t
        if isinstance(term, Const):
            return term.type_in(schema)
        if isinstance(term, NameTerm):
            return term.type_in(schema)
        if isinstance(term, Deref):
            class_type = resolved.get(term.var.name, term.var.type)
            if isinstance(class_type, ClassRef):
                return schema.classes.get(class_type.name)
            return None
        if isinstance(term, SetTerm):
            inner = [_known_type(sub, schema, resolved) for sub in term.terms]
            if not inner:
                return None  # {} alone cannot pick a member type
            if any(t is None for t in inner) or len(set(inner)) != 1:
                return None
            return SetOf(inner[0])
        if isinstance(term, TupleTerm):
            fields = {}
            for attr, sub in term.fields:
                t = _known_type(sub, schema, resolved)
                if t is None:
                    return None
                fields[attr] = t
            return TupleOf(fields)
    except Exception:
        return None
    return None


def _from_membership(
    literal: Membership, schema: Schema, resolved: Dict[str, TypeExpr], rule: Rule
) -> bool:
    changed = False
    container = literal.container
    # Convention 1/2: container's member type flows to the element.
    member_type: Optional[TypeExpr] = None
    if isinstance(container, NameTerm):
        if schema.is_relation(container.name):
            member_type = schema.relations[container.name]
        elif schema.is_class(container.name):
            member_type = ClassRef(container.name)
    else:
        container_type = _known_type(container, schema, resolved)
        if isinstance(container_type, SetOf):
            member_type = container_type.element
    if member_type is not None:
        changed |= _unify(literal.element, member_type, resolved, rule)
    # Convention 3: a typed element flows up to an untyped set variable.
    if isinstance(container, Var) and container.name not in resolved:
        element_type = _known_type(literal.element, schema, resolved)
        if element_type is not None:
            changed |= _record(resolved, container.name, SetOf(element_type), rule)
    return changed


def _from_equality(
    literal: Equality, schema: Schema, resolved: Dict[str, TypeExpr], rule: Rule
) -> bool:
    changed = False
    left_type = _known_type(literal.left, schema, resolved)
    right_type = _known_type(literal.right, schema, resolved)
    if left_type is not None and right_type is None:
        changed |= _unify(literal.right, left_type, resolved, rule)
    elif right_type is not None and left_type is None:
        changed |= _unify(literal.left, right_type, resolved, rule)
    return changed
