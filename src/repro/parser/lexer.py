"""Tokenizer for the IQL surface syntax.

The concrete syntax stays close to the paper's notation, ASCII-fied:

* ``:-`` separates head from body (the paper's ←),
* ``x^`` is the dereference x̂,
* ``{ }``, ``[ ]`` build set/tuple types and terms,
* ``|`` and ``&`` are the union/intersection type constructors (∨, ∧),
* ``!=`` is ≠, ``not`` negates an atom, ``;`` separates stages,
* ``"..."`` are string constants, bare numbers are numeric constants,
* ``--`` starts a comment to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ParseError

KEYWORDS = {
    "schema",
    "relation",
    "class",
    "isa",
    "var",
    "input",
    "output",
    "rules",
    "delete",
    "choose",
    "not",
    "none",
}

PUNCTUATION = [
    ":-",
    "!=",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ":",
    ";",
    ",",
    "=",
    "^",
    "|",
    "&",
    ".",
]


@dataclass(frozen=True)
class Token:
    kind: str  # "ident", "keyword", "string", "number", or the punctuation itself
    value: str
    line: int
    column: int

    def __repr__(self):
        return f"{self.kind}:{self.value!r}@{self.line}:{self.column}"


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    line, column = 1, 1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if text.startswith("--", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == '"':
            j = i + 1
            buf = []
            while j < n and text[j] != '"':
                if text[j] == "\n":
                    raise ParseError("unterminated string", line, column)
                if text[j] == "\\" and j + 1 < n:
                    buf.append(text[j + 1])
                    j += 2
                else:
                    buf.append(text[j])
                    j += 1
            if j >= n:
                raise ParseError("unterminated string", line, column)
            tokens.append(Token("string", "".join(buf), line, column))
            column += j + 1 - i
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            tokens.append(Token("number", text[i:j], line, column))
            column += j - i
            i = j
            continue
        matched = False
        for punct in PUNCTUATION:
            if text.startswith(punct, i):
                tokens.append(Token(punct, punct, line, column))
                column += len(punct)
                i += len(punct)
                matched = True
                break
        if matched:
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "_'"):
                j += 1
            word = text[i:j]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line, column))
            column += j - i
            i = j
            continue
        raise ParseError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("eof", "", line, column))
    return tokens


class TokenStream:
    """A cursor over the token list with the usual peek/expect helpers."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.position += 1
        return token

    def at(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.peek()
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.peek()
        if not self.at(kind, value):
            expected = value or kind
            raise ParseError(
                f"expected {expected!r}, found {token.value!r}", token.line, token.column
            )
        return self.advance()

    def at_end(self) -> bool:
        return self.peek().kind == "eof"
