"""Render programs back into the surface syntax (the parser's inverse).

``program_to_source`` produces a text that ``program_from_source`` parses
back into an equivalent program — the round trip is property-tested over
every program builder in the library. All variable types are emitted as
explicit ``var`` declarations (scoped per rule via name mangling when the
same name is used at different types in different rules), so the round
trip never depends on inference.

Uses:

* persisting programmatically-built programs (the CLI runs files),
* debugging: `print(program_to_source(p))` is the readable form,
* the round-trip tests double as coverage that the surface syntax can
  express everything the programmatic API can (modulo the known gap:
  relations whose *member* type is not a tuple/scalar positional form are
  emitted via single-argument atoms).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ParseError
from repro.iql.literals import Choose, Equality, Literal, Membership
from repro.iql.program import Program
from repro.iql.rules import Rule
from repro.iql.terms import Const, Deref, NameTerm, SetTerm, Term, TupleTerm, Var
from repro.schema.schema import Schema
from repro.typesys.expressions import TupleOf, TypeExpr


def type_to_source(t: TypeExpr) -> str:
    """Types render via repr; translate the glyphs to ASCII."""
    return repr(t).replace("∨", "|").replace("∧", "&").replace("⊥", "none")


def schema_to_source(schema: Schema) -> str:
    lines = ["schema {"]
    for name, t in sorted(schema.relations.items()):
        lines.append(f"  relation {name}: {type_to_source(t)};")
    for name, t in sorted(schema.classes.items()):
        lines.append(f"  class {name}: {type_to_source(t)};")
    lines.append("}")
    return "\n".join(lines)


def _term_to_source(term: Term) -> str:
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Const):
        if isinstance(term.value, str):
            escaped = term.value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        return repr(term.value)
    if isinstance(term, NameTerm):
        return term.name
    if isinstance(term, Deref):
        return f"{term.var.name}^"
    if isinstance(term, SetTerm):
        return "{" + ", ".join(_term_to_source(t) for t in term.terms) + "}"
    if isinstance(term, TupleTerm):
        inner = ", ".join(f"{attr}: {_term_to_source(t)}" for attr, t in term.fields)
        return f"[{inner}]"
    raise ParseError(f"cannot render term {term!r}")


def _literal_to_source(literal: Literal, schema: Schema) -> str:
    if isinstance(literal, Choose):
        return "choose"
    if isinstance(literal, Membership):
        container = literal.container
        element = literal.element
        if isinstance(container, NameTerm):
            body = f"{container.name}({_atom_args(container.name, element, schema)})"
        elif isinstance(container, Deref):
            body = f"{container.var.name}^({_term_to_source(element)})"
        elif isinstance(container, Var):
            body = f"{container.name}({_term_to_source(element)})"
        else:
            raise ParseError(f"cannot render membership over {container!r}")
        return body if literal.positive else f"not {body}"
    if isinstance(literal, Equality):
        op = "=" if literal.positive else "!="
        return f"{_term_to_source(literal.left)} {op} {_term_to_source(literal.right)}"
    raise ParseError(f"cannot render literal {literal!r}")


def _atom_args(name: str, element: Term, schema: Schema) -> str:
    """Positional form when the element is a tuple term matching the
    relation's declared attributes; otherwise the single-argument form."""
    member_type = None
    if schema.is_relation(name):
        member_type = schema.relations[name]
    if (
        isinstance(element, TupleTerm)
        and isinstance(member_type, TupleOf)
        and tuple(a for a, _ in element.fields) == member_type.attributes
    ):
        return ", ".join(_term_to_source(t) for _, t in element.fields)
    return _term_to_source(element)


def _rule_to_source(rule: Rule, schema: Schema) -> str:
    head = _literal_to_source(rule.head, schema)
    prefix = "delete " if rule.delete else ""
    if not rule.body:
        return f"{prefix}{head} :- ."
    body = ", ".join(_literal_to_source(lit, schema) for lit in rule.body)
    return f"{prefix}{head} :- {body}."


def _collect_var_types(program: Program) -> Dict[str, TypeExpr]:
    """name → type, erroring politely on cross-rule type conflicts (the
    round trip then needs renaming, which `program_to_source` performs)."""
    out: Dict[str, TypeExpr] = {}
    for rule in program.rules:
        for var in rule.variables():
            prior = out.get(var.name)
            if prior is not None and prior != var.type:
                raise ParseError(
                    f"variable {var.name!r} used at two types across rules; "
                    f"rename before unparsing"
                )
            out[var.name] = var.type
    return out


def _rename_conflicts(program: Program) -> Program:
    """Give each rule's variables globally consistent names by suffixing
    rules whose names clash at different types."""
    taken: Dict[str, TypeExpr] = {}
    new_stages: List[List[Rule]] = []
    counter = 0
    for stage in program.stages:
        new_stage: List[Rule] = []
        for rule in stage:
            mapping: Dict[str, str] = {}
            for var in sorted(rule.variables(), key=lambda v: v.name):
                prior = taken.get(var.name)
                if prior is None:
                    taken[var.name] = var.type
                elif prior != var.type:
                    counter += 1
                    fresh = f"{var.name}_r{counter}"
                    while fresh in taken:
                        counter += 1
                        fresh = f"{var.name}_r{counter}"
                    mapping[var.name] = fresh
                    taken[fresh] = var.type
            new_stage.append(_rename_rule(rule, mapping) if mapping else rule)
        new_stages.append(new_stage)
    return Program(
        program.schema,
        stages=new_stages,
        input_names=program.input_names,
        output_names=program.output_names,
    )


def _rename_rule(rule: Rule, mapping: Dict[str, str]) -> Rule:
    def rename_term(term: Term) -> Term:
        if isinstance(term, Var):
            return Var(mapping.get(term.name, term.name), term.type)
        if isinstance(term, Deref):
            return Deref(rename_term(term.var))
        if isinstance(term, SetTerm):
            return SetTerm(*(rename_term(t) for t in term.terms))
        if isinstance(term, TupleTerm):
            return TupleTerm({a: rename_term(t) for a, t in term.fields})
        return term

    def rename_literal(literal: Literal) -> Literal:
        if isinstance(literal, Choose):
            return literal
        if isinstance(literal, Membership):
            return Membership(
                rename_term(literal.container), rename_term(literal.element), literal.positive
            )
        return Equality(
            rename_term(literal.left), rename_term(literal.right), literal.positive
        )

    return Rule(
        rename_literal(rule.head),
        [rename_literal(lit) for lit in rule.body],
        delete=rule.delete,
        label=rule.label,
    )


def program_to_source(program: Program) -> str:
    """The full program file: schema, var declarations, io, rules."""
    try:
        var_types = _collect_var_types(program)
        normalized = program
    except ParseError:
        normalized = _rename_conflicts(program)
        var_types = _collect_var_types(normalized)

    parts = [schema_to_source(normalized.schema)]
    # Group var declarations by type for compactness.
    by_type: Dict[str, List[str]] = {}
    for name, t in sorted(var_types.items()):
        by_type.setdefault(type_to_source(t), []).append(name)
    for type_src, names in sorted(by_type.items()):
        parts.append(f"var {', '.join(names)}: {type_src}")
    if normalized.input_names:
        parts.append(f"input {', '.join(normalized.input_names)}")
    if normalized.output_names:
        parts.append(f"output {', '.join(normalized.output_names)}")
    parts.append("rules {")
    for index, stage in enumerate(normalized.stages):
        if index:
            parts.append("  ;")
        for rule in stage:
            parts.append(f"  {_rule_to_source(rule, normalized.schema)}")
    parts.append("}")
    return "\n".join(parts)
