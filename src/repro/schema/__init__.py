"""Schemas, instances and isomorphisms (Sections 2.3 and 4.1)."""

from repro.schema.instance import GroundFact, Instance
from repro.schema.isomorphism import (
    apply_do_isomorphism,
    apply_o_isomorphism,
    are_o_isomorphic,
    automorphisms,
    find_o_isomorphism,
    find_o_isomorphism_reference,
    orbit_partition,
    refine_colours,
)
from repro.schema.schema import Schema

__all__ = [
    "GroundFact",
    "Instance",
    "Schema",
    "apply_do_isomorphism",
    "apply_o_isomorphism",
    "are_o_isomorphic",
    "automorphisms",
    "find_o_isomorphism",
    "find_o_isomorphism_reference",
    "orbit_partition",
    "refine_colours",
]
