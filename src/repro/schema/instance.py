"""Database instances (Definition 2.3.2) and their ground-fact view.

An instance of a schema ``(R, P, T)`` is a triple ``(ρ, π, ν)``:

* ρ assigns each relation name a finite set of o-values of type T(R),
* π assigns each class name a finite set of oids, *pairwise disjoint*
  across classes,
* ν is a partial function from the instance's oids to o-values with
  ν(o) ∈ ⟦T(P)⟧π for o ∈ π(P), total on set-valued classes.

The paper's convention (Section 2.3): a set-valued oid with no recorded
facts has value { }; a non-set-valued oid with no recorded value is
*undefined* — the model's benign form of incomplete information, and the
intermediate state IQL builds objects through.

Instances are mutable (the evaluator grows them inflationarily) and expose
the ``ground-facts(I)`` view the paper uses to define the semantics:
``R(v)``, ``P(o)``, ``ô(v)`` for set-valued o, and ``ô = v`` otherwise.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.errors import InstanceError
from repro.schema.schema import Schema
from repro.typesys.expressions import TypeExpr
from repro.typesys.interpretation import member
from repro.values.ovalues import (
    Oid,
    OSet,
    OValue,
    constants_of,
    ensure_ovalue,
    is_ovalue,
    oids_of,
    sort_key,
)

#: Ground-fact tags. A ground fact is a tagged tuple:
#:   ("rel",  R, v)  for  R(v)
#:   ("cls",  P, o)  for  P(o)
#:   ("elem", o, v)  for  ô(v)      (o set valued)
#:   ("val",  o, v)  for  ô = v     (o non-set valued)
GroundFact = Tuple[str, object, object]


class Instance:
    """A mutable instance ``(ρ, π, ν)`` of a :class:`Schema`."""

    __slots__ = (
        "schema",
        "relations",
        "classes",
        "nu",
        "_class_of",
        "_indexes",
        "_constants_cache",
        "_sorted_constants",
        "_member_cache",
    )

    def __init__(
        self,
        schema: Schema,
        relations: Optional[Mapping[str, Iterable[OValue]]] = None,
        classes: Optional[Mapping[str, Iterable[Oid]]] = None,
        nu: Optional[Mapping[Oid, OValue]] = None,
    ):
        self.schema = schema
        self.relations: Dict[str, Set[OValue]] = {r: set() for r in schema.relations}
        self.classes: Dict[str, Set[Oid]] = {p: set() for p in schema.classes}
        self.nu: Dict[Oid, OValue] = {}
        self._class_of: Dict[Oid, str] = {}
        # Lazily-built hash indexes (repro.iql.indexes) and the cached
        # constants(I); both maintained by the four mutators below and
        # dropped wholesale around non-monotone mutation (deletions).
        self._indexes = None
        self._constants_cache: Optional[FrozenSet[OValue]] = None
        self._sorted_constants: Optional[List[OValue]] = None
        self._member_cache: Dict[Tuple[TypeExpr, OValue], bool] = {}
        for name, values in (relations or {}).items():
            for v in values:
                self.add_relation_member(name, ensure_ovalue(v))
        for name, oids in (classes or {}).items():
            for o in oids:
                self.add_class_member(name, o)
        for o, v in (nu or {}).items():
            self.assign(o, ensure_ovalue(v))

    # -- mutation (used by constructors and by the evaluator) ------------------

    def add_relation_member(self, name: str, value: OValue) -> bool:
        """Add ``value`` to ρ(name); returns True if it was new."""
        if name not in self.relations:
            raise InstanceError(f"unknown relation {name!r}")
        if not is_ovalue(value):
            raise InstanceError(f"{value!r} is not an o-value")
        members = self.relations[name]
        if value in members:
            return False
        members.add(value)
        if self._indexes is not None:
            self._indexes.on_add_relation_member(name, value)
        self._note_constants(value)
        return True

    def add_class_member(self, name: str, oid: Oid) -> bool:
        """Add ``oid`` to π(name); returns True if it was new.

        Enforces the pairwise-disjointness of classes — the condition
        Example 4.1.2 shows is essential for the soundness of IQL.
        """
        if name not in self.classes:
            raise InstanceError(f"unknown class {name!r}")
        if not isinstance(oid, Oid):
            raise InstanceError(f"{oid!r} is not an oid")
        current = self._class_of.get(oid)
        if current is not None:
            if current != name:
                raise InstanceError(
                    f"oid {oid!r} already belongs to class {current!r}; "
                    f"classes must be pairwise disjoint"
                )
            return False
        self.classes[name].add(oid)
        self._class_of[oid] = name
        if self._indexes is not None:
            self._indexes.on_add_class_member(name, oid)
        if self._member_cache:
            self._member_cache.clear()
        return True

    def assign(self, oid: Oid, value: OValue) -> bool:
        """Set ν(oid) = value; returns True if ν changed.

        For non-set-valued oids the evaluator performs this only under the
        weak-assignment discipline (★); this method is the raw primitive and
        rejects only type-level nonsense (unknown oid, wrong shape is caught
        by :meth:`validate`).
        """
        name = self._class_of.get(oid)
        if name is None:
            raise InstanceError(f"oid {oid!r} does not belong to any class of this instance")
        if not is_ovalue(value):
            raise InstanceError(f"{value!r} is not an o-value")
        if self.nu.get(oid) == value:
            return False
        old = self.value_of(oid)
        self.nu[oid] = value
        if self._indexes is not None:
            self._indexes.on_assign(oid, old, value)
        self._note_constants(value)
        return True

    def add_set_element(self, oid: Oid, element: OValue) -> bool:
        """Add ``element`` to the (set) value of ``oid``; True if it was new.

        This is the ground fact ``ô(v)`` — only meaningful for set-valued
        oids, whose value defaults to the empty set.
        """
        name = self._class_of.get(oid)
        if name is None:
            raise InstanceError(f"oid {oid!r} does not belong to any class of this instance")
        if not self.schema.is_set_valued_class(name):
            raise InstanceError(
                f"ô(v) facts apply to set-valued oids only; {oid!r} is in class {name!r}"
            )
        current = self.nu.get(oid, OSet())
        if element in current:
            return False
        updated = current.add(element)
        self.nu[oid] = updated
        if self._indexes is not None:
            self._indexes.on_assign(oid, current, updated)
        self._note_constants(element)
        return True

    # -- removal (the deletion path: IQL* and the IVM runtime) -----------------

    def remove_relation_member(self, name: str, value: OValue) -> bool:
        """Remove ``value`` from ρ(name); returns True if it was present.

        Retracts the affected index entries *in place* (instead of
        dropping all indexes wholesale) so hot probes — and the compiled
        kernels capturing the index buckets — survive deletions.
        """
        if name not in self.relations:
            raise InstanceError(f"unknown relation {name!r}")
        members = self.relations[name]
        if value not in members:
            return False
        members.discard(value)
        if self._indexes is not None:
            self._indexes.on_remove_relation_member(name, value)
        self._forget_constants()
        return True

    def remove_class_member(self, name: str, oid: Oid) -> bool:
        """Remove ``oid`` from π(name), dropping its ν entry with it."""
        if name not in self.classes:
            raise InstanceError(f"unknown class {name!r}")
        if oid not in self.classes[name]:
            return False
        old = self.value_of(oid)
        self.classes[name].discard(oid)
        self._class_of.pop(oid, None)
        self.nu.pop(oid, None)
        if self._indexes is not None:
            self._indexes.on_remove_class_member(name, oid, old)
        if self._member_cache:
            self._member_cache.clear()
        self._forget_constants()
        return True

    def unassign(self, oid: Oid) -> bool:
        """Make ν(oid) undefined again; returns True if it had a value."""
        if oid not in self.nu:
            return False
        old = self.nu[oid]
        del self.nu[oid]
        if self._indexes is not None:
            self._indexes.on_unassign(oid, old)
        self._forget_constants()
        return True

    def remove_set_element(self, oid: Oid, element: OValue) -> bool:
        """Remove ``element`` from the set value of ``oid``; True if present."""
        name = self._class_of.get(oid)
        if name is None:
            raise InstanceError(f"oid {oid!r} does not belong to any class of this instance")
        if not self.schema.is_set_valued_class(name):
            raise InstanceError(
                f"ô(v) facts apply to set-valued oids only; {oid!r} is in class {name!r}"
            )
        current = self.nu.get(oid, OSet())
        if element not in current:
            return False
        updated = OSet(v for v in current if v != element)
        self.nu[oid] = updated
        if self._indexes is not None:
            self._indexes.on_assign(oid, current, updated)
        self._forget_constants()
        return True

    def _forget_constants(self) -> None:
        """Invalidate the constants(I) caches after a removal.

        Removal can shrink constants(I), so unlike :meth:`_note_constants`
        there is no sound incremental update — the next call recomputes.
        The member-type cache and the hash indexes are unaffected by
        relation/ν removals (membership depends only on π, and the
        indexes are retracted in place by the callers)."""
        self._constants_cache = None
        self._sorted_constants = None

    # -- observation -----------------------------------------------------------

    def class_of(self, oid: Oid) -> Optional[str]:
        """The unique class ``oid`` belongs to, or None."""
        return self._class_of.get(oid)

    def is_set_valued(self, oid: Oid) -> bool:
        name = self._class_of.get(oid)
        return name is not None and self.schema.is_set_valued_class(name)

    def value_of(self, oid: Oid) -> Optional[OValue]:
        """ν(oid), applying the paper's conventions.

        Set-valued oids always have a value (default { }); non-set-valued
        oids may be undefined (returns None).
        """
        if oid in self.nu:
            return self.nu[oid]
        if self.is_set_valued(oid):
            return OSet()
        return None

    def has_value(self, oid: Oid) -> bool:
        return self.value_of(oid) is not None

    def objects(self) -> FrozenSet[Oid]:
        """objects(I): all oids occurring in the instance."""
        out: Set[Oid] = set(self._class_of)
        for members in self.relations.values():
            for v in members:
                out |= oids_of(v)
        for v in self.nu.values():
            out |= oids_of(v)
        return frozenset(out)

    def constants(self) -> FrozenSet[OValue]:
        """constants(I): all constants occurring in the instance.

        Cached: the first call computes the set, the growth mutators keep
        it current incrementally (additions can only add constants), and
        the removal mutators invalidate it via :meth:`_forget_constants`.
        """
        if self._constants_cache is None:
            out: Set[OValue] = set()
            for members in self.relations.values():
                for v in members:
                    out |= constants_of(v)
            for v in self.nu.values():
                out |= constants_of(v)
            self._constants_cache = frozenset(out)
        return self._constants_cache

    def sorted_constants(self) -> List[OValue]:
        """constants(I) in canonical :func:`sort_key` order, cached.

        The enumeration fallback of ``solve_body`` consumes this list; the
        cache avoids re-sorting the whole constant set on every body solve.
        """
        if self._sorted_constants is None:
            self._sorted_constants = sorted(self.constants(), key=sort_key)
        return self._sorted_constants

    def member_of(self, value: OValue, t: TypeExpr) -> bool:
        """``value ∈ ⟦t⟧π`` for this instance's π, memoized.

        Body solving asks the same (type, value) membership questions
        thousands of times per step — once per candidate binding of every
        variable. Membership depends on the instance only through the
        class extents π, so cached answers stay valid until
        :meth:`add_class_member` grows π or :meth:`drop_indexes` clears
        everything around a deletion. The cache holds strong references
        to the queried values; it lives and dies with the instance.
        """
        cache = self._member_cache
        key = (t, value)
        cached = cache.get(key)
        if cached is None:
            cache[key] = cached = member(value, t, self.classes)
        return cached

    def _note_constants(self, value: OValue) -> None:
        """Fold the constants of a freshly added value into the cache."""
        if self._constants_cache is None:
            return
        fresh = constants_of(value)
        if not fresh <= self._constants_cache:
            self._constants_cache = self._constants_cache | fresh
            self._sorted_constants = None

    # -- hash indexes (repro.iql.indexes) ---------------------------------------

    @property
    def indexes(self):
        """The instance's lazily-built :class:`~repro.iql.indexes.InstanceIndexes`."""
        if self._indexes is None:
            from repro.iql.indexes import InstanceIndexes

            self._indexes = InstanceIndexes(self)
        return self._indexes

    def drop_indexes(self) -> None:
        """Discard all indexes and caches (full invalidation).

        The deletion paths (IQL* and the IVM runtime) now retract index
        entries in place through the removal mutators, so this is only
        needed when relations or ν are edited behind the mutators' backs
        — e.g. the certificate replay clearing whole derived extents.
        """
        self._indexes = None
        self._constants_cache = None
        self._sorted_constants = None
        self._member_cache.clear()

    def ground_facts(self) -> FrozenSet[GroundFact]:
        """The ground-fact representation of the instance (Section 2.3).

        Following the paper's convention, a set-valued oid with the empty
        set as value contributes no ``ô(v)`` facts, and an undefined
        non-set-valued oid contributes no ``ô = v`` fact — the class fact
        ``P(o)`` alone records its existence.
        """
        facts: Set[GroundFact] = set()
        for name, members in self.relations.items():
            for v in members:
                facts.add(("rel", name, v))
        for name, oids in self.classes.items():
            for o in oids:
                facts.add(("cls", name, o))
        for o, v in self.nu.items():
            if self.is_set_valued(o):
                for element in v:
                    facts.add(("elem", o, element))
            else:
                facts.add(("val", o, v))
        return frozenset(facts)

    def fact_count(self) -> int:
        """|ground-facts(I)| without materializing the set."""
        count = sum(len(m) for m in self.relations.values())
        count += sum(len(m) for m in self.classes.values())
        for o, v in self.nu.items():
            count += len(v) if self.is_set_valued(o) else 1
        return count

    # -- validation (Definition 2.3.2) ------------------------------------------

    def validate(self) -> None:
        """Raise :class:`InstanceError` unless this is a legal instance."""
        pi = self.classes
        for name, members in self.relations.items():
            t = self.schema.relations[name]
            for v in members:
                if not member(v, t, pi):
                    raise InstanceError(
                        f"ρ({name}) member {v!r} is not of type {t!r}"
                    )
        for name, oids in self.classes.items():
            t = self.schema.classes[name]
            for o in oids:
                v = self.value_of(o)
                if v is None:
                    continue  # undefined: legal for non-set-valued oids
                if not member(v, t, pi):
                    raise InstanceError(
                        f"ν({o!r}) = {v!r} is not of type T({name}) = {t!r}"
                    )
        for o in self.nu:
            if o not in self._class_of:
                raise InstanceError(f"ν defined on {o!r}, which belongs to no class")
        # Every oid occurring anywhere must belong to some class (Section 2.3).
        stray = self.objects() - set(self._class_of)
        if stray:
            raise InstanceError(
                f"oids occur in values but belong to no class: {sorted(stray)[:5]}"
            )

    def is_valid(self) -> bool:
        try:
            self.validate()
        except InstanceError:
            return False
        return True

    # -- structure -------------------------------------------------------------

    def copy(self) -> "Instance":
        """An independent shallow-structural copy (o-values are immutable)."""
        new = Instance(self.schema)
        for name, members in self.relations.items():
            new.relations[name] = set(members)
        for name, oids in self.classes.items():
            new.classes[name] = set(oids)
        new.nu = dict(self.nu)
        new._class_of = dict(self._class_of)
        return new

    def project(self, schema: Schema) -> "Instance":
        """I[S']: the projection of this instance on a projection schema."""
        if not schema.is_projection_of(self.schema):
            raise InstanceError("projection target is not a projection of the schema")
        new = Instance(schema)
        for name in schema.relations:
            new.relations[name] = set(self.relations[name])
        for name in schema.classes:
            for o in self.classes[name]:
                new.add_class_member(name, o)
                if o in self.nu:
                    new.nu[o] = self.nu[o]
        return new

    def with_schema(self, schema: Schema) -> "Instance":
        """Re-root this instance's content under a larger schema.

        Used to turn an input instance over Sin into the starting instance
        over the program schema S ⊇ Sin.
        """
        new = Instance(schema)
        for name, members in self.relations.items():
            new.relations[name] = set(members)
        for name, oids in self.classes.items():
            for o in oids:
                new.add_class_member(name, o)
        new.nu.update(self.nu)
        return new

    # -- pickling ----------------------------------------------------------------

    def __getstate__(self):
        """Pickle only ``(ρ, π, ν)`` and the schema.

        The lazy index registry, the constants caches and the member-type
        memo are coordinator-local evaluation artifacts: a process worker
        receiving this instance must build its own (the parallel
        certificate's runtime-surface audit pins this exclusion), and a
        snapshot written to disk should not drag an index graph with it.
        ``_class_of`` is real state (the disjointness map) and travels.
        """
        return (
            self.schema,
            self.relations,
            self.classes,
            self.nu,
            self._class_of,
        )

    def __setstate__(self, state) -> None:
        self.schema, self.relations, self.classes, self.nu, self._class_of = state
        self._indexes = None
        self._constants_cache = None
        self._sorted_constants = None
        self._member_cache = {}

    # -- dunder -----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Literal equality: same schema and same ground facts."""
        return (
            isinstance(other, Instance)
            and self.schema == other.schema
            and self.relations == other.relations
            and self.classes == other.classes
            and self._normalized_nu() == other._normalized_nu()
        )

    def _normalized_nu(self) -> Dict[Oid, OValue]:
        """ν with default empty sets dropped, for equality and hashing."""
        return {
            o: v
            for o, v in self.nu.items()
            if not (self.is_set_valued(o) and len(v) == 0)
        }

    def __hash__(self):  # pragma: no cover - instances are mutable
        raise TypeError("instances are mutable and unhashable")

    def __repr__(self) -> str:
        parts = []
        for name in sorted(self.relations):
            parts.append(f"ρ({name}) = {sorted(map(repr, self.relations[name]))}")
        for name in sorted(self.classes):
            parts.append(f"π({name}) = {sorted(map(repr, self.classes[name]))}")
        shown = {o: v for o, v in sorted(self.nu.items(), key=lambda kv: kv[0].serial)}
        for o, v in shown.items():
            parts.append(f"ν({o!r}) = {v!r}")
        return "\n".join(parts) or "instance ∅"
