"""O-isomorphisms and DO-isomorphisms between instances (Section 4.1).

The paper's key relaxation of query functionality: two instances "contain
the same information" when they are O-isomorphic — related by a bijection
on oids (constants held fixed) that carries relations, classes and ν across.
DO-isomorphisms additionally permute constants, and genericity (Definition
4.1.1, condition 3) quantifies over them.

This module provides:

* :func:`apply_o_isomorphism` / :func:`apply_do_isomorphism` — apply a
  given (partial) bijection to an instance,
* :func:`find_o_isomorphism` — search for an O-isomorphism between two
  instances (partition-refinement canonical colouring to prune,
  backtracking inside genuinely symmetric colour classes to decide; exact),
* :func:`are_o_isomorphic` — the Boolean convenience wrapper,
* :func:`refine_colours` — the joint canonical colouring itself, usable
  across any number of instances at once (copy elimination groups the
  copies of Definition 4.2.3 this way),
* :func:`automorphisms` — enumerate O-automorphisms of one instance, used
  by the genericity check of the ``choose`` primitive (Section 4.4),
* :func:`find_o_isomorphism_reference` — the original digest-recomputing
  search, kept verbatim as the differential-testing oracle.

Deciding O-isomorphism is graph-isomorphism-hard in general; the instances
in the paper's constructions (and in our experiments) are small, and colour
refinement makes typical cases near-linear.

The refinement is a Weisfeiler–Leman-style iteration over the *interned*
value DAG (:mod:`repro.values.intern`): per round, each oid's colour is
rehashed from its class, the skeleton of ν(o), and the multiset of
relation members it occurs in. Skeleton digests are memoized per
(interned node, round) — shared subvalues are digested once — and
oid-free subtrees reuse their precomputed structural hash outright, so a
refinement round costs time proportional to the number of *distinct*
oid-bearing nodes, not to the total tree size. Digest collisions can only
merge colour classes (costing search time), never split them, so the
backtracking search stays exact; the final candidate is verified against
full instance equality.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.schema.instance import Instance
from repro.values.ovalues import (
    Oid,
    OSet,
    OTuple,
    OValue,
    is_constant,
    oids_of,
    substitute_oids,
)


def apply_o_isomorphism(instance: Instance, mapping: Mapping[Oid, Oid]) -> Instance:
    """The image of ``instance`` under an oid bijection (constants fixed).

    Oids outside the mapping are left unchanged, so a partial renaming of
    just-invented oids is expressible too. One substitution memo is shared
    across the whole instance: every distinct (interned) value node is
    rewritten at most once.
    """
    memo: Dict[int, OValue] = {}
    new = Instance(instance.schema)
    for name, members in instance.relations.items():
        new.relations[name] = {substitute_oids(v, mapping, memo) for v in members}
    for name, oids in instance.classes.items():
        for o in oids:
            new.add_class_member(name, mapping.get(o, o))
    for o, v in instance.nu.items():
        new.nu[mapping.get(o, o)] = substitute_oids(v, mapping, memo)
    return new


def apply_do_isomorphism(
    instance: Instance,
    oid_map: Mapping[Oid, Oid],
    const_map: Mapping[OValue, OValue],
) -> Instance:
    """The image of ``instance`` under a DO-isomorphism (oids and constants)."""

    def rewrite(value: OValue) -> OValue:
        if isinstance(value, Oid):
            return oid_map.get(value, value)
        if isinstance(value, OTuple):
            return OTuple({attr: rewrite(v) for attr, v in value.items()})
        if isinstance(value, OSet):
            return OSet(rewrite(v) for v in value)
        if is_constant(value):
            return const_map.get(value, value)
        return value

    new = Instance(instance.schema)
    for name, members in instance.relations.items():
        new.relations[name] = {rewrite(v) for v in members}
    for name, oids in instance.classes.items():
        for o in oids:
            new.add_class_member(name, oid_map.get(o, o))
    for o, v in instance.nu.items():
        new.nu[oid_map.get(o, o)] = rewrite(v)
    return new


# -- partition refinement -------------------------------------------------------


def _value_skeleton(value: OValue, colour: Dict[Oid, int], memo: Dict[int, int]) -> int:
    """An integer digest of ``value`` with oids replaced by their colours.

    Memoized per interned node for the current round (``memo``); oid-free
    subtrees are round-invariant and reuse their precomputed hash. A
    digest is a *function* of (structure, colours), so equal structures
    under equal colours always digest equally — collisions can merge
    colour classes but never split them, preserving exactness.
    """
    if isinstance(value, Oid):
        return hash((0xA1D, colour.get(value, -1)))
    if isinstance(value, (OTuple, OSet)):
        if not oids_of(value):
            return hash(value)
        key = id(value)
        hit = memo.get(key)
        if hit is not None:
            return hit
        if isinstance(value, OTuple):
            out = hash(
                ("tup",)
                + tuple((attr, _value_skeleton(v, colour, memo)) for attr, v in value._fields)
            )
        else:
            out = hash(
                ("set", tuple(sorted(_value_skeleton(v, colour, memo) for v in value._elements)))
            )
        memo[key] = out
        return out
    return hash(value)


#: Signature slot for an undefined ν(o); any hash collision with a real
#: skeleton digest merely merges colour classes, which the exact final
#: verification absorbs.
_NO_VALUE = 0x7E0F_11ED


def refine_colours(instances: Sequence[Instance]) -> List[Dict[Oid, int]]:
    """Joint canonical colourings of the class oids of several instances.

    All instances are refined together against one shared colour space, so
    colour ids are directly comparable *across* instances: two oids —
    possibly in different instances — receive the same colour exactly when
    the refinement cannot tell them apart. Corresponding oids of
    O-isomorphic instances therefore always share a colour, which is what
    lets :func:`find_o_isomorphism` pair colour classes by id and what
    lets copy elimination match any number of copies in a single pass.

    The iteration is delta-driven: an oid's signature is recomputed only
    when its own colour or the colour of an oid it depends on (through
    ν(o) or a shared relation member) changed in the previous round, and a
    colour class is renumbered only when it actually splits — the subgroup
    with the canonically smallest signature keeps the old id. Long thin
    structures (the E1b chains) therefore cost work proportional to the
    colour *changes* they induce, not rounds × instance size.
    """
    colours: List[Dict[Oid, int]] = []
    oid_lists: List[List[Oid]] = []
    occurrence_lists: List[Dict[Oid, List[Tuple[str, OValue]]]] = []
    value_maps: List[Dict[Oid, Optional[OValue]]] = []
    rdeps: List[Dict[Oid, List[Oid]]] = []

    init_groups: Dict[tuple, List[Tuple[int, Oid]]] = {}
    for index, instance in enumerate(instances):
        oids = sorted(instance._class_of, key=lambda o: o.serial)
        oid_lists.append(oids)
        for o in oids:
            key = (instance.class_of(o), instance.value_of(o) is not None)
            init_groups.setdefault(key, []).append((index, o))
        occurrences: Dict[Oid, List[Tuple[str, OValue]]] = {o: [] for o in oids}
        for name, members in instance.relations.items():
            for v in members:
                for o in oids_of(v):
                    if o in occurrences:
                        occurrences[o].append((name, v))
        occurrence_lists.append(occurrences)
        values = {o: instance.value_of(o) for o in oids}
        value_maps.append(values)
        # o depends on x when x occurs in ν(o) or in a relation member
        # containing o: those are exactly the colours o's signature reads.
        rdep: Dict[Oid, List[Oid]] = {o: [] for o in oids}
        for o in oids:
            deps: set = set()
            v = values[o]
            if v is not None:
                deps |= oids_of(v)
            for _, member in occurrences[o]:
                deps |= oids_of(member)
            for x in deps:
                if x in rdep:
                    rdep[x].append(o)
        rdeps.append(rdep)
        colours.append({})

    # Initial colours: one id per (class, has-value) signature, assigned in
    # sorted signature order so the numbering is canonical.
    next_id = 0
    members_of: Dict[int, List[Tuple[int, Oid]]] = {}
    for key in sorted(init_groups):
        group = init_groups[key]
        for index, o in group:
            colours[index][o] = next_id
        members_of[next_id] = list(group)
        next_id += 1

    sig_store: Dict[Tuple[int, int], tuple] = {}
    changed: List[Tuple[int, Oid]] = [
        (index, o) for index, oids in enumerate(oid_lists) for o in oids
    ]
    total = len(changed)
    rounds = 0
    while changed and rounds <= total:
        rounds += 1
        # 1. Everything whose signature inputs moved gets recomputed.
        to_update: set = set(changed)
        for index, o in changed:
            rdep = rdeps[index]
            for dependent in rdep.get(o, ()):
                to_update.add((index, dependent))
        affected: Dict[int, None] = {}
        memos: List[Dict[int, int]] = [{} for _ in instances]
        for index, o in to_update:
            colour = colours[index]
            memo = memos[index]
            v = value_maps[index][o]
            occurrences = occurrence_lists[index][o]
            occ = (
                tuple(
                    sorted(
                        hash((name, _value_skeleton(member, colour, memo)))
                        for name, member in occurrences
                    )
                )
                if occurrences
                else ()
            )
            sig = (
                _value_skeleton(v, colour, memo) if v is not None else _NO_VALUE,
                occ,
            )
            key = (index, id(o))
            if sig_store.get(key) != sig:
                sig_store[key] = sig
                affected[colour[o]] = None
        # 2. Affected classes split where their members' signatures differ;
        # the subgroup with the smallest signature keeps the old id, so a
        # class that merely *recomputed* to the same partition stays put.
        new_changed: List[Tuple[int, Oid]] = []
        for colour_id in sorted(affected):
            group = members_of[colour_id]
            if len(group) == 1:
                continue
            by_sig: Dict[tuple, List[Tuple[int, Oid]]] = {}
            for index, o in group:
                by_sig.setdefault(sig_store[(index, id(o))], []).append((index, o))
            if len(by_sig) == 1:
                continue
            ordered = sorted(by_sig)
            members_of[colour_id] = by_sig[ordered[0]]
            for sig in ordered[1:]:
                fresh = next_id
                next_id += 1
                subgroup = by_sig[sig]
                members_of[fresh] = subgroup
                for index, o in subgroup:
                    colours[index][o] = fresh
                    new_changed.append((index, o))
        changed = new_changed
    return colours


def _check_mapping(source: Instance, target: Instance, mapping: Mapping[Oid, Oid]) -> bool:
    """Full verification that ``mapping`` is an O-isomorphism source→target."""
    return apply_o_isomorphism(source, mapping) == target


def _groups(colour: Dict[Oid, int]) -> Dict[int, List[Oid]]:
    keyed: Dict[int, List[Oid]] = {}
    for o, c in colour.items():
        keyed.setdefault(c, []).append(o)
    return keyed


def _match_with_colours(
    source: Instance,
    target: Instance,
    src_colour: Dict[Oid, int],
    tgt_colour: Dict[Oid, int],
) -> Optional[Dict[Oid, Oid]]:
    """Backtracking search for an O-isomorphism given joint colourings.

    Colour ids come from one shared refinement, so classes pair directly
    by id; the search permutes only inside classes the refinement could
    not split — the genuinely symmetric ones. Smaller classes go first so
    a doomed branch fails before the expensive permutations start. The
    final candidate is verified against full instance equality, keeping
    refinement (and any digest collisions in it) a pure optimization.
    """
    src_groups = _groups(src_colour)
    tgt_groups = _groups(tgt_colour)
    if set(src_groups) != set(tgt_groups):
        return None
    if any(len(src_groups[k]) != len(tgt_groups[k]) for k in src_groups):
        return None

    ordered_keys = sorted(src_groups, key=lambda k: (len(src_groups[k]), k))
    src_lists = [sorted(src_groups[k], key=lambda o: o.serial) for k in ordered_keys]
    tgt_lists = [sorted(tgt_groups[k], key=lambda o: o.serial) for k in ordered_keys]

    def search(index: int, mapping: Dict[Oid, Oid]) -> Optional[Dict[Oid, Oid]]:
        if index == len(src_lists):
            return dict(mapping) if _check_mapping(source, target, mapping) else None
        src_list = src_lists[index]
        for perm in permutations(tgt_lists[index]):
            for s, t in zip(src_list, perm):
                mapping[s] = t
            result = search(index + 1, mapping)
            if result is not None:
                return result
            for s in src_list:
                del mapping[s]
        return None

    return search(0, {})


def find_o_isomorphism(source: Instance, target: Instance) -> Optional[Dict[Oid, Oid]]:
    """An O-isomorphism from ``source`` onto ``target``, or None.

    Exact: joint colour refinement partitions the oids of both instances
    against one signature table; backtracking matches colour classes; the
    final candidate is verified against the full instance equality (so
    refinement is purely an optimization).
    """
    if source.schema != target.schema:
        return None
    if source.constants() != target.constants():
        return None
    for name in source.classes:
        if len(source.classes[name]) != len(target.classes[name]):
            return None
    for name in source.relations:
        if len(source.relations[name]) != len(target.relations[name]):
            return None

    src_colour, tgt_colour = refine_colours([source, target])
    return _match_with_colours(source, target, src_colour, tgt_colour)


def are_o_isomorphic(source: Instance, target: Instance) -> bool:
    """True iff the two instances are identical up to renaming of oids."""
    return find_o_isomorphism(source, target) is not None


def automorphisms(instance: Instance, limit: int = 10_000) -> Iterator[Dict[Oid, Oid]]:
    """All O-automorphisms of ``instance`` (up to ``limit`` candidates tried).

    Section 4.4's ``choose`` must pick an object only when the choice cannot
    be observed — i.e. when the candidates lie in a single orbit of the
    automorphism group. The proof of Theorem 4.3.1 exhibits exactly such an
    automorphism (h0 swapping a/b and rotating the quadrangle); here we
    enumerate oid-only automorphisms, sufficient for the copy-elimination
    uses where constants are fixed.
    """
    (colour,) = refine_colours([instance])
    by_colour = _groups(colour)
    lists = [sorted(v, key=lambda o: o.serial) for _, v in sorted(by_colour.items())]

    tried = 0

    def search(index: int, mapping: Dict[Oid, Oid]) -> Iterator[Dict[Oid, Oid]]:
        nonlocal tried
        if index == len(lists):
            tried += 1
            if tried > limit:
                raise RuntimeError("automorphism enumeration limit exceeded")
            if _check_mapping(instance, instance, mapping):
                yield dict(mapping)
            return
        members = lists[index]
        for perm in permutations(members):
            for s, t in zip(members, perm):
                mapping[s] = t
            yield from search(index + 1, mapping)
        for s in members:
            mapping.pop(s, None)

    yield from search(0, {})


def orbit_partition(instance: Instance, oids: List[Oid]) -> List[FrozenSet[Oid]]:
    """Partition ``oids`` into orbits of the O-automorphism group.

    Two oids in the same orbit are observationally indistinguishable: a
    generic query cannot treat them differently. ``choose`` is generic
    exactly when its candidate set is contained in one orbit.
    """
    parent: Dict[Oid, Oid] = {o: o for o in oids}

    def find(o: Oid) -> Oid:
        while parent[o] is not o:
            parent[o] = parent[parent[o]]
            o = parent[o]
        return o

    def join(a: Oid, b: Oid) -> None:
        ra, rb = find(a), find(b)
        if ra is not rb:
            parent[ra] = rb

    for auto in automorphisms(instance):
        for o in oids:
            image = auto.get(o, o)
            if image in parent:
                join(o, image)
    groups: Dict[Oid, set] = {}
    for o in oids:
        groups.setdefault(find(o), set()).add(o)
    return [frozenset(g) for g in groups.values()]


# -- the original search, kept as the differential-testing oracle ----------------
#
# PR 3 replaced the md5-digest colour refinement below with the memoized
# partition refinement above. The original is retained verbatim (modulo
# naming) so property tests can check the two searches agree on random
# instance pairs — the same discipline PR 2 used for the join engine.


def _skeleton_reference(value: OValue, colour: Mapping[Oid, str]):
    """The shape of a value with oids replaced by their current colours."""
    if isinstance(value, Oid):
        return ("oid", colour.get(value, -1))
    if isinstance(value, OTuple):
        return (
            "tup",
            tuple((attr, _skeleton_reference(v, colour)) for attr, v in value.items()),
        )
    if isinstance(value, OSet):
        return ("set", tuple(sorted(repr(_skeleton_reference(v, colour)) for v in value)))
    return ("const", value)


def _refine_reference(instance: Instance) -> Dict[Oid, str]:
    """Canonical colouring of the instance's class oids (original version).

    Initial colour: a digest of (class name, has-value?). Refinement: fold
    in the skeleton of ν(o) and the multiset of relation members the oid
    occurs in, until the induced partition stabilizes. Colours are
    *canonical strings* (stable hashes of structural signatures), so two
    O-isomorphic oids — even in different instances — receive the same
    colour; the matching search below pairs colour classes by name.
    """
    import hashlib

    def digest(payload: str) -> str:
        return hashlib.md5(payload.encode()).hexdigest()

    oids = sorted(instance._class_of, key=lambda o: o.serial)
    colour: Dict[Oid, str] = {
        o: digest(repr((instance.class_of(o), instance.value_of(o) is not None)))
        for o in oids
    }

    occurrences: Dict[Oid, List[Tuple[str, OValue]]] = {o: [] for o in oids}
    for name, members in instance.relations.items():
        for v in members:
            for o in oids_of(v):
                if o in occurrences:
                    occurrences[o].append((name, v))

    def partition(c: Dict[Oid, str]):
        groups: Dict[str, set] = {}
        for o, col in c.items():
            groups.setdefault(col, set()).add(o)
        return frozenset(frozenset(g) for g in groups.values())

    for _ in range(len(oids) + 1):
        new_colour = {}
        for o in oids:
            v = instance.value_of(o)
            occ = tuple(
                sorted(
                    repr((name, _skeleton_reference(member, colour)))
                    for name, member in occurrences[o]
                )
            )
            new_colour[o] = digest(
                repr(
                    (
                        colour[o],
                        _skeleton_reference(v, colour) if v is not None else None,
                        occ,
                    )
                )
            )
        if partition(new_colour) == partition(colour):
            colour = new_colour
            break
        colour = new_colour
    return colour


def find_o_isomorphism_reference(
    source: Instance, target: Instance
) -> Optional[Dict[Oid, Oid]]:
    """The pre-PR-3 O-isomorphism search (digest-recomputing; exact)."""
    if source.schema != target.schema:
        return None
    if source.constants() != target.constants():
        return None
    for name in source.classes:
        if len(source.classes[name]) != len(target.classes[name]):
            return None
    for name in source.relations:
        if len(source.relations[name]) != len(target.relations[name]):
            return None

    src_colour = _refine_reference(source)
    tgt_colour = _refine_reference(target)

    def groups(colour: Dict[Oid, str]) -> Dict[str, List[Oid]]:
        keyed: Dict[str, List[Oid]] = {}
        for o, c in colour.items():
            keyed.setdefault(c, []).append(o)
        return keyed

    src_groups = groups(src_colour)
    tgt_groups = groups(tgt_colour)
    if set(src_groups) != set(tgt_groups):
        return None
    if any(len(src_groups[k]) != len(tgt_groups[k]) for k in src_groups):
        return None

    ordered_keys = sorted(src_groups, key=repr)
    src_lists = [sorted(src_groups[k], key=lambda o: o.serial) for k in ordered_keys]
    tgt_lists = [sorted(tgt_groups[k], key=lambda o: o.serial) for k in ordered_keys]

    def search(index: int, mapping: Dict[Oid, Oid]) -> Optional[Dict[Oid, Oid]]:
        if index == len(src_lists):
            return dict(mapping) if _check_mapping(source, target, mapping) else None
        src_list = src_lists[index]
        for perm in permutations(tgt_lists[index]):
            for s, t in zip(src_list, perm):
                mapping[s] = t
            result = search(index + 1, mapping)
            if result is not None:
                return result
            for s in src_list:
                del mapping[s]
        return None

    return search(0, {})
