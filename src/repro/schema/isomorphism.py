"""O-isomorphisms and DO-isomorphisms between instances (Section 4.1).

The paper's key relaxation of query functionality: two instances "contain
the same information" when they are O-isomorphic — related by a bijection
on oids (constants held fixed) that carries relations, classes and ν across.
DO-isomorphisms additionally permute constants, and genericity (Definition
4.1.1, condition 3) quantifies over them.

This module provides:

* :func:`apply_o_isomorphism` / :func:`apply_do_isomorphism` — apply a
  given (partial) bijection to an instance,
* :func:`find_o_isomorphism` — search for an O-isomorphism between two
  instances (colour refinement to prune, backtracking to decide; exact),
* :func:`are_o_isomorphic` — the Boolean convenience wrapper,
* :func:`automorphisms` — enumerate O-automorphisms of one instance, used
  by the genericity check of the ``choose`` primitive (Section 4.4).

Deciding O-isomorphism is graph-isomorphism-hard in general; the instances
in the paper's constructions (and in our experiments) are small, and colour
refinement makes typical cases near-linear.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Tuple

from repro.schema.instance import Instance
from repro.values.ovalues import Oid, OSet, OTuple, OValue, is_constant, substitute_oids


def apply_o_isomorphism(instance: Instance, mapping: Mapping[Oid, Oid]) -> Instance:
    """The image of ``instance`` under an oid bijection (constants fixed).

    Oids outside the mapping are left unchanged, so a partial renaming of
    just-invented oids is expressible too.
    """
    new = Instance(instance.schema)
    for name, members in instance.relations.items():
        new.relations[name] = {substitute_oids(v, mapping) for v in members}
    for name, oids in instance.classes.items():
        for o in oids:
            new.add_class_member(name, mapping.get(o, o))
    for o, v in instance.nu.items():
        new.nu[mapping.get(o, o)] = substitute_oids(v, mapping)
    return new


def apply_do_isomorphism(
    instance: Instance,
    oid_map: Mapping[Oid, Oid],
    const_map: Mapping[OValue, OValue],
) -> Instance:
    """The image of ``instance`` under a DO-isomorphism (oids and constants)."""

    def rewrite(value: OValue) -> OValue:
        if isinstance(value, Oid):
            return oid_map.get(value, value)
        if isinstance(value, OTuple):
            return OTuple({attr: rewrite(v) for attr, v in value.items()})
        if isinstance(value, OSet):
            return OSet(rewrite(v) for v in value)
        if is_constant(value):
            return const_map.get(value, value)
        return value

    new = Instance(instance.schema)
    for name, members in instance.relations.items():
        new.relations[name] = {rewrite(v) for v in members}
    for name, oids in instance.classes.items():
        for o in oids:
            new.add_class_member(name, oid_map.get(o, o))
    for o, v in instance.nu.items():
        new.nu[oid_map.get(o, o)] = rewrite(v)
    return new


# -- colour refinement ---------------------------------------------------------


def _skeleton(value: OValue, colour: Mapping[Oid, int]):
    """The shape of a value with oids replaced by their current colours."""
    if isinstance(value, Oid):
        return ("oid", colour.get(value, -1))
    if isinstance(value, OTuple):
        return ("tup", tuple((attr, _skeleton(v, colour)) for attr, v in value.items()))
    if isinstance(value, OSet):
        return ("set", tuple(sorted(repr(_skeleton(v, colour)) for v in value)))
    return ("const", value)


def _refine(instance: Instance) -> Dict[Oid, str]:
    """Canonical colouring of the instance's class oids.

    Initial colour: a digest of (class name, has-value?). Refinement: fold
    in the skeleton of ν(o) and the multiset of relation members the oid
    occurs in, until the induced partition stabilizes. Colours are
    *canonical strings* (stable hashes of structural signatures), so two
    O-isomorphic oids — even in different instances — receive the same
    colour; the matching search below pairs colour classes by name.
    """
    import hashlib

    def digest(payload: str) -> str:
        return hashlib.md5(payload.encode()).hexdigest()

    oids = sorted(instance._class_of, key=lambda o: o.serial)
    colour: Dict[Oid, str] = {
        o: digest(repr((instance.class_of(o), instance.value_of(o) is not None)))
        for o in oids
    }

    # Precompute which relation members mention which oids.
    from repro.values.ovalues import oids_of

    occurrences: Dict[Oid, List[Tuple[str, OValue]]] = {o: [] for o in oids}
    for name, members in instance.relations.items():
        for v in members:
            for o in oids_of(v):
                if o in occurrences:
                    occurrences[o].append((name, v))

    def partition(c: Dict[Oid, str]):
        groups: Dict[str, frozenset] = {}
        for o, col in c.items():
            groups.setdefault(col, set()).add(o)  # type: ignore[arg-type]
        return frozenset(frozenset(g) for g in groups.values())

    for _ in range(len(oids) + 1):
        new_colour = {}
        for o in oids:
            v = instance.value_of(o)
            occ = tuple(
                sorted(
                    repr((name, _skeleton(member, colour)))
                    for name, member in occurrences[o]
                )
            )
            new_colour[o] = digest(
                repr(
                    (
                        colour[o],
                        _skeleton(v, colour) if v is not None else None,
                        occ,
                    )
                )
            )
        if partition(new_colour) == partition(colour):
            colour = new_colour
            break
        colour = new_colour
    return colour


def _check_mapping(source: Instance, target: Instance, mapping: Mapping[Oid, Oid]) -> bool:
    """Full verification that ``mapping`` is an O-isomorphism source→target."""
    return apply_o_isomorphism(source, mapping) == target


def find_o_isomorphism(source: Instance, target: Instance) -> Optional[Dict[Oid, Oid]]:
    """An O-isomorphism from ``source`` onto ``target``, or None.

    Exact: colour refinement partitions the oids; backtracking matches
    colour classes; the final candidate is verified against the full
    instance equality (so refinement is purely an optimization).
    """
    if source.schema != target.schema:
        return None
    if source.constants() != target.constants():
        return None
    for name in source.classes:
        if len(source.classes[name]) != len(target.classes[name]):
            return None
    for name in source.relations:
        if len(source.relations[name]) != len(target.relations[name]):
            return None

    src_colour = _refine(source)
    tgt_colour = _refine(target)

    # Colours are canonical strings, so grouping by colour aligns the two
    # instances directly.
    def groups(colour: Dict[Oid, str]) -> Dict[str, List[Oid]]:
        keyed: Dict[str, List[Oid]] = {}
        for o, c in colour.items():
            keyed.setdefault(c, []).append(o)
        return keyed

    src_groups = groups(src_colour)
    tgt_groups = groups(tgt_colour)
    if set(src_groups) != set(tgt_groups):
        return None
    if any(len(src_groups[k]) != len(tgt_groups[k]) for k in src_groups):
        return None

    ordered_keys = sorted(src_groups, key=repr)
    src_lists = [sorted(src_groups[k], key=lambda o: o.serial) for k in ordered_keys]
    tgt_lists = [sorted(tgt_groups[k], key=lambda o: o.serial) for k in ordered_keys]

    def search(index: int, mapping: Dict[Oid, Oid]) -> Optional[Dict[Oid, Oid]]:
        if index == len(src_lists):
            return dict(mapping) if _check_mapping(source, target, mapping) else None
        src_list = src_lists[index]
        for perm in permutations(tgt_lists[index]):
            for s, t in zip(src_list, perm):
                mapping[s] = t
            result = search(index + 1, mapping)
            if result is not None:
                return result
            for s in src_list:
                del mapping[s]
        return None

    return search(0, {})


def are_o_isomorphic(source: Instance, target: Instance) -> bool:
    """True iff the two instances are identical up to renaming of oids."""
    return find_o_isomorphism(source, target) is not None


def automorphisms(instance: Instance, limit: int = 10_000) -> Iterator[Dict[Oid, Oid]]:
    """All O-automorphisms of ``instance`` (up to ``limit`` candidates tried).

    Section 4.4's ``choose`` must pick an object only when the choice cannot
    be observed — i.e. when the candidates lie in a single orbit of the
    automorphism group. The proof of Theorem 4.3.1 exhibits exactly such an
    automorphism (h0 swapping a/b and rotating the quadrangle); here we
    enumerate oid-only automorphisms, sufficient for the copy-elimination
    uses where constants are fixed.
    """
    colour = _refine(instance)
    by_colour: Dict[int, List[Oid]] = {}
    for o, c in colour.items():
        by_colour.setdefault(c, []).append(o)
    lists = [sorted(v, key=lambda o: o.serial) for _, v in sorted(by_colour.items())]

    tried = 0

    def search(index: int, mapping: Dict[Oid, Oid]) -> Iterator[Dict[Oid, Oid]]:
        nonlocal tried
        if index == len(lists):
            tried += 1
            if tried > limit:
                raise RuntimeError("automorphism enumeration limit exceeded")
            if _check_mapping(instance, instance, mapping):
                yield dict(mapping)
            return
        members = lists[index]
        for perm in permutations(members):
            for s, t in zip(members, perm):
                mapping[s] = t
            yield from search(index + 1, mapping)
        for s in members:
            mapping.pop(s, None)

    yield from search(0, {})


def orbit_partition(instance: Instance, oids: List[Oid]) -> List[FrozenSet[Oid]]:
    """Partition ``oids`` into orbits of the O-automorphism group.

    Two oids in the same orbit are observationally indistinguishable: a
    generic query cannot treat them differently. ``choose`` is generic
    exactly when its candidate set is contained in one orbit.
    """
    parent: Dict[Oid, Oid] = {o: o for o in oids}

    def find(o: Oid) -> Oid:
        while parent[o] is not o:
            parent[o] = parent[parent[o]]
            o = parent[o]
        return o

    def join(a: Oid, b: Oid) -> None:
        ra, rb = find(a), find(b)
        if ra is not rb:
            parent[ra] = rb

    for auto in automorphisms(instance):
        for o in oids:
            image = auto.get(o, o)
            if image in parent:
                join(o, image)
    groups: Dict[Oid, set] = {}
    for o in oids:
        groups.setdefault(find(o), set()).add(o)
    return [frozenset(g) for g in groups.values()]
