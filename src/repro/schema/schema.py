"""Database schemas (Definition 2.3.1).

A schema is a triple ``(R, P, T)``: finite sets of relation names and class
names, and a typing function T from ``R ∪ P`` to type expressions over P.
Relations hold finite sets of o-values directly (duplicate-eliminated);
classes hold finite sets of oids whose values are given by the instance's
partial function ν — the relation/class dichotomy the paper argues for in
Section 2.3 and revisits in the conclusions (point 6).

Schemas support the alternative surface syntax of Definition 2.3.1 via
:mod:`repro.parser.schema_parser`; here they are constructed
programmatically::

    schema = Schema(
        relations={"R": tuple_of(A1=D, A2=D)},
        classes={"P": tuple_of(A1=D, A2=set_of(classref("P")))},
    )
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional

from repro.errors import SchemaError
from repro.typesys.expressions import SetOf, TypeExpr


class Schema:
    """An immutable schema ``(R, P, T)``.

    ``relations`` maps each relation name R to T(R) (the *member* type: the
    relation itself has type {T(R)}, as the paper notes). ``classes`` maps
    each class name P to T(P) (the type of ν(o) for o ∈ π(P)).
    """

    __slots__ = ("relations", "classes", "_hash")

    def __init__(
        self,
        relations: Optional[Mapping[str, TypeExpr]] = None,
        classes: Optional[Mapping[str, TypeExpr]] = None,
    ):
        rels: Dict[str, TypeExpr] = dict(relations or {})
        clss: Dict[str, TypeExpr] = dict(classes or {})
        overlap = set(rels) & set(clss)
        if overlap:
            raise SchemaError(f"names used as both relation and class: {sorted(overlap)}")
        for name, t in {**rels, **clss}.items():
            if not isinstance(name, str) or not name:
                raise SchemaError(f"invalid name {name!r}")
            if not isinstance(t, TypeExpr):
                raise SchemaError(f"T({name}) is not a type expression: {t!r}")
            unknown = t.class_names() - set(clss)
            if unknown:
                raise SchemaError(
                    f"T({name}) references undeclared classes {sorted(unknown)}; "
                    f"types may refer to base domains and class names only"
                )
        self.relations: Dict[str, TypeExpr] = rels
        self.classes: Dict[str, TypeExpr] = clss
        self._hash = hash(
            (tuple(sorted(rels.items(), key=lambda kv: kv[0])),
             tuple(sorted(clss.items(), key=lambda kv: kv[0])))
        )

    # -- accessors ------------------------------------------------------------

    def type_of(self, name: str) -> TypeExpr:
        """T(name), for a relation or class name."""
        if name in self.relations:
            return self.relations[name]
        if name in self.classes:
            return self.classes[name]
        raise SchemaError(f"unknown name {name!r}")

    def is_relation(self, name: str) -> bool:
        return name in self.relations

    def is_class(self, name: str) -> bool:
        return name in self.classes

    def is_set_valued_class(self, name: str) -> bool:
        """True iff T(P) = {t}: oids of P are *set valued* (Section 2.3)."""
        return name in self.classes and isinstance(self.classes[name], SetOf)

    @property
    def names(self) -> FrozenSet[str]:
        return frozenset(self.relations) | frozenset(self.classes)

    # -- construction helpers --------------------------------------------------

    def with_names(
        self,
        relations: Optional[Mapping[str, TypeExpr]] = None,
        classes: Optional[Mapping[str, TypeExpr]] = None,
    ) -> "Schema":
        """A new schema extending this one with additional names.

        IQL programs run over a schema S of which the input and output
        schemas are projections; this helper builds S from Sin plus the
        program's auxiliary relations and classes.
        """
        rels = dict(self.relations)
        clss = dict(self.classes)
        for name, t in (relations or {}).items():
            if name in rels and rels[name] != t:
                raise SchemaError(f"conflicting redeclaration of relation {name!r}")
            rels[name] = t
        for name, t in (classes or {}).items():
            if name in clss and clss[name] != t:
                raise SchemaError(f"conflicting redeclaration of class {name!r}")
            clss[name] = t
        return Schema(rels, clss)

    def merge(self, other: "Schema") -> "Schema":
        """The union of two schemas (names typed identically where shared)."""
        return self.with_names(other.relations, other.classes)

    def project(self, names: Iterable[str]) -> "Schema":
        """The projection of this schema on ``names`` (Section 3, opening).

        The result must itself be a well-formed schema: every class
        referenced by a retained type must be retained too, which
        :class:`Schema`'s constructor enforces.
        """
        keep = set(names)
        unknown = keep - self.names
        if unknown:
            raise SchemaError(f"cannot project on unknown names {sorted(unknown)}")
        return Schema(
            {r: t for r, t in self.relations.items() if r in keep},
            {p: t for p, t in self.classes.items() if p in keep},
        )

    def is_projection_of(self, other: "Schema") -> bool:
        """True iff this schema is a projection of ``other``."""
        for name, t in self.relations.items():
            if other.relations.get(name) != t:
                return False
        for name, t in self.classes.items():
            if other.classes.get(name) != t:
                return False
        return True

    # -- dunder ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Schema)
            and self.relations == other.relations
            and self.classes == other.classes
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        lines = []
        if self.relations:
            rels = ", ".join(f"{r}: {{{t!r}}}" for r, t in sorted(self.relations.items()))
            lines.append(f"relation {rels}")
        if self.classes:
            clss = ", ".join(f"{p}: {t!r}" for p, t in sorted(self.classes.items()))
            lines.append(f"class {clss}")
        return "\n".join(lines) or "schema ∅"
