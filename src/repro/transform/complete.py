"""The completeness construction of Theorem 4.2.4, at executable scale.

The proof of Lemma 4.2.5 builds an IQL program G# that, on input I0,

1. visits pairs (i, j) in the dovetailing order (1,1), (2,1), (2,2),
   (3,1), ... — i bounds the number of output oids, j the steps of the
   yes/no acceptor Gy/n,
2. invents i oids and *enumerates* all candidate output instances built
   from them and the input's constants,
3. uses the acceptor to keep the candidates that are images of I0 under
   the target dio-transformation γ — by genericity these candidates are
   pairwise O-isomorphic,
4. decodes them into an instance with copies (Definition 4.2.3).

Running the literal IQL encoding is astronomically expensive (the paper
never suggests otherwise: the construction is an expressiveness proof, not
an algorithm). Per DESIGN.md's substitution policy we *simulate the
machinery at toy scale*: the candidate enumeration (step 2) is exact, the
dovetailing (1) is exact, and the acceptor (3) is a host-language
predicate with an explicit step budget standing in for Gy/n — which
Proposition 4.2.2 licenses, since yes/no db-transformations are exactly
IQL-expressible. Everything structural about the theorem is exercised:
the search finds the image whenever one exists within the bounds, finds
*several O-isomorphic* representations of it, and the final selection
among them is the copy-elimination step Theorem 4.3.1 proves needs
``choose``.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EvaluationError
from repro.schema.instance import Instance
from repro.schema.isomorphism import are_o_isomorphic
from repro.schema.schema import Schema
from repro.typesys.enumeration import enumerate_type
from repro.typesys.expressions import SetOf
from repro.values.ovalues import Oid, OValue, sort_key

#: An acceptor: is J an image of I under γ, decidable within `steps`?
#: Returns True / False / None (= "needs more steps" — the TM analogy).
Acceptor = Callable[[Instance, Instance, int], Optional[bool]]


def dovetail_pairs(max_oids: int, max_steps: int) -> Iterator[Tuple[int, int]]:
    """The proof's total ordering of pairs: (1,1), (2,1), (2,2), (3,1), ..."""
    for i in range(1, max_oids + 1):
        for j in range(1, min(i, max_steps) + 1):
            yield (i, j)
    # continue raising j beyond the diagonal
    for j in range(max_oids + 1, max_steps + 1):
        for i in range(1, max_oids + 1):
            yield (i, j)


def enumerate_instances(
    schema: Schema,
    oids: Sequence[Oid],
    constants: Iterable[OValue],
    budget: int = 50_000,
) -> Iterator[Instance]:
    """All instances of ``schema`` whose oids are exactly partitions of
    ``oids`` over the classes and whose constants come from ``constants``.

    This is the 7_i of Lemma 4.2.5: "the set of all instances over S that
    can be constructed using the i oids and constants from the input" —
    the finite sets to be constructed are exactly the interpretations of
    the types restricted to the given atoms. Exponential by nature; the
    ``budget`` caps the number of candidates yielded.
    """
    constants = sorted(set(constants), key=sort_key)
    class_names = sorted(schema.classes)
    count = 0

    for assignment in _partitions(list(oids), class_names):
        pi = {name: set(members) for name, members in assignment.items()}
        # Value choices per oid: the class type's restricted interpretation,
        # plus "undefined" for non-set-valued classes.
        per_oid_choices: List[Tuple[Oid, str, List[Optional[OValue]]]] = []
        feasible = True
        for name in class_names:
            t = schema.classes[name]
            values = enumerate_type(t, constants, pi, budget=budget)
            choices: List[Optional[OValue]] = list(values)
            if not isinstance(t, SetOf):
                choices.append(None)  # ν may be undefined
            if not choices:
                feasible = False
                break
            for oid in sorted(pi[name], key=sort_key):
                per_oid_choices.append((oid, name, choices))
        if not feasible:
            continue

        # Relation choices: all subsets of the restricted member type...
        # capped hard, since 2^|interpretation| explodes immediately.
        relation_spaces: List[Tuple[str, List[OValue]]] = []
        for name in sorted(schema.relations):
            members = enumerate_type(schema.relations[name], constants, pi, budget=budget)
            relation_spaces.append((name, members))

        for nu_choice in itertools.product(*(choices for _, _, choices in per_oid_choices)):
            for rel_choice in itertools.product(
                *(_subsets(members, budget) for _, members in relation_spaces)
            ):
                instance = Instance(schema)
                for name in class_names:
                    for oid in pi[name]:
                        instance.add_class_member(name, oid)
                for (oid, _name, _), value in zip(per_oid_choices, nu_choice):
                    if value is not None:
                        instance.assign(oid, value)
                for (name, _), chosen in zip(relation_spaces, rel_choice):
                    for member in chosen:
                        instance.add_relation_member(name, member)
                if instance.is_valid():
                    yield instance
                    count += 1
                    if count >= budget:
                        raise EvaluationError(
                            f"instance enumeration exceeded budget {budget}"
                        )


def _partitions(oids: List[Oid], classes: List[str]) -> Iterator[dict]:
    """All ways to assign each oid to one class."""
    if not classes:
        if not oids:
            yield {}
        return
    for assignment in itertools.product(classes, repeat=len(oids)):
        out = {name: [] for name in classes}
        for oid, name in zip(oids, assignment):
            out[name].append(oid)
        yield out


def _subsets(members: List[OValue], budget: int) -> Iterator[Tuple[OValue, ...]]:
    if 2 ** len(members) > budget:
        raise EvaluationError(
            f"relation space 2^{len(members)} exceeds the enumeration budget"
        )
    for size in range(len(members) + 1):
        yield from itertools.combinations(members, size)


class SearchResult:
    """What the dovetailing search found."""

    def __init__(self, image: Instance, candidates: List[Instance], pair: Tuple[int, int]):
        self.image = image
        self.candidates = candidates
        self.pair = pair

    @property
    def all_isomorphic(self) -> bool:
        return all(are_o_isomorphic(self.candidates[0], c) for c in self.candidates[1:])


def dovetail_search(
    acceptor: Acceptor,
    input_instance: Instance,
    output_schema: Schema,
    max_oids: int = 4,
    max_steps: int = 8,
    budget: int = 50_000,
) -> Optional[SearchResult]:
    """Lemma 4.2.5's search loop: find the γ-image of the input by
    enumerate-and-test, dovetailing output size against acceptor steps.

    Returns the first non-empty candidate set 7_{i,j} (all of whose members
    are O-isomorphic when the acceptor really decides a dio-transformation
    — :class:`SearchResult` lets the caller check), or None if the bounds
    are exhausted.
    """
    constants = input_instance.constants()
    for i, j in dovetail_pairs(max_oids, max_steps):
        oids = [Oid(f"cand{i}_{k}") for k in range(i)]
        accepted: List[Instance] = []
        for candidate in enumerate_instances(output_schema, oids, constants, budget):
            verdict = acceptor(input_instance, candidate, j)
            if verdict:
                accepted.append(candidate)
        if accepted:
            return SearchResult(accepted[0], accepted, (i, j))
    return None
