"""Instances with copies and copy elimination (Definition 4.2.3, §4.2-4.4).

Theorem 4.2.4 proves IQL complete *up to copy*: for any dio-transformation
there is an IQL program whose output is an *instance with copies* — finitely
many O-isomorphic images of the true answer, separated by disjoint oid sets
listed in a fresh relation R̄. Theorem 4.3.1 shows the last step — selecting
one copy — is not expressible in IQL; Theorem 4.4.1 restores it with
``choose``.

This module provides the machinery around that story:

* :func:`copies_schema` — S̄, the schema for copies of S,
* :func:`make_instance_with_copies` — manufacture an instance with k
  O-isomorphic copies of a given instance (the shape Theorem 4.2.4's
  program produces),
* :func:`is_instance_with_copies` — recognize that shape (Definition
  4.2.3's two conditions, checked exactly),
* :func:`extract_copies` / :func:`eliminate_copies` — pull the copies back
  out; elimination picks one *as a meta-operation* (what IQL itself cannot
  do) and re-verifies they were all O-isomorphic,
* :func:`choose_copy_program` — the IQL+ program skeleton of Theorem
  4.4.1's proof, for schemas whose single class makes the construction
  direct.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import InstanceError
from repro.schema.instance import Instance
from repro.schema.isomorphism import (
    _match_with_colours,
    apply_o_isomorphism,
    refine_colours,
)
from repro.schema.schema import Schema
from repro.typesys.expressions import classref, set_of, union
from repro.values.ovalues import Oid, OSet, oids_of


COPY_RELATION = "R_copies"


def copies_schema(schema: Schema) -> Schema:
    """S̄: S plus one relation R̄ of type {P1 ∨ ... ∨ Pn} holding, for each
    copy, the set of its oids (Definition 4.2.3)."""
    if not schema.classes:
        raise InstanceError("an instance with copies needs at least one class")
    member = union(*(classref(p) for p in schema.classes))
    return schema.with_names(relations={COPY_RELATION: set_of(member)})


def make_instance_with_copies(instance: Instance, count: int) -> Instance:
    """Manufacture Ī: ``count`` disjoint O-isomorphic copies of ``instance``
    plus the R̄ bookkeeping — the output shape of Theorem 4.2.4."""
    if count < 1:
        raise InstanceError("need at least one copy")
    schema_bar = copies_schema(instance.schema)
    result = Instance(schema_bar)
    for index in range(count):
        mapping = {
            o: Oid(f"copy{index}_{o.name or o.serial}")
            for o in sorted(instance.objects())
        }
        copy = apply_o_isomorphism(instance, mapping)
        for name, members in copy.relations.items():
            for v in members:
                result.add_relation_member(name, v)
        for name, oids in copy.classes.items():
            for o in oids:
                result.add_class_member(name, o)
        result.nu.update(copy.nu)
        result.add_relation_member(COPY_RELATION, OSet(mapping.values()))
    return result


def extract_copies(instance_bar: Instance, base_schema: Schema) -> List[Instance]:
    """Split Ī into its constituent copies, each over ``base_schema``.

    Single pass: an oid→copy-index map routes every relation member, class
    member and ν entry to its copy directly, instead of re-scanning Ī once
    per copy. Constant-only members belong to every copy; members whose
    oids straddle copies belong to none (``is_instance_with_copies``
    rejects such instances separately).
    """
    groups = [set(group) for group in instance_bar.relations.get(COPY_RELATION, ())]
    copies = [Instance(base_schema) for _ in groups]
    owner = {o: index for index, group in enumerate(groups) for o in group}
    for name in base_schema.relations:
        for v in instance_bar.relations[name]:
            touched = oids_of(v)
            if not touched:
                for copy in copies:
                    copy.add_relation_member(name, v)
                continue
            indices = {owner.get(o) for o in touched}
            if len(indices) == 1:
                (index,) = indices
                if index is not None:
                    copies[index].add_relation_member(name, v)
    for name in base_schema.classes:
        for o in instance_bar.classes[name]:
            index = owner.get(o)
            if index is not None:
                copies[index].add_class_member(name, o)
                if o in instance_bar.nu:
                    copies[index].nu[o] = instance_bar.nu[o]
    return copies


def _first_mismatched_copy(copies: List[Instance]) -> Optional[int]:
    """Index of the first copy not O-isomorphic to copy 0, or None.

    One *joint* colour refinement over every copy replaces the k-1 pairwise
    searches: the shared colour space makes colour ids comparable across
    copies, so each copy is matched against copy 0 directly within the
    already-computed classes (canonical-signature matching). Cheap
    cardinality screens run before the refinement.
    """
    if len(copies) <= 1:
        return None
    first = copies[0]
    for i, other in enumerate(copies[1:], start=1):
        if any(
            len(first.classes[name]) != len(other.classes[name])
            for name in first.classes
        ):
            return i
        if any(
            len(first.relations[name]) != len(other.relations[name])
            for name in first.relations
        ):
            return i
        if first.constants() != other.constants():
            return i
    colourings = refine_colours(copies)
    for i in range(1, len(copies)):
        if (
            _match_with_colours(first, copies[i], colourings[0], colourings[i])
            is None
        ):
            return i
    return None


def is_instance_with_copies(
    instance_bar: Instance, base_schema: Schema
) -> Tuple[bool, Optional[str]]:
    """Definition 4.2.3, checked exactly: (1) the ground facts over S are
    the disjoint union of the copies' ground facts; (2) R̄ lists the
    pairwise-disjoint oid sets; and the copies are pairwise O-isomorphic."""
    groups = [set(group) for group in instance_bar.relations.get(COPY_RELATION, ())]
    if not groups:
        return False, "R̄ is empty"
    seen: set = set()
    for group in groups:
        if seen & group:
            return False, "copy oid sets are not pairwise disjoint"
        seen |= group
    all_oids = set()
    for name in base_schema.classes:
        all_oids |= instance_bar.classes[name]
    if all_oids != seen:
        return False, "R̄ does not cover exactly the class oids"
    copies = extract_copies(instance_bar, base_schema)
    mismatch = _first_mismatched_copy(copies)
    if mismatch is not None:
        return False, f"copies 0 and {mismatch} are not O-isomorphic"
    # Condition (1): nothing outside the union of the copies.
    for name in base_schema.relations:
        for v in instance_bar.relations[name]:
            touched = oids_of(v)
            if touched and not any(touched <= g for g in groups):
                return False, f"relation member {v!r} straddles copies"
    return True, None


def eliminate_copies(instance_bar: Instance, base_schema: Schema) -> Instance:
    """Meta-level copy elimination: verify the shape and return one copy.

    This is exactly the operation Theorem 4.3.1 proves *inexpressible in
    IQL* — provided here as a host-language function, and in IQL+ via
    ``choose`` (see :mod:`repro.transform.encodings`'s quadrangle programs
    for the end-to-end demonstration).
    """
    ok, reason = is_instance_with_copies(instance_bar, base_schema)
    if not ok:
        raise InstanceError(f"not an instance with copies: {reason}")
    copies = extract_copies(instance_bar, base_schema)
    return min(
        copies,
        key=lambda c: min((o.serial for o in c.objects()), default=0),
    )
