"""db-transformations: the semantic yardstick of Section 4.1.

Definition 4.1.1: a binary relation γ on instances is a db-transformation
iff (1) it is well-typed between two schemas, (2) recursively enumerable,
(3) generic — commutes with every DO-isomorphism — and (4) determinate —
any two outputs for the same input are O-isomorphic.

Theorem 4.1.3 states that every IQL program denotes a db-transformation.
That theorem is not *testable* by exhaustion (conditions quantify over all
isomorphisms and inputs), but it is falsifiable on any finite family of
probes, which is exactly what this harness does:

* :func:`check_determinacy` — run the program several times with
  independent oid factories (different valuation-maps) and, for IQL+, with
  the ``choose`` tie-break; all outputs must be pairwise O-isomorphic,
* :func:`check_genericity` — apply random DO-isomorphisms h to the input
  and verify output(h·I) is DO-isomorphic to h·output(I),
* :func:`check_constants_preserved` — constants(J) ⊆ constants(I), the
  consequence of (3)+(4) the paper highlights.

Experiment E6 drives these checks over the paper's example programs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.iql.evaluator import Evaluator, EvaluatorLimits
from repro.iql.invention import PrefixedOidFactory
from repro.iql.program import Program
from repro.schema.instance import Instance
from repro.schema.isomorphism import (
    apply_do_isomorphism,
    are_o_isomorphic,
    find_o_isomorphism,
)
from repro.values.ovalues import Oid, OValue


@dataclass
class DeterminacyReport:
    """Outcome of a determinacy probe (condition 4 of Definition 4.1.1)."""

    runs: int
    all_isomorphic: bool
    witness: Optional[str] = None  # description of the first failing pair


def check_determinacy(
    program: Program,
    input_instance: Instance,
    runs: int = 3,
    limits: Optional[EvaluatorLimits] = None,
    choose_mode: str = "verify",
) -> DeterminacyReport:
    """Run ``program`` ``runs`` times with distinct oid factories; verify all
    outputs are pairwise O-isomorphic (they must be, by Theorem 4.1.3)."""
    outputs: List[Instance] = []
    for i in range(runs):
        evaluator = Evaluator(
            program,
            oid_factory=PrefixedOidFactory(f"run{i}"),
            limits=limits,
            choose_mode=choose_mode,
        )
        outputs.append(evaluator.run(input_instance.copy()).output)
    for i in range(len(outputs)):
        for j in range(i + 1, len(outputs)):
            if not are_o_isomorphic(outputs[i], outputs[j]):
                return DeterminacyReport(
                    runs=runs,
                    all_isomorphic=False,
                    witness=f"outputs of runs {i} and {j} are not O-isomorphic",
                )
    return DeterminacyReport(runs=runs, all_isomorphic=True)


def random_do_isomorphism(
    instance: Instance, rng: random.Random
) -> Callable[[Instance], Instance]:
    """A random DO-isomorphism touching exactly the instance's atoms.

    Constants are permuted among themselves (strings to fresh strings,
    numbers to shifted numbers — staying injective on the touched set);
    oids are replaced by fresh oids. Atoms outside the instance are fixed,
    which suffices for the genericity probe.
    """
    constants = sorted(instance.constants(), key=repr)
    shuffled = list(constants)
    rng.shuffle(shuffled)
    const_map: Dict[OValue, OValue] = dict(zip(constants, shuffled))
    oid_map: Dict[Oid, Oid] = {
        o: Oid(f"h_{o.name or o.serial}") for o in sorted(instance.objects())
    }

    def apply(target: Instance) -> Instance:
        return apply_do_isomorphism(target, oid_map, const_map)

    return apply


@dataclass
class GenericityReport:
    """Outcome of a genericity probe (condition 3 of Definition 4.1.1)."""

    probes: int
    all_generic: bool
    witness: Optional[str] = None


def check_genericity(
    program: Program,
    input_instance: Instance,
    probes: int = 3,
    seed: int = 0,
    limits: Optional[EvaluatorLimits] = None,
    choose_mode: str = "verify",
) -> GenericityReport:
    """For random DO-isomorphisms h: output(h·I) ≅ h·output(I).

    Both sides are compared up to O-isomorphism (the two evaluations invent
    unrelated oids), after transporting the reference output through h.
    """
    rng = random.Random(seed)
    reference = Evaluator(
        program, oid_factory=PrefixedOidFactory("ref"), limits=limits, choose_mode=choose_mode
    ).run(input_instance.copy()).output
    for probe in range(probes):
        h = random_do_isomorphism(input_instance, rng)
        transformed_input = h(input_instance)
        transported_reference = h(reference)
        output = Evaluator(
            program,
            oid_factory=PrefixedOidFactory(f"probe{probe}"),
            limits=limits,
            choose_mode=choose_mode,
        ).run(transformed_input).output
        if not are_o_isomorphic(output, transported_reference):
            return GenericityReport(
                probes=probes,
                all_generic=False,
                witness=f"probe {probe}: output(h·I) is not O-isomorphic to h·output(I)",
            )
    return GenericityReport(probes=probes, all_generic=True)


def check_constants_preserved(
    program: Program,
    input_instance: Instance,
    limits: Optional[EvaluatorLimits] = None,
    choose_mode: str = "verify",
) -> bool:
    """constants(J) ⊆ constants(I) — no db-transformation invents constants."""
    output = Evaluator(program, limits=limits, choose_mode=choose_mode).run(
        input_instance.copy()
    ).output
    return output.constants() <= input_instance.constants()


def outputs_agree_up_to_renaming(a: Instance, b: Instance) -> bool:
    """Convenience alias used throughout the experiment scripts."""
    return find_o_isomorphism(a, b) is not None
