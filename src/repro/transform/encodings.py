"""The paper's worked example programs, as reusable builders.

Each function returns a ready-to-run :class:`~repro.iql.program.Program`
(with companion helpers to build inputs and decode outputs):

* :func:`graph_to_class_program` / :func:`class_to_graph_program` —
  Example 1.2, the acyclic↔cyclic re-representation of a directed graph,
* :func:`powerset_unrestricted_program` — Example 3.4.2's one-liner
  ``R1(X) ← X = X`` (not range-restricted; exercises type-interpretation
  enumeration),
* :func:`powerset_restricted_program` — Example 3.4.2's constructive
  range-restricted powerset via invented oids (recursion through
  invention, bounded by the powerset lattice),
* :func:`union_encode_program` / :func:`union_decode_program` —
  Example 3.4.3, the lossless elimination of union types,
* :func:`quadrangle_copies_program` / :func:`quadrangle_choose_program` —
  the Figure 1 query of Theorem 4.3.1: plain IQL can only build
  O-isomorphic copies; IQL+ ``choose`` selects one.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.iql.literals import Choose, Equality, Membership
from repro.iql.program import Program
from repro.iql.rules import Rule
from repro.iql.shorthands import atom, columns
from repro.iql.terms import NameTerm, SetTerm, TupleTerm, Var
from repro.schema.instance import Instance
from repro.schema.schema import Schema
from repro.typesys.expressions import D, classref, set_of, tuple_of, union
from repro.values.ovalues import Oid, OTuple


# -- Example 1.2: graph → class ---------------------------------------------------


def graph_input_schema() -> Schema:
    """Sin: a binary relation R of type [A1: D, A2: D] — arcs of a digraph."""
    return Schema(relations={"R": columns(D, D)})


def graph_class_schema() -> Schema:
    """Sout: a class P with T(P) = [A1: D, A2: {P}] — nodes as objects."""
    P = classref("P")
    return Schema(classes={"P": tuple_of(A1=D, A2=set_of(P))})


def graph_instance(edges: Iterable[Tuple[str, str]]) -> Instance:
    """An input instance for a set of (source, target) node-name pairs."""
    return Instance(
        graph_input_schema(),
        relations={"R": [OTuple(A01=a, A02=b) for a, b in edges]},
    )


def graph_to_class_program() -> Program:
    """Example 1.2 verbatim, in four stages::

        R0(x)           ← R(x, y)
        R0(x)           ← R(y, x)
        ;
        R'(x, p, p')    ← R0(x)                      -- invents p ∈ P, p' ∈ P'
        ;
        p̂'(q)           ← R'(x,p,p'), R'(y,q,q'), R(x,y)
        ;
        p̂ = [x, p̂']     ← R'(x, p, p')
    """
    P, P2 = classref("P"), classref("P_aux")
    schema = Schema(
        relations={
            "R": columns(D, D),
            "R0": columns(D),
            "R_prime": columns(D, P, P2),
        },
        classes={
            "P": tuple_of(A1=D, A2=set_of(P)),
            "P_aux": set_of(P),
        },
    )
    x, y = Var("x", D), Var("y", D)
    p, q = Var("p", P), Var("q", P)
    pp, qq = Var("pp", P2), Var("qq", P2)
    stages = [
        [
            Rule(atom(schema, "R0", x), [atom(schema, "R", x, y)], label="nodes-src"),
            Rule(atom(schema, "R0", x), [atom(schema, "R", y, x)], label="nodes-dst"),
        ],
        [
            Rule(
                atom(schema, "R_prime", x, p, pp),
                [atom(schema, "R0", x)],
                label="invent",
            )
        ],
        [
            Rule(
                Membership(pp.hat(), q),
                [
                    atom(schema, "R_prime", x, p, pp),
                    atom(schema, "R_prime", y, q, qq),
                    atom(schema, "R", x, y),
                ],
                label="group-successors",
            )
        ],
        [
            Rule(
                Equality(p.hat(), TupleTerm(A1=x, A2=pp.hat())),
                [atom(schema, "R_prime", x, p, pp)],
                label="assign",
            )
        ],
    ]
    return Program(schema, stages=stages, input_names=["R"], output_names=["P"])


def class_to_graph_program() -> Program:
    """The inverse direction: class representation back to an arc relation.

    Input: class P with T(P) = [A1: D, A2: {P}] (named Q here so input and
    output schemas can coexist with the forward program's); output: the
    binary relation R_out. One rule suffices — dereferencing walks the
    cyclic structure::

        R_out(x, y) ← Q(p), p̂ = [x, S], S(q), q̂ = [y, S']
    """
    Q = classref("Q")
    schema = Schema(
        relations={"R_out": columns(D, D)},
        classes={"Q": tuple_of(A1=D, A2=set_of(Q))},
    )
    x, y = Var("x", D), Var("y", D)
    p, q = Var("p", Q), Var("q", Q)
    s, s2 = Var("S", set_of(Q)), Var("S2", set_of(Q))
    rule = Rule(
        atom(schema, "R_out", x, y),
        [
            atom(schema, "Q", p),
            Equality(p.hat(), TupleTerm(A1=x, A2=s)),
            Membership(s, q),
            Equality(q.hat(), TupleTerm(A1=y, A2=s2)),
        ],
        label="unfold",
    )
    return Program(schema, rules=[rule], input_names=["Q"], output_names=["R_out"])


def decode_graph_output(instance: Instance, class_name: str = "P") -> frozenset:
    """Read the edge set back out of a graph-as-class instance."""
    edges = set()
    for oid in instance.classes[class_name]:
        value = instance.value_of(oid)
        if value is None:
            continue
        source = value["A1"]
        for successor in value["A2"]:
            succ_value = instance.value_of(successor)
            edges.add((source, succ_value["A1"]))
    return frozenset(edges)


# -- Example 3.4.2: powerset --------------------------------------------------------


def powerset_schemas() -> Tuple[Schema, Schema]:
    """Sin: R of type D (a unary relation); Sout: R1 of type {D}."""
    return Schema(relations={"R": D}), Schema(relations={"R1": set_of(D)})


def powerset_input(elements: Iterable[str]) -> Instance:
    sin, _ = powerset_schemas()
    return Instance(sin, relations={"R": list(elements)})


def powerset_unrestricted_program() -> Program:
    """``R1(X) ← X = X`` — Example 3.4.2's first program.

    X is a variable of type {D} and is not range-restricted: the evaluator
    must enumerate the type interpretation {D} restricted to constants(I),
    i.e. the full powerset of the input's constants. The sublanguage
    classifier flags this program as outside IQLpr.
    """
    schema = Schema(relations={"R": D, "R1": set_of(D)})
    X = Var("X", set_of(D))
    rule = Rule(atom(schema, "R1", X), [Equality(X, X)], label="powerset")
    return Program(schema, rules=[rule], input_names=["R"], output_names=["R1"])


def powerset_restricted_program() -> Program:
    """Example 3.4.2's constructive powerset — range-restricted, with
    invention in a loop (recursion through the class P)::

        R1({ })      ←
        R1({x})      ← R(x)
        R2(X, Y, z)  ← R1(X), R1(Y)        -- invents z
        ẑ(x)         ← R2(X, Y, z), X(x)
        ẑ(y)         ← R2(X, Y, z), Y(y)
        R1(ẑ)        ← P(z)

    The computation saturates at the full powerset: invention stops because
    the valuation-domain blocks (r, θ) pairs whose head is already
    satisfiable, so each (X, Y) pair triggers exactly one invention.
    """
    P = classref("P_pow")
    schema = Schema(
        relations={
            "R": D,
            "R1": set_of(D),
            "R2": columns(set_of(D), set_of(D), P),
        },
        classes={"P_pow": set_of(D)},
    )
    x, y = Var("x", D), Var("y", D)
    X, Y = Var("X", set_of(D)), Var("Y", set_of(D))
    z = Var("z", P)
    rules = [
        Rule(atom(schema, "R1", SetTerm()), [], label="empty"),
        Rule(atom(schema, "R1", SetTerm(x)), [atom(schema, "R", x)], label="singletons"),
        Rule(
            atom(schema, "R2", X, Y, z),
            [atom(schema, "R1", X), atom(schema, "R1", Y)],
            label="invent-union",
        ),
        Rule(
            Membership(z.hat(), x),
            [atom(schema, "R2", X, Y, z), Membership(X, x)],
            label="pour-left",
        ),
        Rule(
            Membership(z.hat(), y),
            [atom(schema, "R2", X, Y, z), Membership(Y, y)],
            label="pour-right",
        ),
        Rule(atom(schema, "R1", z.hat()), [atom(schema, "P_pow", z)], label="collect"),
    ]
    return Program(schema, rules=rules, input_names=["R"], output_names=["R1"])


def decode_powerset(instance: Instance) -> frozenset:
    """The computed family of subsets, as a frozenset of frozensets."""
    return frozenset(frozenset(subset) for subset in instance.relations["R1"])


# -- Example 3.4.3: union-type elimination --------------------------------------------


def union_schemas() -> Tuple[Schema, Schema]:
    """S: class P with T(P) = P ∨ [A1: P, A2: P];
    S′: class P′ with T(P′) = [B1: {P′}, B2: {[A1: P′, A2: P′]}]."""
    P = classref("P")
    Pp = classref("P_enc")
    s = Schema(classes={"P": union(P, tuple_of(A1=P, A2=P))})
    s_prime = Schema(
        classes={"P_enc": tuple_of(B1=set_of(Pp), B2=set_of(tuple_of(A1=Pp, A2=Pp)))}
    )
    return s, s_prime


def union_encode_program() -> Program:
    """The forward translation of Example 3.4.3 (union → no union)::

        R(x, x')                  ← P(x)
        x̂' = [{y'}, ∅]            ← R(x,x'), R(y,y'), y = x̂
        x̂' = [∅, {[y', z']}]      ← R(x,x'), R(y,y'), R(z,z'), [y,z] = x̂

    The bodies use the union-coercion typing: ``y = x̂`` compares a P-typed
    variable with a term of type P ∨ [A1: P, A2: P].
    """
    s, s_prime = union_schemas()
    P, Pp = classref("P"), classref("P_enc")
    schema = s.merge(s_prime).with_names(relations={"R_map": columns(P, Pp)})
    x, y, z = Var("x", P), Var("y", P), Var("z", P)
    xp, yp, zp = Var("xp", Pp), Var("yp", Pp), Var("zp", Pp)
    stage1 = [
        Rule(atom(schema, "R_map", x, xp), [atom(schema, "P", x)], label="pair-up"),
    ]
    stage2 = [
        Rule(
            Equality(xp.hat(), TupleTerm(B1=SetTerm(yp), B2=SetTerm())),
            [
                atom(schema, "R_map", x, xp),
                atom(schema, "R_map", y, yp),
                Equality(y, x.hat()),
            ],
            label="encode-oid-branch",
        ),
        Rule(
            Equality(
                xp.hat(),
                TupleTerm(B1=SetTerm(), B2=SetTerm(TupleTerm(A1=yp, A2=zp))),
            ),
            [
                atom(schema, "R_map", x, xp),
                atom(schema, "R_map", y, yp),
                atom(schema, "R_map", z, zp),
                Equality(TupleTerm(A1=y, A2=z), x.hat()),
            ],
            label="encode-pair-branch",
        ),
    ]
    return Program(
        schema, stages=[stage1, stage2], input_names=["P"], output_names=["P_enc"]
    )


def union_decode_program() -> Program:
    """The inverse translation of Example 3.4.3 (no union → union).

    Reconstructs a fresh copy of the original instance, up to renaming of
    oids — the paper's demonstration that the encoding is lossless::

        R(x, x')  ← P'(x')                      -- invents x ∈ P_dec
        x̂ = w     ← R(x,x'), R(y,y'), y = w,        x̂' = [{y'}, ∅]
        x̂ = w     ← R(x,x'), R(y,y'), R(z,z'), [y,z] = w, x̂' = [∅, {[y',z']}]
    """
    Pd, Pp = classref("P_dec"), classref("P_enc")
    schema = Schema(
        classes={
            "P_dec": union(Pd, tuple_of(A1=Pd, A2=Pd)),
            "P_enc": tuple_of(B1=set_of(Pp), B2=set_of(tuple_of(A1=Pp, A2=Pp))),
        },
        relations={"R_map2": columns(Pd, Pp)},
    )
    x, y, z = Var("x", Pd), Var("y", Pd), Var("z", Pd)
    xp, yp, zp = Var("xp", Pp), Var("yp", Pp), Var("zp", Pp)
    w = Var("w", union(Pd, tuple_of(A1=Pd, A2=Pd)))
    stage1 = [
        Rule(atom(schema, "R_map2", x, xp), [atom(schema, "P_enc", xp)], label="invent"),
    ]
    stage2 = [
        Rule(
            Equality(x.hat(), w),
            [
                atom(schema, "R_map2", x, xp),
                atom(schema, "R_map2", y, yp),
                Equality(y, w),
                Equality(xp.hat(), TupleTerm(B1=SetTerm(yp), B2=SetTerm())),
            ],
            label="decode-oid-branch",
        ),
        Rule(
            Equality(x.hat(), w),
            [
                atom(schema, "R_map2", x, xp),
                atom(schema, "R_map2", y, yp),
                atom(schema, "R_map2", z, zp),
                Equality(TupleTerm(A1=y, A2=z), w),
                Equality(
                    xp.hat(),
                    TupleTerm(B1=SetTerm(), B2=SetTerm(TupleTerm(A1=yp, A2=zp))),
                ),
            ],
            label="decode-pair-branch",
        ),
    ]
    return Program(
        schema, stages=[stage1, stage2], input_names=["P_enc"], output_names=["P_dec"]
    )


def union_instance(links: Dict[str, object]) -> Instance:
    """Build an S-instance from a spec: name → name (oid branch) or
    (name, name) pair (tuple branch) or None (undefined).

    Example: ``{"a": ("a", "b"), "b": "a"}`` gives ν(a) = [A1: a, A2: b],
    ν(b) = a.
    """
    s, _ = union_schemas()
    oids = {name: Oid(name) for name in links}
    instance = Instance(s, classes={"P": list(oids.values())})
    for name, spec in links.items():
        if spec is None:
            continue
        if isinstance(spec, str):
            instance.assign(oids[name], oids[spec])
        else:
            left, right = spec
            instance.assign(oids[name], OTuple(A1=oids[left], A2=oids[right]))
    return instance


# -- Figure 1 / Theorem 4.3.1: the quadrangle query -------------------------------------


def quadrangle_schemas() -> Tuple[Schema, Schema]:
    """S: relation R of type D; S′: class P_quad of type [] (pure identity —
    the paper writes ⊥; we use the empty tuple so objects are value-less
    records) and relation R_quad of type [B: P_quad, C: D ∨ P_quad]."""
    Pq = classref("P_quad")
    sin = Schema(relations={"R": D})
    sout = Schema(
        classes={"P_quad": tuple_of()},
        relations={"R_quad": tuple_of(B=Pq, C=union(D, Pq))},
    )
    return sin, sout


def quadrangle_input(a: str, b: str) -> Instance:
    sin, _ = quadrangle_schemas()
    return Instance(sin, relations={"R": [a, b]})


def quadrangle_expected_output(a: str, b: str) -> Instance:
    """The target output for input {a, b}: the directed quadrangle of
    Figure 1, with a connected to one diagonal and b to the other."""
    _, sout = quadrangle_schemas()
    o1, o2, o3, o4 = (Oid(f"o{i}") for i in range(1, 5))
    edges = [
        (o1, a), (o3, a), (o2, b), (o4, b),
        (o4, o1), (o3, o4), (o2, o3), (o1, o2),
    ]
    return Instance(
        sout,
        classes={"P_quad": [o1, o2, o3, o4]},
        relations={"R_quad": [OTuple(B=s, C=t) for s, t in edges]},
    )


def _quadrangle_base_schema() -> Schema:
    Pc, Pm = classref("P_cand"), classref("P_mark")
    return Schema(
        relations={
            "R": D,
            "R_copy": tuple_of(M=Pm, B=Pc, C=union(D, Pc)),
            "R_corners": tuple_of(M=Pm, O1=Pc, O2=Pc, O3=Pc, O4=Pc, CA=D, CB=D),
        },
        classes={"P_cand": tuple_of(), "P_mark": tuple_of()},
    )


def quadrangle_copies_program() -> Program:
    """Build O-isomorphic copies of the Figure-1 quadrangle — what plain
    IQL *can* do (Theorem 4.2.4), stopping short of selecting one
    (Theorem 4.3.1).

    Stage 1 invents, per *ordered* pair (a, b) of distinct input constants,
    a marker oid and four corner oids, staged in ``R_corners``; an input
    {a, b} thus yields exactly two copies. Stage 2 closes the staging
    relation under the quadrangle's rotation symmetry::

        R_corners(m, o2, o3, o4, o1, b, a) ← R_corners(m, o1, o2, o3, o4, a, b)

    — without this closure the staging rows would *distinguish* the copies
    (each would record which orientation created it), the instance would
    have no automorphism swapping them, and the ``choose`` of the companion
    program would rightly fail its genericity check. With it, the copies
    are indistinguishable, exactly as in the paper's construction. Stage 2
    also emits the eight tagged edges of each copy into ``R_copy``.
    """
    schema = _quadrangle_base_schema()
    Pc, Pm = classref("P_cand"), classref("P_mark")
    a, b = Var("a", D), Var("b", D)
    o1, o2, o3, o4 = (Var(f"o{i}", Pc) for i in range(1, 5))
    m = Var("m", Pm)

    invent = Rule(
        Membership(
            NameTerm("R_corners"),
            TupleTerm(M=m, O1=o1, O2=o2, O3=o3, O4=o4, CA=a, CB=b),
        ),
        [atom(schema, "R", a), atom(schema, "R", b), Equality(a, b, positive=False)],
        label="invent-copy",
    )
    row = TupleTerm(M=m, O1=o1, O2=o2, O3=o3, O4=o4, CA=a, CB=b)
    read = Membership(NameTerm("R_corners"), row)
    rotate = Rule(
        Membership(
            NameTerm("R_corners"),
            TupleTerm(M=m, O1=o2, O2=o3, O3=o4, O4=o1, CA=b, CB=a),
        ),
        [read],
        label="rotate",
    )

    def edge(source: Var, target) -> TupleTerm:
        return TupleTerm(M=m, B=source, C=target)

    edge_rules = [
        Rule(Membership(NameTerm("R_copy"), edge(o1, a)), [read], label="e1"),
        Rule(Membership(NameTerm("R_copy"), edge(o3, a)), [read], label="e2"),
        Rule(Membership(NameTerm("R_copy"), edge(o2, b)), [read], label="e3"),
        Rule(Membership(NameTerm("R_copy"), edge(o4, b)), [read], label="e4"),
        Rule(Membership(NameTerm("R_copy"), edge(o4, o1)), [read], label="e5"),
        Rule(Membership(NameTerm("R_copy"), edge(o3, o4)), [read], label="e6"),
        Rule(Membership(NameTerm("R_copy"), edge(o2, o3)), [read], label="e7"),
        Rule(Membership(NameTerm("R_copy"), edge(o1, o2)), [read], label="e8"),
    ]
    return Program(
        schema,
        stages=[[invent], [rotate] + edge_rules],
        input_names=["R"],
        output_names=["R_copy", "P_cand", "P_mark"],
    )


def quadrangle_choose_program() -> Program:
    """IQL+ completion of the Figure-1 query — the Theorem 4.4.1 recipe:

    1. compute the copies (the plain-IQL part),
    2. ``choose`` one marker — legal because the copies lie in a single
       automorphism orbit,
    3. copy the chosen quadrangle into the *output* names, re-inventing its
       four corners into the fresh class P_quad (the output classes must be
       disjoint from the scaffolding, so existing corner oids cannot simply
       be placed there).
    """
    base = quadrangle_copies_program()
    Pc, Pm, Pq = classref("P_cand"), classref("P_mark"), classref("P_quad")
    schema = base.schema.with_names(
        relations={
            "R_chosen": tuple_of(M=Pm),
            "R_sel": tuple_of(S=Pc),
            "R_pair": tuple_of(S=Pc, U=Pq),
            "R_quad": tuple_of(B=Pq, C=union(D, Pq)),
        },
        classes={"P_quad": tuple_of()},
    )
    a, b = Var("ca", D), Var("cb", D)
    m = Var("m", Pm)
    o1, o2, o3, o4 = (Var(f"o{i}", Pc) for i in range(1, 5))
    s, s2 = Var("s", Pc), Var("s2", Pc)
    u, u2 = Var("u", Pq), Var("u2", Pq)
    c = Var("c", D)

    choose_stage = [
        Rule(
            Membership(NameTerm("R_chosen"), TupleTerm(M=m)),
            [Choose()],
            label="choose-copy",
        )
    ]
    # The rotation closure puts every corner of a copy in the O1 position of
    # some staging row, so one selection rule reaches all four corners.
    select_stage = [
        Rule(
            Membership(NameTerm("R_sel"), TupleTerm(S=o1)),
            [
                Membership(NameTerm("R_chosen"), TupleTerm(M=m)),
                Membership(
                    NameTerm("R_corners"),
                    TupleTerm(M=m, O1=o1, O2=o2, O3=o3, O4=o4, CA=a, CB=b),
                ),
            ],
            label="select-corners",
        )
    ]
    invent_stage = [
        Rule(
            Membership(NameTerm("R_pair"), TupleTerm(S=s, U=u)),
            [Membership(NameTerm("R_sel"), TupleTerm(S=s))],
            label="reinvent",
        )
    ]
    emit_stage = [
        Rule(
            Membership(NameTerm("R_quad"), TupleTerm(B=u, C=c)),
            [
                Membership(NameTerm("R_pair"), TupleTerm(S=s, U=u)),
                Membership(NameTerm("R_chosen"), TupleTerm(M=m)),
                Membership(NameTerm("R_copy"), TupleTerm(M=m, B=s, C=c)),
            ],
            label="emit-constant-edges",
        ),
        Rule(
            Membership(NameTerm("R_quad"), TupleTerm(B=u, C=u2)),
            [
                Membership(NameTerm("R_pair"), TupleTerm(S=s, U=u)),
                Membership(NameTerm("R_pair"), TupleTerm(S=s2, U=u2)),
                Membership(NameTerm("R_chosen"), TupleTerm(M=m)),
                Membership(NameTerm("R_copy"), TupleTerm(M=m, B=s, C=s2)),
            ],
            label="emit-corner-edges",
        ),
    ]
    stages = list(base.stages) + [choose_stage, select_stage, invent_stage, emit_stage]
    return Program(
        schema,
        stages=stages,
        input_names=["R"],
        output_names=["R_quad", "P_quad"],
    )


def copies_in_output(instance: Instance, marker_class: str = "P_mark") -> int:
    """How many copies the copies-program produced (one per marker oid)."""
    return len(instance.classes.get(marker_class, ()))
