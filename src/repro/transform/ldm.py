"""The Logical Data Model simulated in IQL (Proposition 4.2.9).

Kuper and Vardi's LDM is the oid-centric ancestor of the paper's model:
schemas are classes only (the paper: "schemas of the form (∅, P, T) where
the types are trees of bounded depth"), and the algebra builds new classes
of new objects from old ones. Proposition 4.2.9: "It is simple to simulate
all the algebraic operators of LDM in IQL directly … copy elimination is
not necessary for simulating LDM."

This module performs that simulation. Each operator takes source class
names and a target class name and returns an IQL :class:`Program` whose
evaluation populates the target with *fresh* objects (classes must stay
disjoint, so LDM's new-node-per-row discipline maps exactly onto IQL's oid
invention — the "limited invention of oids" the proposition mentions):

* :func:`ldm_copy` — a new class whose objects carry the same values,
* :func:`ldm_union` / :func:`ldm_intersection` / :func:`ldm_difference` —
  set operations *by value* on two classes of the same type,
* :func:`ldm_product` — pairing: T(Q) = [f1: P1, f2: P2], one object per
  pair of source objects,
* :func:`ldm_projection` — component extraction from a product-typed class,
* :func:`ldm_selection` — objects whose two named components are equal.

Every produced program is recursion-free per stage (invention never feeds
itself), so the whole simulated algebra stays in the PTIME fragment —
matching LDM's own complexity story.
"""

from __future__ import annotations


from repro.errors import SchemaError
from repro.iql.literals import Equality, Membership
from repro.iql.program import Program
from repro.iql.rules import Rule
from repro.iql.terms import NameTerm, TupleTerm, Var
from repro.schema.schema import Schema
from repro.typesys.expressions import ClassRef, SetOf, TupleOf, TypeExpr, classref, tuple_of


def _value_var(name: str, t: TypeExpr) -> Var:
    return Var(name, t)


def _map_relation(schema: Schema, name: str, src: str, dst: str) -> Schema:
    return schema.with_names(
        relations={name: tuple_of(src=classref(src), dst=classref(dst))}
    )


def _closure_names(schema: Schema, seeds) -> list:
    """Transitive closure of class references — output projections must be
    well-formed schemas, so every class a kept type mentions is kept."""
    keep = set()
    pending = set(seeds)
    while pending:
        name = pending.pop()
        if name in keep or name not in schema.classes:
            continue
        keep.add(name)
        pending |= schema.classes[name].class_names()
    return sorted(keep)


def ldm_copy(schema: Schema, source: str, target: str) -> Program:
    """Q := a fresh class with one new object per object of P, same value."""
    if source not in schema.classes:
        raise SchemaError(f"unknown class {source!r}")
    t = schema.classes[source]
    full = schema.with_names(classes={target: t})
    full = _map_relation(full, f"_map_{target}", source, target)
    x = Var("x", classref(source))
    q = Var("q", classref(target))
    stage1 = [
        Rule(
            Membership(NameTerm(f"_map_{target}"), TupleTerm(src=x, dst=q)),
            [Membership(NameTerm(source), x)],
            label=f"ldm-copy-invent:{target}",
        )
    ]
    stage2 = list(_transfer_rules(full, f"_map_{target}", source, target, t))
    return Program(
        full,
        stages=[stage1, stage2],
        input_names=sorted(schema.classes),
        output_names=_closure_names(full, [target] + list(t.class_names())),
    )


def _transfer_rules(schema: Schema, map_name: str, source: str, target: str, t: TypeExpr):
    """q̂ := x̂ across the map — via weak assignment for scalar-valued
    classes, elementwise for set-valued ones."""
    x = Var("x", classref(source))
    q = Var("q", classref(target))
    read = Membership(NameTerm(map_name), TupleTerm(src=x, dst=q))
    if isinstance(t, SetOf):
        e = Var("e", t.element)
        yield Rule(
            Membership(q.hat(), e),
            [read, Membership(x.hat(), e)],
            label=f"ldm-transfer-set:{target}",
        )
    else:
        w = Var("w", t)
        yield Rule(
            Equality(q.hat(), w),
            [read, Equality(x.hat(), w)],
            label=f"ldm-transfer:{target}",
        )


def _binary_setup(schema: Schema, left: str, right: str, target: str) -> TypeExpr:
    for name in (left, right):
        if name not in schema.classes:
            raise SchemaError(f"unknown class {name!r}")
    tl, tr = schema.classes[left], schema.classes[right]
    if tl != tr:
        raise SchemaError(
            f"LDM set operations need same-typed classes; "
            f"T({left}) = {tl!r} but T({right}) = {tr!r}"
        )
    return tl


def _by_value_rule(schema, map_name, source, target, t, extra_body):
    """Invent a target object per source object satisfying extra_body."""
    x = Var("x", classref(source))
    q = Var("q", classref(target))
    w = Var("w", t)
    body = [Membership(NameTerm(source), x), Equality(x.hat(), w)] + extra_body(w, x)
    return Rule(
        Membership(NameTerm(map_name), TupleTerm(src=x, dst=q)),
        body,
        label=f"ldm-select:{target}",
    )


def ldm_union(schema: Schema, left: str, right: str, target: str) -> Program:
    """Q := P1 ∪ P2 by value (one fresh object per *distinct* source value
    would need by-value dedup; LDM unions node sets, so we produce one
    object per source object — duplicates by value are LDM's own
    behaviour, Appendix B of Kuper's thesis notwithstanding)."""
    t = _binary_setup(schema, left, right, target)
    full = schema.with_names(classes={target: t})
    full = _map_relation(full, f"_map_{target}", left, target)
    full = full.with_names(
        relations={f"_map2_{target}": tuple_of(src=classref(right), dst=classref(target))}
    )
    x = Var("x", classref(left))
    y = Var("y", classref(right))
    q = Var("q", classref(target))
    stage1 = [
        Rule(
            Membership(NameTerm(f"_map_{target}"), TupleTerm(src=x, dst=q)),
            [Membership(NameTerm(left), x)],
            label=f"ldm-union-left:{target}",
        ),
        Rule(
            Membership(NameTerm(f"_map2_{target}"), TupleTerm(src=y, dst=q)),
            [Membership(NameTerm(right), y)],
            label=f"ldm-union-right:{target}",
        ),
    ]
    stage2 = list(_transfer_rules(full, f"_map_{target}", left, target, t))
    stage2 += list(_transfer_rules(full, f"_map2_{target}", right, target, t))
    return Program(
        full,
        stages=[stage1, stage2],
        input_names=sorted(schema.classes),
        output_names=_closure_names(full, [target] + list(t.class_names())),
    )


def ldm_intersection(schema: Schema, left: str, right: str, target: str) -> Program:
    """Q := objects of P1 whose value also occurs (by value) in P2."""
    t = _binary_setup(schema, left, right, target)
    full = schema.with_names(classes={target: t})
    full = _map_relation(full, f"_map_{target}", left, target)

    def witness(w, x):
        y = Var("y", classref(right))
        return [Membership(NameTerm(right), y), Equality(y.hat(), w)]

    stage1 = [_by_value_rule(full, f"_map_{target}", left, target, t, witness)]
    stage2 = list(_transfer_rules(full, f"_map_{target}", left, target, t))
    return Program(
        full,
        stages=[stage1, stage2],
        input_names=sorted(schema.classes),
        output_names=_closure_names(full, [target] + list(t.class_names())),
    )


def ldm_difference(schema: Schema, left: str, right: str, target: str) -> Program:
    """Q := objects of P1 whose value occurs in no P2 object.

    Needs negation over a *completed* auxiliary: stage 1 marks the P1
    objects with a by-value witness in P2; stage 2 inventss targets for the
    unmarked ones; stage 3 transfers values.
    """
    t = _binary_setup(schema, left, right, target)
    full = schema.with_names(classes={target: t})
    full = _map_relation(full, f"_map_{target}", left, target)
    full = full.with_names(relations={f"_hit_{target}": tuple_of(src=classref(left))})

    x = Var("x", classref(left))
    y = Var("y", classref(right))
    q = Var("q", classref(target))
    w = Var("w", t)
    stage1 = [
        Rule(
            Membership(NameTerm(f"_hit_{target}"), TupleTerm(src=x)),
            [
                Membership(NameTerm(left), x),
                Equality(x.hat(), w),
                Membership(NameTerm(right), y),
                Equality(y.hat(), w),
            ],
            label=f"ldm-diff-hits:{target}",
        )
    ]
    stage2 = [
        Rule(
            Membership(NameTerm(f"_map_{target}"), TupleTerm(src=x, dst=q)),
            [
                Membership(NameTerm(left), x),
                Membership(NameTerm(f"_hit_{target}"), TupleTerm(src=x), positive=False),
            ],
            label=f"ldm-diff-invent:{target}",
        )
    ]
    stage3 = list(_transfer_rules(full, f"_map_{target}", left, target, t))
    return Program(
        full,
        stages=[stage1, stage2, stage3],
        input_names=sorted(schema.classes),
        output_names=_closure_names(full, [target] + list(t.class_names())),
    )


def ldm_product(schema: Schema, left: str, right: str, target: str) -> Program:
    """Q := P1 × P2: T(Q) = [f1: P1, f2: P2], one new object per pair."""
    for name in (left, right):
        if name not in schema.classes:
            raise SchemaError(f"unknown class {name!r}")
    t = tuple_of(f1=classref(left), f2=classref(right))
    full = schema.with_names(classes={target: t})
    full = full.with_names(
        relations={
            f"_map_{target}": tuple_of(
                l=classref(left), r=classref(right), dst=classref(target)
            )
        }
    )
    x = Var("x", classref(left))
    y = Var("y", classref(right))
    q = Var("q", classref(target))
    stage1 = [
        Rule(
            Membership(NameTerm(f"_map_{target}"), TupleTerm(l=x, r=y, dst=q)),
            [Membership(NameTerm(left), x), Membership(NameTerm(right), y)],
            label=f"ldm-product-invent:{target}",
        )
    ]
    stage2 = [
        Rule(
            Equality(q.hat(), TupleTerm(f1=x, f2=y)),
            [Membership(NameTerm(f"_map_{target}"), TupleTerm(l=x, r=y, dst=q))],
            label=f"ldm-product-assign:{target}",
        )
    ]
    return Program(
        full,
        stages=[stage1, stage2],
        input_names=sorted(schema.classes),
        output_names=_closure_names(full, [target, left, right]),
    )


def ldm_projection(schema: Schema, source: str, component: str, target: str) -> Program:
    """Q := fresh copies of the ``component`` objects of a product-typed P."""
    t = schema.classes.get(source)
    if not isinstance(t, TupleOf) or component not in t.attributes:
        raise SchemaError(f"{source!r} is not a product with component {component!r}")
    comp_type = t.component(component)
    if not isinstance(comp_type, ClassRef):
        raise SchemaError(f"component {component!r} is not class-valued")
    inner = comp_type.name
    inner_type = schema.classes[inner]
    full = schema.with_names(classes={target: inner_type})
    full = _map_relation(full, f"_map_{target}", inner, target)

    x = Var("x", classref(source))
    c = Var("c", comp_type)
    q = Var("q", classref(target))
    pattern = {attr: Var(f"v_{attr}", t.component(attr)) for attr in t.attributes}
    pattern[component] = c
    stage1 = [
        Rule(
            Membership(NameTerm(f"_map_{target}"), TupleTerm(src=c, dst=q)),
            [Membership(NameTerm(source), x), Equality(x.hat(), TupleTerm(pattern))],
            label=f"ldm-project-invent:{target}",
        )
    ]
    stage2 = list(_transfer_rules(full, f"_map_{target}", inner, target, inner_type))
    return Program(
        full,
        stages=[stage1, stage2],
        input_names=sorted(schema.classes),
        output_names=_closure_names(full, [target] + list(inner_type.class_names())),
    )


def ldm_selection(schema: Schema, source: str, left: str, right: str, target: str) -> Program:
    """Q := fresh copies of the P objects whose ``left`` and ``right``
    components hold by-value-equal objects."""
    t = schema.classes.get(source)
    if not isinstance(t, TupleOf) or not {left, right} <= set(t.attributes):
        raise SchemaError(f"{source!r} lacks components {left!r}/{right!r}")
    lt, rt = t.component(left), t.component(right)
    if not (isinstance(lt, ClassRef) and isinstance(rt, ClassRef)):
        raise SchemaError("selection compares class-valued components by value")
    if schema.classes[lt.name] != schema.classes[rt.name]:
        raise SchemaError("compared components must have same-typed classes")
    full = schema.with_names(classes={target: t})
    full = _map_relation(full, f"_map_{target}", source, target)

    x = Var("x", classref(source))
    q = Var("q", classref(target))
    pattern = {attr: Var(f"v_{attr}", t.component(attr)) for attr in t.attributes}
    inner_w = Var("iw", schema.classes[lt.name])
    stage1 = [
        Rule(
            Membership(NameTerm(f"_map_{target}"), TupleTerm(src=x, dst=q)),
            [
                Membership(NameTerm(source), x),
                Equality(x.hat(), TupleTerm(pattern)),
                Equality(Deref_of(pattern[left]), inner_w),
                Equality(Deref_of(pattern[right]), inner_w),
            ],
            label=f"ldm-select-invent:{target}",
        )
    ]
    stage2 = list(_transfer_rules(full, f"_map_{target}", source, target, t))
    return Program(
        full,
        stages=[stage1, stage2],
        input_names=sorted(schema.classes),
        output_names=[target] + sorted(t.class_names() & set(schema.classes)),
    )


def Deref_of(var: Var):
    from repro.iql.terms import Deref

    return Deref(var)
