"""The type system: expressions, interpretations, reduction, enumeration."""

from repro.typesys.expressions import (
    D,
    EMPTY,
    Base,
    ClassRef,
    Empty,
    Intersection,
    SetOf,
    TupleOf,
    TypeExpr,
    Union,
    classref,
    intersection,
    set_of,
    tuple_of,
    union,
)
from repro.typesys.enumeration import EnumerationBudgetExceeded, count_type, enumerate_type
from repro.typesys.interpretation import (
    OidAssignment,
    equivalent_on_samples,
    is_disjoint,
    is_empty_type,
    member,
    sample_values,
)
from repro.typesys.reduction import intersection_free, intersection_reduced

__all__ = [
    "D",
    "EMPTY",
    "Base",
    "ClassRef",
    "Empty",
    "Intersection",
    "SetOf",
    "TupleOf",
    "TypeExpr",
    "Union",
    "classref",
    "intersection",
    "set_of",
    "tuple_of",
    "union",
    "EnumerationBudgetExceeded",
    "count_type",
    "enumerate_type",
    "OidAssignment",
    "equivalent_on_samples",
    "is_disjoint",
    "is_empty_type",
    "member",
    "sample_values",
    "intersection_free",
    "intersection_reduced",
]
