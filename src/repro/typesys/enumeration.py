"""Finite enumeration of type interpretations restricted to given constants.

The definition of *valuation* in Section 3.2 restricts variable bindings to
o-values (1) in the type's interpretation given π, and (2) built only from
``constants(I)``. For a fixed finite constant set the restricted
interpretation ⟦t⟧π|C is finite (though exponential once set constructors
appear), and the naive inflationary evaluator must be able to enumerate it
for variables no positive body literal binds — the non-range-restricted
powerset program ``R1(X) ← X = X`` of Example 3.4.2 is the canonical user.

Range-restriction (Definition 5.2) exists precisely so that real queries
never pay this enumeration; the evaluator calls it only as a last resort,
and the ``budget`` guard turns an astronomically large range into a clear
error instead of an apparent hang.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, List

from repro.errors import EvaluationError
from repro.typesys.expressions import (
    Base,
    ClassRef,
    Empty,
    Intersection,
    SetOf,
    TupleOf,
    TypeExpr,
    Union,
)
from repro.typesys.interpretation import OidAssignment, member
from repro.values.ovalues import OSet, OTuple, OValue, sort_key


class EnumerationBudgetExceeded(EvaluationError):
    """The restricted interpretation has more members than the budget allows."""


def enumerate_type(
    t: TypeExpr,
    constants: Iterable[OValue],
    pi: OidAssignment,
    budget: int = 100_000,
    star: bool = False,
) -> List[OValue]:
    """All o-values in ⟦t⟧π built from ``constants``, deterministically ordered.

    ``budget`` bounds the size of every intermediate result; exceeding it
    raises :class:`EnumerationBudgetExceeded`. The starred interpretation is
    *not* enumerable (extra attributes are unconstrained), so ``star=True``
    is rejected.
    """
    if star:
        raise EvaluationError("the *-interpretation is not finitely enumerable")
    consts = sorted(set(constants), key=sort_key)
    values = _enumerate(t, consts, pi, budget)
    return sorted(set(values), key=sort_key)


def _enumerate(t: TypeExpr, consts: List[OValue], pi: OidAssignment, budget: int) -> List[OValue]:
    if isinstance(t, Empty):
        return []
    if isinstance(t, Base):
        return list(consts)
    if isinstance(t, ClassRef):
        return sorted(pi.get(t.name, ()), key=sort_key)
    if isinstance(t, Union):
        out: List[OValue] = []
        for m in t.members:
            out.extend(_enumerate(m, consts, pi, budget))
            _check(len(out), budget)
        return out
    if isinstance(t, Intersection):
        first, *rest = t.members
        candidates = _enumerate(first, consts, pi, budget)
        return [v for v in candidates if all(member(v, m, pi) for m in rest)]
    if isinstance(t, SetOf):
        elements = sorted(set(_enumerate(t.element, consts, pi, budget)), key=sort_key)
        if len(elements) > 0 and 2 ** len(elements) > budget:
            raise EnumerationBudgetExceeded(
                f"{{...}} over {len(elements)} elements has 2^{len(elements)} subsets; "
                f"budget is {budget}"
            )
        out = []
        for size in range(len(elements) + 1):
            for combo in itertools.combinations(elements, size):
                out.append(OSet(combo))
                _check(len(out), budget)
        return out
    if isinstance(t, TupleOf):
        per_attr = []
        for attr, ct in t.fields:
            vals = sorted(set(_enumerate(ct, consts, pi, budget)), key=sort_key)
            if not vals:
                return []
            per_attr.append((attr, vals))
        total = 1
        for _, vals in per_attr:
            total *= len(vals)
            _check(total, budget)
        out = []
        for combo in itertools.product(*(vals for _, vals in per_attr)):
            out.append(OTuple({attr: v for (attr, _), v in zip(per_attr, combo)}))
        return out
    raise TypeError(f"not a type expression: {t!r}")


def _check(count: int, budget: int) -> None:
    if count > budget:
        raise EnumerationBudgetExceeded(
            f"restricted type interpretation exceeds the enumeration budget ({budget})"
        )


def count_type(
    t: TypeExpr, constants: FrozenSet[OValue], pi: OidAssignment, cap: int = 10**12
) -> int:
    """The cardinality of ⟦t⟧π|C without materializing it (capped).

    Used by benchmarks to report the search-space sizes that motivate
    range-restriction (Section 5).
    """
    if isinstance(t, Empty):
        return 0
    if isinstance(t, Base):
        return len(constants)
    if isinstance(t, ClassRef):
        return len(pi.get(t.name, ()))
    if isinstance(t, Union):
        # Upper bound (members may overlap); exact enough for reporting.
        return min(cap, sum(count_type(m, constants, pi, cap) for m in t.members))
    if isinstance(t, Intersection):
        return min(count_type(m, constants, pi, cap) for m in t.members)
    if isinstance(t, SetOf):
        n = count_type(t.element, constants, pi, cap)
        if n > 60:
            return cap
        return min(cap, 2**n)
    if isinstance(t, TupleOf):
        total = 1
        for _, ct in t.fields:
            total *= count_type(ct, constants, pi, cap)
            if total >= cap:
                return cap
        return total
    raise TypeError(f"not a type expression: {t!r}")
