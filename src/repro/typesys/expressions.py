"""Type expressions (Section 2.2 of the paper).

The abstract syntax, for ``P`` a class name and ``k ≥ 0``::

    t ::= ⊥ | D | P | [A1: t, ..., Ak: t] | {t} | (t ∨ t) | (t ∧ t)

Types are immutable, hashable AST nodes. ``∨`` and ``∧`` are binary in the
paper; we store them n-ary, flattened and deduplicated, which matches the
canonical-form convention used in Lemma 4.2.6 ("∨-nodes have arbitrary
arity, but only non-∨ nodes as children") and costs nothing semantically
(∪ and ∩ are associative, commutative and idempotent).

A parse tree can be inspected via the ``children`` property; the structural
predicates ``is_intersection_reduced`` / ``is_intersection_free`` implement
the definitions before Proposition 2.2.1.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

from repro.errors import TypeExpressionError


class TypeExpr:
    """Base class for type expressions. Instances are immutable."""

    __slots__ = ()

    @property
    def children(self) -> Tuple["TypeExpr", ...]:
        return ()

    # -- structural predicates (Section 2.2) ---------------------------------

    def is_intersection_free(self) -> bool:
        """True iff the parse tree has no ∧-node."""
        if isinstance(self, Intersection):
            return False
        return all(child.is_intersection_free() for child in self.children)

    def is_intersection_reduced(self) -> bool:
        """True iff no ∧-node is an ancestor of a ×, * or ∨-node."""
        if isinstance(self, Intersection):
            return all(_atomic_below(child) for child in self.children)
        return all(child.is_intersection_reduced() for child in self.children)

    def class_names(self) -> FrozenSet[str]:
        """All class names referenced by this type expression."""
        out = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, ClassRef):
                out.add(node.name)
            stack.extend(node.children)
        return frozenset(out)

    def has_set_constructor(self) -> bool:
        """True iff a {·} node occurs — used by ptime-restriction (Def 5.1)."""
        if isinstance(self, SetOf):
            return True
        return any(child.has_set_constructor() for child in self.children)

    def depth(self) -> int:
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def substitute_classes(self, mapping: Mapping[str, "TypeExpr"]) -> "TypeExpr":
        """Replace class references according to ``mapping``.

        Used throughout Section 4 (e.g. the proof of Theorem 4.2.4 replaces
        every class ``Pi`` by a single class ``P``) and Section 6 (replacing
        a class by the disjunction of its sub-classes).
        """
        raise NotImplementedError

    # Subclasses must implement __eq__/__hash__/__repr__.


def _atomic_below(t: TypeExpr) -> bool:
    """True iff no ×, * or ∨ node occurs in ``t`` (∧ over atoms is fine)."""
    if isinstance(t, (TupleOf, SetOf, Union)):
        return False
    return all(_atomic_below(child) for child in t.children)


class Empty(TypeExpr):
    """The empty type ⊥, interpreted as the empty set of o-values."""

    __slots__ = ()
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def substitute_classes(self, mapping):
        return self

    def __repr__(self):
        return "⊥"

    def __hash__(self):
        return hash(Empty)

    def __eq__(self, other):
        return isinstance(other, Empty)


class Base(TypeExpr):
    """The base domain D (all constants)."""

    __slots__ = ()
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def substitute_classes(self, mapping):
        return self

    def __repr__(self):
        return "D"

    def __hash__(self):
        return hash(Base)

    def __eq__(self, other):
        return isinstance(other, Base)


class ClassRef(TypeExpr):
    """A class name ``P``, interpreted as π(P) — the set of oids of the class.

    Class references are how the type language expresses recursion: a type
    may mention the class it belongs to (Example 1.1's ``1st-generation``).
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise TypeExpressionError(f"class name must be a non-empty string, got {name!r}")
        self.name = name

    def substitute_classes(self, mapping):
        return mapping.get(self.name, self)

    def __repr__(self):
        return self.name

    def __hash__(self):
        return hash((ClassRef, self.name))

    def __eq__(self, other):
        return isinstance(other, ClassRef) and self.name == other.name


class TupleOf(TypeExpr):
    """The tuple type ``[A1: t1, ..., Ak: tk]`` with distinct attributes."""

    __slots__ = ("fields", "_hash")

    def __init__(self, fields: Mapping[str, TypeExpr] = None, **kwargs: TypeExpr):
        items: Dict[str, TypeExpr] = dict(fields or {})
        for attr, t in kwargs.items():
            if attr in items:
                raise TypeExpressionError(f"duplicate attribute {attr!r}")
            items[attr] = t
        for attr, t in items.items():
            if not isinstance(attr, str):
                raise TypeExpressionError(f"attribute names must be strings, got {attr!r}")
            if not isinstance(t, TypeExpr):
                raise TypeExpressionError(f"component {attr} is not a type expression: {t!r}")
        self.fields: Tuple[Tuple[str, TypeExpr], ...] = tuple(sorted(items.items()))
        self._hash = hash((TupleOf, self.fields))

    @property
    def children(self):
        return tuple(t for _, t in self.fields)

    @property
    def attributes(self) -> Tuple[str, ...]:
        return tuple(attr for attr, _ in self.fields)

    def component(self, attr: str) -> TypeExpr:
        for name, t in self.fields:
            if name == attr:
                return t
        raise KeyError(attr)

    def substitute_classes(self, mapping):
        return TupleOf({attr: t.substitute_classes(mapping) for attr, t in self.fields})

    def __repr__(self):
        inner = ", ".join(f"{attr}: {t!r}" for attr, t in self.fields)
        return f"[{inner}]"

    def __hash__(self):
        return self._hash

    def __eq__(self, other):
        return isinstance(other, TupleOf) and self.fields == other.fields


class SetOf(TypeExpr):
    """The finite-set type ``{t}``."""

    __slots__ = ("element", "_hash")

    def __init__(self, element: TypeExpr):
        if not isinstance(element, TypeExpr):
            raise TypeExpressionError(f"set element is not a type expression: {element!r}")
        self.element = element
        self._hash = hash((SetOf, element))

    @property
    def children(self):
        return (self.element,)

    def substitute_classes(self, mapping):
        return SetOf(self.element.substitute_classes(mapping))

    def __repr__(self):
        return f"{{{self.element!r}}}"

    def __hash__(self):
        return self._hash

    def __eq__(self, other):
        return isinstance(other, SetOf) and self.element == other.element


class _NAry(TypeExpr):
    """Shared machinery for ∨ and ∧: flattened, deduplicated, order-canonical."""

    __slots__ = ("members", "_hash")
    _symbol = "?"

    def __init__(self, *members: TypeExpr):
        flat = []
        for m in self._flatten(members):
            if not isinstance(m, TypeExpr):
                raise TypeExpressionError(f"not a type expression: {m!r}")
            if m not in flat:
                flat.append(m)
        if len(flat) < 2:
            raise TypeExpressionError(
                f"{type(self).__name__} needs at least two distinct members; "
                f"use the make() smart constructor for degenerate cases"
            )
        self.members: Tuple[TypeExpr, ...] = tuple(sorted(flat, key=repr))
        self._hash = hash((type(self), self.members))

    @classmethod
    def _flatten(cls, members: Iterable[TypeExpr]):
        for m in members:
            if isinstance(m, cls):
                yield from m.members
            else:
                yield m

    @property
    def children(self):
        return self.members

    def __repr__(self):
        return "(" + f" {self._symbol} ".join(repr(m) for m in self.members) + ")"

    def __hash__(self):
        return self._hash

    def __eq__(self, other):
        return type(other) is type(self) and self.members == other.members


class Union(_NAry):
    """The union type ``(t1 ∨ t2)`` — the paper's essential addition over ODMG."""

    __slots__ = ()
    _symbol = "∨"

    @staticmethod
    def make(*members: TypeExpr) -> TypeExpr:
        """Smart constructor: drops ⊥ members, collapses singletons."""
        flat = []
        for m in Union._flatten(members):
            if isinstance(m, Empty):
                continue
            if m not in flat:
                flat.append(m)
        if not flat:
            return Empty()
        if len(flat) == 1:
            return flat[0]
        return Union(*flat)


class Intersection(_NAry):
    """The intersection type ``(t1 ∧ t2)``."""

    __slots__ = ()
    _symbol = "∧"

    @staticmethod
    def make(*members: TypeExpr) -> TypeExpr:
        """Smart constructor: ⊥ absorbs, singletons collapse."""
        flat = []
        for m in Intersection._flatten(members):
            if isinstance(m, Empty):
                return Empty()
            if m not in flat:
                flat.append(m)
        if not flat:
            raise TypeExpressionError("empty intersection has no meaning here")
        if len(flat) == 1:
            return flat[0]
        return Intersection(*flat)


# -- convenience constructors (the public names used across the library) -----

EMPTY = Empty()
D = Base()


def classref(name: str) -> ClassRef:
    return ClassRef(name)


def tuple_of(fields: Mapping[str, TypeExpr] = None, **kwargs: TypeExpr) -> TupleOf:
    return TupleOf(fields, **kwargs)


def set_of(element: TypeExpr) -> SetOf:
    return SetOf(element)


def union(*members: TypeExpr) -> TypeExpr:
    return Union.make(*members)


def intersection(*members: TypeExpr) -> TypeExpr:
    return Intersection.make(*members)
