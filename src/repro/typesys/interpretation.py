"""Type interpretations ⟦t⟧π (Section 2.2) and ⟦t⟧π* (Section 6.2).

Given an oid assignment π (a mapping from class names to finite sets of
oids), every type expression denotes a set of o-values:

* ⟦⊥⟧π = ∅, ⟦D⟧π = D, ⟦P⟧π = π(P),
* ⟦t1 ∨ t2⟧π = ⟦t1⟧π ∪ ⟦t2⟧π and ⟦t1 ∧ t2⟧π = ⟦t1⟧π ∩ ⟦t2⟧π,
* ⟦{t}⟧π = all finite subsets of ⟦t⟧π,
* ⟦[A1: t1, ..., Ak: tk]⟧π = tuples with exactly those attributes, each
  component in the corresponding interpretation.

Because D is infinite, interpretations are infinite sets; we expose them as
a decidable *membership* predicate (:func:`member`). The starred
interpretation of Section 6.2 differs only on tuples: a tuple type admits
tuples with *additional* attributes of unconstrained type — this is what
makes record subtyping (Cardelli-style inheritance) work.

Type *equivalence* over (disjoint) oid assignments is undecidable to settle
by enumeration alone; we provide :func:`equivalent_on_samples`, a bounded
semantic check used by the tests of Propositions 2.2.1 and 6.1, which
probes the two interpretations with systematically generated o-values over
randomly generated disjoint assignments.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Set

from repro.typesys.expressions import (
    Base,
    ClassRef,
    Empty,
    Intersection,
    SetOf,
    TupleOf,
    TypeExpr,
    Union,
)
from repro.values.ovalues import Oid, OSet, OTuple, OValue, is_constant

#: An oid assignment π: class name → finite set of oids.
OidAssignment = Mapping[str, Set[Oid]]


def is_disjoint(pi: OidAssignment) -> bool:
    """True iff π assigns pairwise disjoint oid sets (Definition 2.1.2)."""
    seen: Set[Oid] = set()
    for oids in pi.values():
        for oid in oids:
            if oid in seen:
                return False
            seen.add(oid)
    return True


def member(value: OValue, t: TypeExpr, pi: OidAssignment, star: bool = False) -> bool:
    """Decide ``value ∈ ⟦t⟧π`` (or ``⟦t⟧π*`` when ``star`` is set).

    The only difference in the starred interpretation is the tuple case:
    extra attributes beyond those listed are allowed, with components of
    totally unconstrained type (Section 6.2).
    """
    if isinstance(t, Empty):
        return False
    if isinstance(t, Base):
        return is_constant(value)
    if isinstance(t, ClassRef):
        return isinstance(value, Oid) and value in pi.get(t.name, ())
    if isinstance(t, Union):
        return any(member(value, m, pi, star) for m in t.members)
    if isinstance(t, Intersection):
        return all(member(value, m, pi, star) for m in t.members)
    if isinstance(t, SetOf):
        return isinstance(value, OSet) and all(
            member(element, t.element, pi, star) for element in value
        )
    if isinstance(t, TupleOf):
        if not isinstance(value, OTuple):
            return False
        required = dict(t.fields)
        present = set(value.attributes)
        if star:
            if not set(required) <= present:
                return False
        else:
            if set(required) != present:
                return False
        return all(member(value[attr], ct, pi, star) for attr, ct in required.items())
    raise TypeError(f"not a type expression: {t!r}")


def is_empty_type(t: TypeExpr, pi: OidAssignment) -> bool:
    """Decide whether ⟦t⟧π = ∅ for the *given* π.

    ⊥ is always empty; D never is; P is empty iff π(P) is; a set type is
    never empty (the empty set inhabits it); a tuple type is empty iff some
    component type is; ∨ is empty iff all members are. ∧ requires care and
    is answered after intersection elimination by the caller for exactness —
    here we use a sound approximation (some member empty ⇒ empty) together
    with the atomic cases, which is exact for intersection-reduced types
    over the given π.
    """
    if isinstance(t, Empty):
        return True
    if isinstance(t, Base):
        return False
    if isinstance(t, ClassRef):
        return not pi.get(t.name)
    if isinstance(t, SetOf):
        return False  # the empty set is always a member
    if isinstance(t, TupleOf):
        return any(is_empty_type(ct, pi) for _, ct in t.fields)
    if isinstance(t, Union):
        return all(is_empty_type(m, pi) for m in t.members)
    if isinstance(t, Intersection):
        if any(is_empty_type(m, pi) for m in t.members):
            return True
        atoms = [m for m in t.members if isinstance(m, (Base, ClassRef))]
        # Distinct classes under a disjoint π, or D ∧ P, can only share ∅.
        names = {a.name for a in atoms if isinstance(a, ClassRef)}
        if len(names) > 1 and is_disjoint(pi):
            inhabited = [pi.get(n, set()) for n in names]
            common = set.intersection(*(set(s) for s in inhabited)) if inhabited else set()
            return not common
        if names and any(isinstance(a, Base) for a in atoms):
            return True
        return False
    raise TypeError(f"not a type expression: {t!r}")


# -- bounded semantic equivalence --------------------------------------------


def sample_values(
    types: Sequence[TypeExpr],
    pi: OidAssignment,
    constants: Iterable[OValue] = ("a", "b"),
    set_budget: int = 2,
) -> Set[OValue]:
    """Generate a probe set of o-values reaching into every corner of ``types``.

    The probes include: the given constants, every oid in π, the empty set,
    and recursively built tuples/sets following the structure of the type
    expressions (bounded by ``set_budget`` elements per set). Probing with
    this family distinguishes all the inequivalent types exercised in the
    paper's examples and in our property tests.
    """
    probes: Set[OValue] = set(constants)
    for oids in pi.values():
        probes.update(oids)
    probes.add(OSet())
    probes.add(OTuple())

    def build(t: TypeExpr, depth: int) -> Set[OValue]:
        if depth < 0:
            return set()
        if isinstance(t, (Empty, Base)):
            return set(constants)
        if isinstance(t, ClassRef):
            return set(pi.get(t.name, ()))
        if isinstance(t, (Union, Intersection)):
            out: Set[OValue] = set()
            for m in t.members:
                out |= build(m, depth)
            return out
        if isinstance(t, SetOf):
            inner = sorted(build(t.element, depth - 1), key=repr)[: set_budget + 1]
            out = {OSet()}
            for i in range(len(inner)):
                out.add(OSet(inner[: i + 1]))
                out.add(OSet([inner[i]]))
            return out
        if isinstance(t, TupleOf):
            out = set()
            component_choices = []
            for attr, ct in t.fields:
                vals = sorted(build(ct, depth - 1), key=repr)[:set_budget]
                if not vals:
                    return out
                component_choices.append((attr, vals))
            # take the diagonal plus the first-cartesian row to keep it small
            width = max(len(vals) for _, vals in component_choices)
            for i in range(width):
                out.add(
                    OTuple(
                        {attr: vals[min(i, len(vals) - 1)] for attr, vals in component_choices}
                    )
                )
            # and a version with an extra attribute, to distinguish * types
            base = {attr: vals[0] for attr, vals in component_choices}
            base["__extra__"] = "extra"
            out.add(OTuple(base))
            return out
        raise TypeError(f"not a type expression: {t!r}")

    for t in types:
        probes |= build(t, depth=t.depth() + 1)
    return probes


def equivalent_on_samples(
    t1: TypeExpr,
    t2: TypeExpr,
    pi: OidAssignment,
    star: bool = False,
    extra_probes: Iterable[OValue] = (),
) -> bool:
    """Bounded check that ⟦t1⟧π = ⟦t2⟧π on a generated probe family."""
    probes = sample_values([t1, t2], pi) | set(extra_probes)
    return all(member(v, t1, pi, star) == member(v, t2, pi, star) for v in probes)
