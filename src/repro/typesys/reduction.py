"""Intersection reduction and elimination (Propositions 2.2.1 and 6.1).

Proposition 2.2.1: for each type expression there is (1) an equivalent
*intersection-reduced* expression (no ∧-node above a ×, * or ∨-node), and
(2) an expression *equivalent over disjoint oid assignments* that is
*intersection-free*. The paper proves this "by straightforward algebraic
manipulation of parse trees"; this module is that manipulation, spelled
out. Proposition 6.1 is the same statement for the starred interpretation
(Section 6.2), which differs only in how tuple types intersect: open
records merge their attribute sets instead of requiring equality.

The algebra (plain interpretation):

* ∧ distributes over ∨,
* {t} ∧ {t'}  =  {t ∧ t'},
* [..A..] ∧ [..B..]  =  componentwise ∧ if the attribute sets coincide,
  and ⊥ otherwise (the paper's example: ``[A1:D,A2:{P1}] ∧ [A1:D,A2:{P2}]``
  equals ``[A1:D, A2:{P1 ∧ P2}]``),
* constructor clashes (tuple ∧ set, tuple ∧ D, set ∧ P, ...) collapse to ⊥,
* D ∧ D = D, P ∧ P = P; D ∧ P = ⊥ always (constants are never oids);
  P1 ∧ P2 with distinct names survives as an atomic intersection — unless
  disjoint assignments are assumed, in which case it is ⊥.

Starred interpretation: identical except

* [..A..] ∧* [..B..]  =  the merged record, shared attributes intersected
  (``[A1:D,A2:D] ∧* [A2:D,A3:D] = [A1:D,A2:D,A3:D]``),
* D ∧* [..]: still ⊥ (constants are not tuples).
"""

from __future__ import annotations

from typing import List

from repro.typesys.expressions import (
    Base,
    ClassRef,
    Empty,
    Intersection,
    SetOf,
    TupleOf,
    TypeExpr,
    Union,
)

EMPTY = Empty()


def intersection_reduced(t: TypeExpr, star: bool = False) -> TypeExpr:
    """An equivalent intersection-reduced type (Proposition 2.2.1(1))."""
    return _reduce(t, disjoint=False, star=star)


def intersection_free(t: TypeExpr, star: bool = False) -> TypeExpr:
    """A type equivalent over *disjoint* assignments with no ∧ at all
    (Proposition 2.2.1(2) / Proposition 6.1(2))."""
    return _reduce(t, disjoint=True, star=star)


def _reduce(t: TypeExpr, disjoint: bool, star: bool) -> TypeExpr:
    if isinstance(t, (Empty, Base, ClassRef)):
        return t
    if isinstance(t, SetOf):
        return SetOf(_reduce(t.element, disjoint, star))
    if isinstance(t, TupleOf):
        fields = {attr: _reduce(ct, disjoint, star) for attr, ct in t.fields}
        if any(isinstance(ct, Empty) for ct in fields.values()):
            # [.., Ai: ⊥, ..] has no members; the paper notes [A1: ⊥] ≡ ⊥.
            return EMPTY
        return TupleOf(fields)
    if isinstance(t, Union):
        return Union.make(*(_reduce(m, disjoint, star) for m in t.members))
    if isinstance(t, Intersection):
        members = [_reduce(m, disjoint, star) for m in t.members]
        result = members[0]
        for m in members[1:]:
            result = _intersect_pair(result, m, disjoint, star)
            if isinstance(result, Empty):
                return EMPTY
        return result
    raise TypeError(f"not a type expression: {t!r}")


def _intersect_pair(a: TypeExpr, b: TypeExpr, disjoint: bool, star: bool) -> TypeExpr:
    """Intersect two already-reduced types, pushing ∧ as deep as possible."""
    if isinstance(a, Empty) or isinstance(b, Empty):
        return EMPTY
    if a == b:
        return a
    # Distribute over unions first, so below we only see non-∨ operands.
    if isinstance(a, Union):
        return Union.make(*(_intersect_pair(m, b, disjoint, star) for m in a.members))
    if isinstance(b, Union):
        return Union.make(*(_intersect_pair(a, m, disjoint, star) for m in b.members))

    if isinstance(a, SetOf) and isinstance(b, SetOf):
        return SetOf(_intersect_pair(a.element, b.element, disjoint, star))

    if isinstance(a, TupleOf) and isinstance(b, TupleOf):
        return _intersect_tuples(a, b, disjoint, star)

    if isinstance(a, Base) and isinstance(b, Base):
        return a
    if isinstance(a, ClassRef) and isinstance(b, ClassRef):
        if a.name == b.name:
            return a
        if disjoint:
            return EMPTY  # distinct classes share no oids under disjoint π
        return Intersection(a, b)  # atomic residue: still intersection-reduced

    a_atomic = isinstance(a, (Base, ClassRef, Intersection))
    b_atomic = isinstance(b, (Base, ClassRef, Intersection))
    if a_atomic and b_atomic:
        # One side is an atomic residue like (P1 ∧ P2); merge atom lists.
        atoms: List[TypeExpr] = []
        for side in (a, b):
            atoms.extend(side.members if isinstance(side, Intersection) else [side])
        if any(isinstance(x, Base) for x in atoms) and any(
            isinstance(x, ClassRef) for x in atoms
        ):
            return EMPTY  # D ∧ P: constants are never oids
        names = {x.name for x in atoms if isinstance(x, ClassRef)}
        if len(names) > 1 and disjoint:
            return EMPTY
        return Intersection.make(*atoms)

    # Constructor clash: tuple ∧ set, D ∧ tuple, P ∧ set, ... all empty.
    return EMPTY


def _intersect_tuples(a: TupleOf, b: TupleOf, disjoint: bool, star: bool) -> TypeExpr:
    a_fields = dict(a.fields)
    b_fields = dict(b.fields)
    if not star:
        if set(a_fields) != set(b_fields):
            return EMPTY
        merged = {
            attr: _intersect_pair(a_fields[attr], b_fields[attr], disjoint, star)
            for attr in a_fields
        }
    else:
        merged = {}
        for attr in set(a_fields) | set(b_fields):
            if attr in a_fields and attr in b_fields:
                merged[attr] = _intersect_pair(a_fields[attr], b_fields[attr], disjoint, star)
            else:
                merged[attr] = a_fields.get(attr) or b_fields.get(attr)
    if any(isinstance(ct, Empty) for ct in merged.values()):
        return EMPTY
    return TupleOf(merged)
