"""The value-based data model (Section 7): regular trees, φ and ψ."""

from repro.valuebased.regular_trees import (
    NodeId,
    RegularTreeSystem,
    from_finite_value,
    trees_equal,
)
from repro.valuebased.equality import value_equal, value_partition
from repro.valuebased.translate import object_schema, phi, psi, run_iqlv
from repro.valuebased.vmodel import VInstance, VSchema, is_v_type, vmember

__all__ = [
    "NodeId",
    "RegularTreeSystem",
    "from_finite_value",
    "trees_equal",
    "value_equal",
    "value_partition",
    "object_schema",
    "phi",
    "psi",
    "run_iqlv",
    "VInstance",
    "VSchema",
    "is_v_type",
    "vmember",
]
