"""Equality-by-value for objects (Section 7's coercion mechanism).

"Object-based systems often allow features such as equality-by-value,
which is a precise way of addressing the underlying infinite objects."
Two oids are *value-equal* when the (possibly infinite) pure values their
ν-unfoldings denote are the same regular tree — i.e. when they are
bisimilar through ν.

:func:`value_equal` decides this for any two oids of an instance —
including oids of different classes and instances whose schemas also have
relations (only ν matters). Oids with *undefined* values are value-equal
only to themselves: an unknown value carries its object's identity, the
conservative reading of incomplete information.

:func:`value_partition` groups a set of oids into value-equality classes
in one partition-refinement pass — the workhorse behind ψ's duplicate
elimination, exposed directly for OODB-style deduplication queries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.schema.instance import Instance
from repro.valuebased.regular_trees import NodeId, RegularTreeSystem
from repro.values.ovalues import Oid, OSet, OTuple, OValue, is_constant


def _build_system(instance: Instance, oids: Iterable[Oid]):
    """Embed the ν-unfoldings of the given oids (and everything they reach)
    into a regular-tree system; undefined oids become identity leaves."""
    system = RegularTreeSystem()
    node_of: Dict[Oid, NodeId] = {}

    def node_for(oid: Oid) -> NodeId:
        if oid in node_of:
            return node_of[oid]
        node_id = f"oid:{oid.serial}"
        node_of[oid] = node_id
        system.declare(node_id)
        value = instance.value_of(oid)
        if value is None:
            # Undefined: a leaf unique to this object — value-equal only
            # to itself.
            system.define(node_id, ("const", f"⊥#{oid.serial}"))
        else:
            system.define(node_id, _shell(value))
        return node_id

    def embed(value: OValue) -> NodeId:
        if isinstance(value, Oid):
            return node_for(value)
        if isinstance(value, OTuple):
            return system.add_tuple({attr: embed(v) for attr, v in value.items()})
        if isinstance(value, OSet):
            return system.add_set(embed(v) for v in value)
        return system.add_const(value)

    def _shell(value: OValue):
        if isinstance(value, Oid):
            return ("alias", node_for(value))
        if isinstance(value, OTuple):
            return ("tuple", tuple(sorted((a, embed(v)) for a, v in value.items())))
        if isinstance(value, OSet):
            return ("set", tuple(sorted(embed(v) for v in value)))
        if is_constant(value):
            return ("const", value)
        raise TypeError(f"not an o-value: {value!r}")

    for oid in oids:
        node_for(oid)

    from repro.valuebased.translate import _resolve_aliases

    _resolve_aliases(system)
    return system, node_of


def value_equal(instance: Instance, left: Oid, right: Oid) -> bool:
    """Do the two objects denote the same pure value (bisimilar unfoldings)?"""
    if left is right:
        return True
    system, node_of = _build_system(instance, [left, right])
    classes = system.bisimulation_classes()
    return classes[node_of[left]] == classes[node_of[right]]


def value_partition(instance: Instance, oids: Iterable[Oid]) -> List[Set[Oid]]:
    """Partition ``oids`` into value-equality classes (one refinement pass)."""
    oids = list(oids)
    if not oids:
        return []
    system, node_of = _build_system(instance, oids)
    classes = system.bisimulation_classes()
    groups: Dict[int, Set[Oid]] = {}
    for oid in oids:
        groups.setdefault(classes[node_of[oid]], set()).add(oid)
    return list(groups.values())
