"""Regular infinite trees as finite equation systems (Section 7.1).

Pure values are (possibly infinite) trees over constants, tuple nodes and
set nodes; the values occurring in v-instances are *regular* — they have
finitely many distinct subtrees (Proposition 7.1.3) — precisely because
they arise as solutions of the finite equation systems {oᵢ = ν(oᵢ)}.

We represent a regular tree as a *pointed node system*: a finite map from
node ids to shells

* ``("const", c)`` — a leaf,
* ``("tuple", ((attr, id), ...))`` — a tuple node over child nodes,
* ``("set", (id, ...))`` — a set node over child nodes,

plus a root id. Cycles in the node graph encode infinite unfoldings.

Equality of regular trees is *bisimilarity*, with one wrinkle inherited
from set semantics: the children of a set node form a set *of trees*, so
two bisimilar children collapse. Partition refinement with set-node
signatures taken as the set (not multiset) of child blocks captures this
exactly — the same convention by which duplicate elimination happens in ψ
(Section 7.1's objects→values translation).

Canonical keys (:func:`canonical_key`) give each bisimilarity class a
μ-term-like string with de-Bruijn backreferences, usable across systems:
two nodes in different systems are bisimilar iff their keys are equal.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import RegularTreeError
from repro.values.ovalues import OValue, is_constant

NodeId = str
Shell = Tuple  # ("const", c) | ("tuple", ((attr, id), ...)) | ("set", (id, ...))


class RegularTreeSystem:
    """A finite node system; several trees may share it (one per root)."""

    def __init__(self):
        self.nodes: Dict[NodeId, Shell] = {}
        self._fresh = itertools.count(1)

    # -- construction ---------------------------------------------------------

    def fresh_id(self, hint: str = "n") -> NodeId:
        return f"{hint}#{next(self._fresh)}"

    def add_const(self, value: OValue, node_id: Optional[NodeId] = None) -> NodeId:
        if not is_constant(value):
            raise RegularTreeError(f"{value!r} is not a constant")
        nid = node_id or self.fresh_id("c")
        self.nodes[nid] = ("const", value)
        return nid

    def add_tuple(
        self, fields: Dict[str, NodeId], node_id: Optional[NodeId] = None
    ) -> NodeId:
        nid = node_id or self.fresh_id("t")
        self.nodes[nid] = ("tuple", tuple(sorted(fields.items())))
        return nid

    def add_set(self, children: Iterable[NodeId], node_id: Optional[NodeId] = None) -> NodeId:
        nid = node_id or self.fresh_id("s")
        self.nodes[nid] = ("set", tuple(sorted(set(children))))
        return nid

    def declare(self, node_id: NodeId) -> NodeId:
        """Reserve an id to be defined later (for cyclic construction)."""
        self.nodes.setdefault(node_id, None)
        return node_id

    def define(self, node_id: NodeId, shell: Shell) -> None:
        self.nodes[node_id] = shell

    def check_complete(self) -> None:
        undefined = [nid for nid, shell in self.nodes.items() if shell is None]
        if undefined:
            raise RegularTreeError(f"undefined nodes: {undefined[:5]}")
        for nid, shell in self.nodes.items():
            kind = shell[0]
            children: List[NodeId] = []
            if kind == "tuple":
                children = [cid for _, cid in shell[1]]
            elif kind == "set":
                children = list(shell[1])
            elif kind != "const":
                raise RegularTreeError(f"unknown shell kind {kind!r} at {nid}")
            for cid in children:
                if cid not in self.nodes:
                    raise RegularTreeError(f"node {nid} references missing {cid}")

    def copy(self) -> "RegularTreeSystem":
        new = RegularTreeSystem()
        new.nodes = dict(self.nodes)
        return new

    # -- bisimulation ------------------------------------------------------------

    def bisimulation_classes(self) -> Dict[NodeId, int]:
        """Partition refinement to the coarsest bisimulation.

        Set-node signatures use the *set* of child blocks, implementing set
        semantics (duplicate subtrees collapse). Returns block ids (dense
        ints, stable within a call).
        """
        self.check_complete()
        block: Dict[NodeId, int] = {}
        palette: Dict[object, int] = {}
        for nid, shell in self.nodes.items():
            key = ("const", shell[1]) if shell[0] == "const" else (shell[0],)
            block[nid] = palette.setdefault(key, len(palette))

        for _ in range(len(self.nodes) + 1):
            new_palette: Dict[object, int] = {}
            new_block: Dict[NodeId, int] = {}
            for nid, shell in self.nodes.items():
                kind = shell[0]
                if kind == "const":
                    signature = (block[nid], "const", shell[1])
                elif kind == "tuple":
                    signature = (
                        block[nid],
                        "tuple",
                        tuple((attr, block[cid]) for attr, cid in shell[1]),
                    )
                else:
                    # Set semantics: the *set* of child blocks — duplicates
                    # (bisimilar children) collapse, and including the own
                    # block keeps refinement monotone on cyclic systems.
                    signature = (block[nid], "set", frozenset(block[cid] for cid in shell[1]))
                new_block[nid] = new_palette.setdefault(signature, len(new_palette))
            if len(set(new_block.values())) == len(set(block.values())):
                block = new_block
                break
            block = new_block
        return block

    def minimize(self) -> Tuple["RegularTreeSystem", Dict[NodeId, NodeId]]:
        """Quotient by bisimilarity. Returns (minimized system, node→representative)."""
        block = self.bisimulation_classes()
        representative: Dict[int, NodeId] = {}
        for nid in sorted(self.nodes):
            representative.setdefault(block[nid], nid)
        mapping = {nid: representative[block[nid]] for nid in self.nodes}
        minimized = RegularTreeSystem()
        for rep in representative.values():
            shell = self.nodes[rep]
            kind = shell[0]
            if kind == "const":
                minimized.nodes[rep] = shell
            elif kind == "tuple":
                minimized.nodes[rep] = (
                    "tuple",
                    tuple((attr, mapping[cid]) for attr, cid in shell[1]),
                )
            else:
                minimized.nodes[rep] = (
                    "set",
                    tuple(sorted({mapping[cid] for cid in shell[1]})),
                )
        return minimized, mapping

    def subtree_count(self, root: NodeId) -> int:
        """The number of distinct subtrees of the tree rooted at ``root`` —
        finite for every node of a finite system (Proposition 7.1.3)."""
        minimized, mapping = self.minimize()
        seen = set()
        stack = [mapping[root]]
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            shell = minimized.nodes[nid]
            if shell[0] == "tuple":
                stack.extend(cid for _, cid in shell[1])
            elif shell[0] == "set":
                stack.extend(shell[1])
        return len(seen)

    # -- canonical keys and unfolding ----------------------------------------------

    def canonical_key(self, root: NodeId) -> str:
        """A canonical string for the bisimilarity class of ``root``.

        Built on the minimized system; cycles become de-Bruijn
        backreferences ("↑k" = k levels up the expansion path), so the key
        is independent of node ids and system identity: equal keys ⟺
        bisimilar trees, across systems.
        """
        minimized, mapping = self.minimize()

        def render(nid: NodeId, path: Tuple[NodeId, ...]) -> str:
            if nid in path:
                return f"↑{len(path) - path.index(nid) - 1}"
            shell = minimized.nodes[nid]
            kind = shell[0]
            if kind == "const":
                return f"c:{shell[1]!r}"
            extended = path + (nid,)
            if kind == "tuple":
                inner = ",".join(
                    f"{attr}:{render(cid, extended)}" for attr, cid in shell[1]
                )
                return f"[{inner}]"
            rendered = sorted(render(cid, extended) for cid in shell[1])
            return "{" + ",".join(rendered) + "}"

        return render(mapping[root], ())

    def unfold(self, root: NodeId, depth: int):
        """The finite prefix of the (possibly infinite) tree, as nested
        Python data; cycles beyond ``depth`` are cut with the marker '…'."""
        shell = self.nodes[root]
        kind = shell[0]
        if kind == "const":
            return shell[1]
        if depth <= 0:
            return "…"
        if kind == "tuple":
            return {attr: self.unfold(cid, depth - 1) for attr, cid in shell[1]}
        return {self._freeze(self.unfold(cid, depth - 1)) for cid in shell[1]}

    @staticmethod
    def _freeze(value):
        if isinstance(value, dict):
            return tuple(sorted((k, RegularTreeSystem._freeze(v)) for k, v in value.items()))
        if isinstance(value, set):
            return frozenset(value)
        return value


def trees_equal(
    sys_a: RegularTreeSystem, root_a: NodeId, sys_b: RegularTreeSystem, root_b: NodeId
) -> bool:
    """Bisimilarity across systems, via canonical keys."""
    return sys_a.canonical_key(root_a) == sys_b.canonical_key(root_b)


def from_finite_value(system: RegularTreeSystem, value) -> NodeId:
    """Embed a finite o-value *without oids* as nodes of ``system``."""
    from repro.values.ovalues import OSet, OTuple

    if isinstance(value, OTuple):
        fields = {attr: from_finite_value(system, v) for attr, v in value.items()}
        return system.add_tuple(fields)
    if isinstance(value, OSet):
        return system.add_set(from_finite_value(system, v) for v in value)
    if is_constant(value):
        return system.add_const(value)
    raise RegularTreeError(f"{value!r} contains oids; use the ψ translation instead")
