"""The translations φ (values → objects) and ψ (objects → values) of
Section 7.1, and IQLv — using IQL as the query language of the value-based
model (Figure 2 / Theorem 7.1.5).

* φ assigns each distinct pure value of each class a fresh oid and builds
  ν type-directedly: at class-typed positions the sub-value is replaced by
  its class-mate's oid (the paper's unique ``w_v``, well-defined because
  v-types have no unions).
* ψ reads the equations {o = ν(o)} as a regular Greibach system; the
  solution is unique (Courcelle), and bisimilar oids collapse to one pure
  value — duplicate elimination "for free".
* Proposition 7.1.4: ψ(φ(I)) = I — tested exactly via canonical keys.
* :func:`run_iqlv`: an IQL program becomes a value-based query by
  pre-composing φ and post-composing ψ; copy elimination happens inside ψ,
  which is why IQLv is vdio-complete (Theorem 7.1.5) with no ``choose``.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.errors import RegularTreeError
from repro.iql.evaluator import Evaluator, EvaluatorLimits
from repro.iql.program import Program
from repro.schema.instance import Instance
from repro.schema.schema import Schema
from repro.typesys.expressions import Base, ClassRef, SetOf, TupleOf, TypeExpr
from repro.valuebased.regular_trees import NodeId, RegularTreeSystem
from repro.valuebased.vmodel import VInstance, VSchema
from repro.values.ovalues import Oid, OSet, OTuple, OValue, is_constant


def object_schema(vschema: VSchema) -> Schema:
    """The object-based schema (∅, P, T) matching a v-schema."""
    return Schema(classes=vschema.classes)


# -- φ: values → objects ---------------------------------------------------------


def phi(vinstance: VInstance) -> Instance:
    """Values → objects: one oid per *distinct* (bisimilarity class of a)
    value per class; ν built type-directedly."""
    schema = object_schema(vinstance.schema)
    instance = Instance(schema)
    system = vinstance.system

    # One oid per canonical value per class; remember a witness root.
    oid_for: Dict[Tuple[str, str], Oid] = {}
    witness: Dict[Tuple[str, str], NodeId] = {}
    for class_name, roots in vinstance.assignment.items():
        for root in roots:
            key = (class_name, system.canonical_key(root))
            if key not in oid_for:
                oid = Oid(f"φ_{class_name}")
                oid_for[key] = oid
                witness[key] = root
                instance.add_class_member(class_name, oid)

    def class_oid(class_name: str, node: NodeId) -> Oid:
        key = (class_name, system.canonical_key(node))
        if key not in oid_for:
            raise RegularTreeError(
                f"value at a {class_name}-typed position is not a member of "
                f"I({class_name}) — the v-instance is not well typed"
            )
        return oid_for[key]

    def convert(t: TypeExpr, node: NodeId) -> OValue:
        shell = system.nodes[node]
        kind = shell[0]
        if isinstance(t, Base):
            if kind != "const":
                raise RegularTreeError(f"expected a constant at {node}")
            return shell[1]
        if isinstance(t, ClassRef):
            return class_oid(t.name, node)
        if isinstance(t, SetOf):
            if kind != "set":
                raise RegularTreeError(f"expected a set node at {node}")
            return OSet(convert(t.element, cid) for cid in shell[1])
        if isinstance(t, TupleOf):
            if kind != "tuple":
                raise RegularTreeError(f"expected a tuple node at {node}")
            fields = dict(shell[1])
            return OTuple({attr: convert(ct, fields[attr]) for attr, ct in t.fields})
        raise RegularTreeError(f"not a v-type: {t!r}")

    for (class_name, _key), oid in oid_for.items():
        root = witness[(class_name, _key)]
        instance.assign(oid, convert(vinstance.schema.classes[class_name], root))
    return instance


# -- ψ: objects → values -----------------------------------------------------------


def psi(instance: Instance, vschema: Optional[VSchema] = None) -> VInstance:
    """Objects → values: solve {o = ν(o)} as a regular equation system.

    Every oid must have a defined value (the paper's premise for ψ);
    bisimilar oids yield one pure value — "for oᵢ and oⱼ distinct, vᵢ and
    vⱼ may be the same (i.e., duplicates are eliminated)".
    """
    if instance.schema.relations:
        raise RegularTreeError("ψ applies to value-based (class-only) schemas")
    vschema = vschema or VSchema(instance.schema.classes)
    result = VInstance(vschema)
    system = result.system

    oid_node: Dict[Oid, NodeId] = {}
    for oids in instance.classes.values():
        for oid in oids:
            node_id = f"oid:{oid.serial}"
            system.declare(node_id)
            oid_node[oid] = node_id

    # Memoized per interned node: a subvalue shared between several ν(o)
    # (hash-consing makes sharing the common case) is embedded once. Oids
    # stay out of the memo — their node ids are already unique via oid_node.
    embed_memo: Dict[int, NodeId] = {}

    def embed(value: OValue) -> NodeId:
        if isinstance(value, Oid):
            if value not in oid_node:
                raise RegularTreeError(f"dangling oid {value!r}")
            return oid_node[value]
        if isinstance(value, (OTuple, OSet)):
            hit = embed_memo.get(id(value))
            if hit is not None:
                return hit
            if isinstance(value, OTuple):
                node = system.add_tuple({attr: embed(v) for attr, v in value.items()})
            else:
                node = system.add_set(embed(v) for v in value)
            embed_memo[id(value)] = node
            return node
        if is_constant(value):
            return system.add_const(value)
        raise RegularTreeError(f"not an o-value: {value!r}")

    for oid, node_id in oid_node.items():
        value = instance.value_of(oid)
        if value is None:
            raise RegularTreeError(
                f"ν({oid!r}) undefined — ψ needs total ν (Section 7.1)"
            )
        if isinstance(value, Oid):
            # o = o' : alias the node by copying the target's shell lazily;
            # a chain o = o' = o'' … of length > |oids| would be cyclic
            # aliasing, which has no tree solution — condition (1) of
            # Definition 7.1.1 excludes the types that would allow it.
            target = value
            depth = 0
            while isinstance(instance.value_of(target), Oid):
                target = instance.value_of(target)
                depth += 1
                if depth > len(oid_node):
                    raise RegularTreeError("cyclic oid aliasing has no tree solution")
            system.define(node_id, ("alias", oid_node[target]))
        else:
            if isinstance(value, OTuple):
                system.define(
                    node_id,
                    ("tuple", tuple(sorted((attr, embed(v)) for attr, v in value.items()))),
                )
            elif isinstance(value, OSet):
                system.define(node_id, ("set", tuple(sorted(embed(v) for v in value))))
            elif is_constant(value):
                system.define(node_id, ("const", value))
            else:
                raise RegularTreeError(f"not an o-value: {value!r}")

    _resolve_aliases(system)

    for class_name, oids in instance.classes.items():
        for oid in oids:
            result.add_value(class_name, oid_node[oid])
    return result


def _resolve_aliases(system: RegularTreeSystem) -> None:
    """Replace ("alias", target) shells by the target's shell."""
    def resolve(node_id: NodeId, seen: Set[NodeId]) -> None:
        shell = system.nodes[node_id]
        if shell[0] != "alias":
            return
        if node_id in seen:
            raise RegularTreeError("cyclic oid aliasing has no tree solution")
        target = shell[1]
        resolve(target, seen | {node_id})
        system.nodes[node_id] = system.nodes[target]

    for node_id in list(system.nodes):
        resolve(node_id, set())


# -- IQLv (Theorem 7.1.5) -------------------------------------------------------------


def run_iqlv(
    program: Program,
    vinstance: VInstance,
    limits: Optional[EvaluatorLimits] = None,
) -> VInstance:
    """Use an IQL program as a value-based query: ψ ∘ G ∘ φ (Figure 2).

    The program's input schema must be the object schema of the
    v-instance; its output schema must be class-only with total ν (which
    holds for the dio programs of Section 7). Duplicate values in the
    output collapse inside ψ — the automatic copy elimination that makes
    IQLv vdio-complete without ``choose``.
    """
    loaded = phi(vinstance).project(program.input_schema)
    output = Evaluator(program, limits=limits).run(loaded).output
    return psi(output)
