"""v-schemas and v-instances (Definitions 7.1.1-7.1.2).

The value-based model strips the framework down: only class names, only
v-type expressions (base, set, tuple — no union, no intersection, no ⊥),
and pure values instead of oids. A v-schema additionally requires that no
T(P) is bare class name (the paper's condition (1), which rules out the
pathological ``T(P1) = P2`` that "does not specify any structure").

A v-instance assigns each class a finite set of pure values — regular
trees — such that I(P) ⊆ ⟦T(P)⟧_I. Type membership over infinite trees is
*coinductive*: a cyclic value inhabits a recursive type when the
obligations close up; :func:`vmember` computes the greatest fixpoint by
assuming pending obligations hold (standard guarded coinduction).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Set, Tuple

from repro.errors import RegularTreeError, SchemaError
from repro.typesys.expressions import Base, ClassRef, SetOf, TupleOf, TypeExpr
from repro.valuebased.regular_trees import NodeId, RegularTreeSystem


def is_v_type(t: TypeExpr) -> bool:
    """v-type-exp(P): built from D, class names, {·} and [·] only."""
    if isinstance(t, (Base, ClassRef)):
        return True
    if isinstance(t, SetOf):
        return is_v_type(t.element)
    if isinstance(t, TupleOf):
        return all(is_v_type(ct) for _, ct in t.fields)
    return False


class VSchema:
    """(P, T): class names typed by v-type expressions, none a bare class."""

    def __init__(self, classes: Mapping[str, TypeExpr]):
        for name, t in classes.items():
            if not is_v_type(t):
                raise SchemaError(
                    f"T({name}) = {t!r} is not a v-type (no ∨, ∧, ⊥ in Section 7)"
                )
            if isinstance(t, ClassRef):
                raise SchemaError(
                    f"T({name}) must not be a bare class name (condition (1) of Def 7.1.1)"
                )
            unknown = t.class_names() - set(classes)
            if unknown:
                raise SchemaError(f"T({name}) references unknown classes {sorted(unknown)}")
        self.classes: Dict[str, TypeExpr] = dict(classes)

    def __repr__(self):
        return "\n".join(f"class {p}: {t!r}" for p, t in sorted(self.classes.items()))


class VInstance:
    """A finite assignment I: class → set of pure-value roots in a shared
    regular-tree system."""

    def __init__(self, schema: VSchema, system: Optional[RegularTreeSystem] = None):
        self.schema = schema
        self.system = system or RegularTreeSystem()
        self.assignment: Dict[str, Set[NodeId]] = {p: set() for p in schema.classes}

    def add_value(self, class_name: str, root: NodeId) -> None:
        if class_name not in self.assignment:
            raise SchemaError(f"unknown class {class_name!r}")
        if root not in self.system.nodes:
            raise RegularTreeError(f"unknown node {root!r}")
        self.assignment[class_name].add(root)

    # -- value identity --------------------------------------------------------

    def canonical_assignment(self) -> Dict[str, FrozenSet[str]]:
        """Each class's value set as canonical keys — the extensional
        contents, with bisimilar duplicates collapsed (pure values are
        compared by bisimilarity, not node identity)."""
        return {
            p: frozenset(self.system.canonical_key(root) for root in roots)
            for p, roots in self.assignment.items()
        }

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, VInstance)
            and self.schema.classes == other.schema.classes
            and self.canonical_assignment() == other.canonical_assignment()
        )

    def __hash__(self):  # pragma: no cover - mutable
        raise TypeError("VInstance is mutable and unhashable")

    # -- validation --------------------------------------------------------------

    def validate(self) -> None:
        """I(P) ⊆ ⟦T(P)⟧_I for every class (Definition 7.1.2)."""
        for name, roots in self.assignment.items():
            t = self.schema.classes[name]
            for root in roots:
                if not vmember(self, root, t):
                    raise SchemaError(
                        f"value {self.system.canonical_key(root)!r} in I({name}) "
                        f"is not of type {t!r}"
                    )

    def is_valid(self) -> bool:
        try:
            self.validate()
        except SchemaError:
            return False
        return True

    def __repr__(self):
        lines = []
        for p in sorted(self.assignment):
            for root in sorted(self.assignment[p]):
                lines.append(f"I({p}) ∋ {self.system.unfold(root, 4)!r}")
        return "\n".join(lines) or "v-instance ∅"


def vmember(
    instance: VInstance,
    node: NodeId,
    t: TypeExpr,
    assumed: Optional[Set[Tuple[NodeId, TypeExpr]]] = None,
) -> bool:
    """Coinductive type membership: node's tree ∈ ⟦t⟧_I.

    A class reference is checked extensionally — the tree must be
    bisimilar to some member of I(P). Structural obligations that recur
    (cyclic values against recursive types) are assumed to hold, giving the
    greatest fixpoint, which is the correct reading for infinite trees.
    """
    assumed = assumed if assumed is not None else set()
    obligation = (node, t)
    if obligation in assumed:
        return True
    assumed = assumed | {obligation}

    shell = instance.system.nodes[node]
    kind = shell[0]
    if isinstance(t, Base):
        return kind == "const"
    if isinstance(t, ClassRef):
        key = instance.system.canonical_key(node)
        return any(
            instance.system.canonical_key(root) == key
            for root in instance.assignment.get(t.name, ())
        )
    if isinstance(t, SetOf):
        if kind != "set":
            return False
        return all(vmember(instance, cid, t.element, assumed) for cid in shell[1])
    if isinstance(t, TupleOf):
        if kind != "tuple":
            return False
        fields = dict(shell[1])
        if set(fields) != set(t.attributes):
            return False
        return all(
            vmember(instance, fields[attr], ct, assumed) for attr, ct in t.fields
        )
    raise SchemaError(f"not a v-type: {t!r}")
