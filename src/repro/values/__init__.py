"""The o-value universe (Section 2.1): constants, oids, tuples, sets."""

from repro.values import intern
from repro.values.intern import interning, interning_enabled, set_interning
from repro.values.ovalues import (
    CONSTANT_TYPES,
    Oid,
    OSet,
    OTuple,
    OValue,
    branching_factor,
    constants_of,
    ensure_ovalue,
    is_constant,
    is_ovalue,
    oids_of,
    render,
    sort_key,
    sorted_elements,
    substitute_oids,
    value_depth,
    value_size,
)
from repro.values.trees import LEAF, SET, TUPLE, ValueTree, from_ovalue, to_ovalue

__all__ = [
    "intern",
    "interning",
    "interning_enabled",
    "set_interning",
    "sorted_elements",
    "CONSTANT_TYPES",
    "Oid",
    "OSet",
    "OTuple",
    "OValue",
    "branching_factor",
    "constants_of",
    "ensure_ovalue",
    "is_constant",
    "is_ovalue",
    "oids_of",
    "render",
    "sort_key",
    "substitute_oids",
    "value_depth",
    "value_size",
    "LEAF",
    "SET",
    "TUPLE",
    "ValueTree",
    "from_ovalue",
    "to_ovalue",
]
