"""The hash-consing store for o-values.

Structurally equal :class:`~repro.values.ovalues.OTuple` / ``OSet`` values
are expensive to compare and hash naively: deep equality walks whole trees,
and the Section-4.1 machinery (O-isomorphism, copy elimination) does little
else.  Hash-consing collapses the value universe into a DAG of *unique*
nodes — constructing a tuple or set that already exists returns the
existing Python object — so that

* ``v1 == v2`` is an identity check whenever both sides were interned
  (with a structural fallback across intern generations, see below),
* ``hash(v)`` is computed once per *distinct* value in the process,
* per-node metadata (``value_size``, ``value_depth``, ``oids_of``,
  ``constants_of``, ``sort_key``, canonical element order) is cached on
  the unique node and shared by every holder of the value.

The store itself is deliberately small: two plain dicts mapping the
canonical content of a node (the sorted field tuple for tuples, the
element frozenset for sets) to a plain :class:`weakref.ref` of the
interned object.  Weak references mean the store never keeps a value
alive by itself.  Dead entries are *not* removed eagerly: a removal
callback would be a Python-level call per dead value, firing inside
whatever code happens to drop the last reference (including inside a GC
pass — tens of thousands of calls after a large evaluation).  Instead a
dead reference simply reads as a miss, the re-construction overwrites it
in place, and the tables are compacted by an amortized sweep: when a
table grows past its high-water mark the constructor rebuilds it keeping
only live entries and sets the next mark to twice the live size.  Each
entry is therefore swept O(1) times per doubling — constant amortized
cost, no callbacks anywhere.

Intern generations
------------------

Interning can be switched off (``repro run --no-intern``, or the
:func:`interning` context manager) for A/B measurements and differential
tests.  Values built while interning is off are ordinary objects; equality
against interned values falls back to the structural comparison, so mixing
generations is always *correct*, merely slower.  The counters below make
the split observable:

* ``hits``      — constructions that returned an existing node,
* ``misses``    — constructions that created a new node,
* ``eq_fast_paths`` — ``__eq__`` calls answered by the identity check.

:class:`~repro.iql.evaluator.EvaluationStats` snapshots the counters around
a run and ``repro run --stats`` prints the deltas.

Thread safety: under the GIL each probe, insert, and sweep-rebuild is
atomic enough; two threads racing to intern the same content can at worst
both build a node, with the last insert winning the table.  The loser
stays a valid value — the structural ``__eq__`` fallback absorbs the
duplicate — so no lock sits on the construction path.

Process locality
----------------

The store is **process-local** by design: nothing here is shared memory,
and node identity never survives a process boundary on its own.  The
``backend="process"`` executor (:mod:`repro.iql.parexec`) leans on this
deliberately — each worker process runs its own ``STORE`` seeded by its
own constructions, and facts crossing a pipe are rebuilt *through the
receiving side's interned constructors* (``Oid.__reduce__`` /
``OTuple.__reduce__`` / ``OSet.__reduce__`` in
:mod:`repro.values.ovalues`, and the wire codec in :mod:`repro.io`).
Re-canonicalization at the receiver, not shared tables, is what restores
the ``v1 == v2  ⇔  v1 is v2`` invariant after a merge; a worker's hit or
miss counters therefore say nothing about the coordinator's, and the
coordinator's constants cache and lazy index registry are never visible
to workers (the IQL8xx certificate audits exactly that).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple
from contextlib import contextmanager


class InternStore:
    """Process-wide hash-consing tables and counters."""

    #: Tables smaller than this are never swept; above it, a sweep runs
    #: when live+dead entries reach the table's high-water mark.
    SWEEP_FLOOR = 8192

    __slots__ = (
        "enabled",
        "tuples",
        "sets",
        "hits",
        "misses",
        "eq_fast_paths",
        "tuples_mark",
        "sets_mark",
    )

    def __init__(self) -> None:
        self.enabled = True
        self.tuples: Dict = {}
        self.sets: Dict = {}
        self.hits = 0
        self.misses = 0
        self.eq_fast_paths = 0
        self.tuples_mark = self.SWEEP_FLOOR
        self.sets_mark = self.SWEEP_FLOOR


#: The process-wide store. ``repro.values.ovalues`` binds this at import
#: time; everything else should go through the functions below.
STORE = InternStore()


def interning_enabled() -> bool:
    """True iff new OTuple/OSet constructions are being interned."""
    return STORE.enabled


def set_interning(enabled: bool) -> bool:
    """Enable or disable interning; returns the previous setting."""
    previous = STORE.enabled
    STORE.enabled = bool(enabled)
    return previous


@contextmanager
def interning(enabled: bool) -> Iterator[None]:
    """Context manager: run a block with interning on or off.

    The toggle is process-global (the store is), so concurrent evaluators
    in other threads observe it too — acceptable for the A/B and
    differential uses this exists for.
    """
    previous = set_interning(enabled)
    try:
        yield
    finally:
        set_interning(previous)


def counters() -> Tuple[int, int, int]:
    """(hits, misses, eq_fast_paths) since process start."""
    return (STORE.hits, STORE.misses, STORE.eq_fast_paths)


def table_sizes() -> Tuple[int, int]:
    """(live interned tuples, live interned sets).

    Dead entries linger until the next amortized sweep, so this walks the
    tables and counts only references that still resolve."""
    return (
        sum(1 for ref in STORE.tuples.values() if ref() is not None),
        sum(1 for ref in STORE.sets.values() if ref() is not None),
    )


def clear() -> None:
    """Drop both tables (values already out there stay valid; equality
    across the clear falls back to the structural path)."""
    STORE.tuples.clear()
    STORE.sets.clear()
    STORE.tuples_mark = InternStore.SWEEP_FLOOR
    STORE.sets_mark = InternStore.SWEEP_FLOOR
