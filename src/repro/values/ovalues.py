"""O-values: the value universe of the object-based data model (Section 2.1).

Definition 2.1.1 of the paper: the set of *o-values* is the smallest set
containing ``D ∪ O`` (constants and object identities) that is closed under
finite tupling ``[A1: v1, ..., Ak: vk]`` and finite setting ``{v1, ..., vk}``.

Representation choices
----------------------

* Constants (the set ``D``) are plain Python ``str``, ``int``, ``float`` and
  ``bool`` values. The paper treats ``D`` as a single countable base domain;
  using several Python scalar types changes nothing structurally and keeps
  examples readable (``"Adam"``, ``42``).
* Oids (the set ``O``) are instances of :class:`Oid` — atomic identities
  with a process-wide serial number. Crucially an oid carries **no value**:
  the partial function ν lives in the instance (Definition 2.3.2), so the
  same oid can denote different o-values in different instances, exactly as
  in the paper where ``adam`` is distinct from the string ``Adam``.
* Tuples are :class:`OTuple` — immutable mappings from attribute names to
  o-values with canonical (sorted) attribute order, so two tuples with the
  same fields are equal regardless of construction order.
* Sets are :class:`OSet` — immutable wrappers around ``frozenset``.
  Duplicate elimination is therefore automatic, matching the paper's tree
  representation in which the children of a set node are *distinct* subtrees.

All o-values are hashable, so they can themselves be set elements, relation
members, or dictionary keys inside the evaluator.

Hash-consing
------------

Tuples and sets are *interned* (see :mod:`repro.values.intern`): while
interning is enabled — the default — constructing a structurally equal
value returns the **same** Python object, so the value universe is a DAG
of unique nodes. Equality then short-circuits on identity, set/dict
membership never walks a tree, and the per-node metadata used by the
hot paths — :func:`value_size`, :func:`value_depth`, :func:`oids_of`,
:func:`constants_of`, :func:`sort_key`, :func:`sorted_elements` — is
computed once per distinct value and cached on the node itself.
Values built while interning is off (the ``--no-intern`` A/B hatch)
still compare correctly through the structural fallback in ``__eq__``.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple, Union
from weakref import WeakValueDictionary
from weakref import ref as _weakref

from repro.errors import OValueError
from repro.values.intern import STORE as _STORE

#: The Python types admitted as constants (the base domain D).
CONSTANT_TYPES = (str, int, float, bool)

#: Static alias for anything that is an o-value. ``object`` is used for the
#: scalar leg because Python has no recursive union types; :func:`is_ovalue`
#: is the runtime check.
OValue = Union[str, int, float, bool, "Oid", "OTuple", "OSet"]

_EMPTY_FROZENSET: FrozenSet = frozenset()

#: Salts separating an OTuple/OSet hash from the raw hash of its canonical
#: content (and from each other), so a tuple, its field list and a set of
#: the same elements land in different buckets.
_TUPLE_SALT = 0x5A1_7B1E
_SET_SALT = 0x5A1_5E75

#: Everything admissible as a tuple component / set element, as one tuple so
#: construction-time validation is a single C-level isinstance. Equals
#: ``(Oid, OTuple, OSet) + CONSTANT_TYPES`` — i.e. :func:`is_ovalue` —
#: and is filled in after the classes are defined.
_OVALUE_TYPES: tuple = ()


class Oid:
    """An object identity: an atomic, globally distinct element of ``O``.

    Oids compare by identity (each constructed ``Oid`` is a fresh element of
    ``O``). A display ``name`` may be supplied for readable examples
    (``Oid("adam")``); the name carries no semantics and two oids named
    ``"adam"`` are still distinct. The ``serial`` number gives a stable,
    deterministic creation order, which the evaluator's invention machinery
    and the isomorphism certificates rely on.
    """

    __slots__ = ("serial", "name", "_hash", "__weakref__")

    _next_serial = 0
    _lock = threading.Lock()

    def __init__(self, name: str = ""):
        with Oid._lock:
            Oid._next_serial += 1
            self.serial = Oid._next_serial
        self.name = name
        # Precomputed: oids are hashed on every table probe of every value
        # containing them, so ``__hash__`` must be an attribute load.
        self._hash = hash((Oid, self.serial))

    def __repr__(self) -> str:
        if self.name:
            return f"&{self.name}"
        return f"&o{self.serial}"

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return self is other

    def __lt__(self, other: "Oid") -> bool:
        if not isinstance(other, Oid):
            return NotImplemented
        return self.serial < other.serial

    def __reduce__(self):
        """Pickle as ``(serial, name)``, resolved through the registry.

        Identity is what an oid *is*, so a pickle round-trip must not
        manufacture a second element of ``O``: the sender registers the
        live object under its serial, and :func:`_oid_from_wire` on the
        receiving side returns the registered object when the serial is
        already known in that process — which is exactly what lets a
        coordinator recognize its own oids inside facts a worker sends
        back. A serial seen for the first time (a worker receiving
        coordinator facts) reconstructs an oid carrying the sender's
        serial, so sort order and invention determinism agree across the
        process boundary.
        """
        with _OID_REGISTRY_LOCK:
            _OID_REGISTRY[self.serial] = self
        return (_oid_from_wire, (self.serial, self.name))


#: serial → live oid, for pickle round-trips (:meth:`Oid.__reduce__`).
#: Weak so the registry never keeps an oid alive by itself.
_OID_REGISTRY: "WeakValueDictionary[int, Oid]" = WeakValueDictionary()
_OID_REGISTRY_LOCK = threading.Lock()


def _oid_from_wire(serial: int, name: str) -> Oid:
    """Resolve a pickled oid to the process-local object for that serial."""
    with _OID_REGISTRY_LOCK:
        existing = _OID_REGISTRY.get(serial)
        if existing is not None:
            return existing
        oid = object.__new__(Oid)
        oid.serial = serial
        oid.name = name
        oid._hash = hash((Oid, serial))
        _OID_REGISTRY[serial] = oid
    # Local invention must never collide with an imported serial: fresh
    # oids in this process continue strictly above everything seen on
    # the wire. (Certified parallel strata never invent in workers, so
    # this is belt-and-braces for general pickle use.)
    with Oid._lock:
        if Oid._next_serial < serial:
            Oid._next_serial = serial
    return oid


class OTuple:
    """A finite tuple ``[A1: v1, ..., Ak: vk]`` of o-values.

    Attribute names must be distinct strings; the empty tuple ``[]`` (k = 0)
    is permitted and is the unit value of the model. Tuples are immutable
    and hashable; attribute order is canonicalized by sorting, so equality
    is structural. Instances are interned (see module docstring): the
    constructor may return an existing object.
    """

    __slots__ = (
        "_fields",
        "_lookup",
        "_hash",
        "_attrs",
        "_size",
        "_depth",
        "_oids",
        "_consts",
        "_sortkey",
        "__weakref__",
    )

    def __new__(
        cls,
        fields: Union[Mapping[str, OValue], Iterable[Tuple[str, OValue]], None] = None,
        **kwargs: OValue,
    ):
        if fields is None:
            # The keyword path owns ``kwargs`` outright (fresh dict, string
            # keys, no duplicates possible) — use it as the lookup table.
            items: Dict[str, OValue] = kwargs
            for attr, value in items.items():
                if not isinstance(value, _OVALUE_TYPES):
                    raise OValueError(
                        f"tuple component {attr}={value!r} is not an o-value"
                    )
        else:
            if isinstance(fields, Mapping):
                items = dict(fields)
            else:
                items = {}
                for attr, value in fields:
                    if attr in items:
                        raise OValueError(f"duplicate attribute {attr!r} in tuple")
                    items[attr] = value
            for attr, value in kwargs.items():
                if attr in items:
                    raise OValueError(f"duplicate attribute {attr!r} in tuple")
                items[attr] = value
            for attr, value in items.items():
                if not isinstance(attr, str):
                    raise OValueError(
                        f"attribute names must be strings, got {attr!r}"
                    )
                if not isinstance(value, _OVALUE_TYPES):
                    raise OValueError(
                        f"tuple component {attr}={value!r} is not an o-value"
                    )
        canon: Tuple[Tuple[str, OValue], ...] = tuple(sorted(items.items()))
        store = _STORE
        if store.enabled:
            # One dict probe on the hot path; a dead reference reads as a
            # miss and is overwritten below (tombstones are only ever
            # compacted by the amortized sweep).
            ref = store.tuples.get(canon)
            if ref is not None:
                existing = ref()
                if existing is not None:
                    store.hits += 1
                    return existing
            store.misses += 1
        self = object.__new__(cls)
        self._fields = canon
        self._lookup = items
        self._hash = hash(canon) ^ _TUPLE_SALT
        if store.enabled:
            data = store.tuples
            data[canon] = _weakref(self)
            if len(data) >= store.tuples_mark:
                # Amortized sweep: dead entries are left behind as
                # tombstones (no removal callbacks — see intern.py).
                store.tuples = {k: r for k, r in data.items() if r() is not None}
                store.tuples_mark = max(
                    _STORE.SWEEP_FLOOR, 2 * len(store.tuples)
                )
        return self

    @property
    def attributes(self) -> Tuple[str, ...]:
        """The attribute names, in canonical (sorted) order."""
        try:
            return self._attrs
        except AttributeError:
            cached = tuple(attr for attr, _ in self._fields)
            self._attrs = cached
            return cached

    def __getitem__(self, attr: str) -> OValue:
        try:
            return self._lookup[attr]
        except KeyError:
            raise KeyError(attr) from None

    def get(self, attr: str, default: OValue = None) -> OValue:
        return self._lookup.get(attr, default)

    def items(self) -> Tuple[Tuple[str, OValue], ...]:
        return self._fields

    def __contains__(self, attr: str) -> bool:
        return attr in self._lookup

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[str]:
        return iter(self.attributes)

    def replace(self, **updates: OValue) -> "OTuple":
        """Return a copy with the given attributes replaced (or added)."""
        merged = dict(self._fields)
        merged.update(updates)
        return OTuple(merged)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            _STORE.eq_fast_paths += 1
            return True
        return (
            isinstance(other, OTuple)
            and self._hash == other._hash
            and self._fields == other._fields
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{attr}: {value!r}" for attr, value in self._fields)
        return f"[{inner}]"

    def __reduce__(self):
        """Pickle as the canonical field tuple, rebuilt through ``__new__``.

        Unpickling therefore *re-interns* into the receiving process's
        store: a fact shipped to a worker and back arrives as the
        coordinator's own canonical node (identity equality holds), and a
        worker's first sight of a value lands in its process-local store.
        The per-node metadata caches are deliberately not shipped — they
        are recomputed lazily, and on a hit the canonical node already
        has them.
        """
        return (OTuple, (self._fields,))


class OSet:
    """A finite set ``{v1, ..., vk}`` of o-values.

    The empty set ``{}`` (k = 0) is permitted — it is the default value of a
    freshly invented set-valued oid (Section 3.2). Note the difference the
    paper stresses between the type ``{⊥}`` (whose only member is the empty
    set) and the type ``⊥`` (which has no members): ``OSet()`` is a value,
    and a perfectly ordinary one. Instances are interned (see module
    docstring): the constructor may return an existing object.
    """

    __slots__ = (
        "_elements",
        "_hash",
        "_size",
        "_depth",
        "_oids",
        "_consts",
        "_sortkey",
        "_sorted",
        "__weakref__",
    )

    def __new__(cls, elements: Iterable[OValue] = ()):
        elems = frozenset(elements)
        for value in elems:
            if not isinstance(value, _OVALUE_TYPES):
                raise OValueError(f"set element {value!r} is not an o-value")
        store = _STORE
        if store.enabled:
            ref = store.sets.get(elems)
            if ref is not None:
                existing = ref()
                if existing is not None:
                    store.hits += 1
                    return existing
            store.misses += 1
        self = object.__new__(cls)
        self._elements = elems
        self._hash = hash(elems) ^ _SET_SALT
        if store.enabled:
            data = store.sets
            data[elems] = _weakref(self)
            if len(data) >= store.sets_mark:
                store.sets = {k: r for k, r in data.items() if r() is not None}
                store.sets_mark = max(_STORE.SWEEP_FLOOR, 2 * len(store.sets))
        return self

    @property
    def elements(self) -> FrozenSet[OValue]:
        return self._elements

    def __contains__(self, value: OValue) -> bool:
        return value in self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[OValue]:
        return iter(self._elements)

    def union(self, other: Iterable[OValue]) -> "OSet":
        return OSet(self._elements | frozenset(other))

    def add(self, value: OValue) -> "OSet":
        """Return a new set with ``value`` added (OSet itself is immutable)."""
        if value in self._elements:
            return self
        return OSet(self._elements | {value})

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            _STORE.eq_fast_paths += 1
            return True
        return (
            isinstance(other, OSet)
            and self._hash == other._hash
            and self._elements == other._elements
        )

    def __repr__(self) -> str:
        inner = ", ".join(sorted(repr(v) for v in self._elements))
        return "{" + inner + "}"

    def __reduce__(self):
        """Pickle as the element tuple, rebuilt through ``__new__``.

        Same contract as :meth:`OTuple.__reduce__`: unpickling re-interns
        into the receiving process's store.
        """
        return (OSet, (tuple(self._elements),))


_OVALUE_TYPES = (Oid, OTuple, OSet) + CONSTANT_TYPES


def reintern(value: OValue) -> OValue:
    """Rebuild ``value`` bottom-up through interned construction.

    Returns the store's canonical node for the value's content (assuming
    interning is enabled; with it disabled this is a structural copy).
    The identity map on values already canonical — re-interning the
    canonical node probes the store and gets the node itself back — and
    the bridge for *cross-generation* values: anything built under
    ``interning(False)``, or unpickled while interning was off, collapses
    onto the canonical node. Oids and constants pass through untouched:
    an oid's identity is the oid.
    """
    if isinstance(value, OTuple):
        return OTuple(
            tuple(
                (attr, reintern(v) if isinstance(v, (OTuple, OSet)) else v)
                for attr, v in value._fields
            )
        )
    if isinstance(value, OSet):
        return OSet(
            reintern(v) if isinstance(v, (OTuple, OSet)) else v
            for v in value._elements
        )
    return value


def is_constant(value: object) -> bool:
    """True iff ``value`` is an element of the base domain D."""
    return isinstance(value, CONSTANT_TYPES) and not isinstance(value, Oid)


def is_ovalue(value: object) -> bool:
    """True iff ``value`` is an o-value (Definition 2.1.1).

    Components of tuples and sets are validated on construction, so this
    check does not need to recurse.
    """
    return isinstance(value, (Oid, OTuple, OSet)) or is_constant(value)


def ensure_ovalue(value: object) -> OValue:
    """Coerce Python containers into o-values.

    ``dict`` becomes :class:`OTuple`, ``set``/``frozenset``/``list``/``tuple``
    become :class:`OSet` (with elements coerced recursively). Scalars and
    existing o-values pass through. This is a convenience for building test
    fixtures and example instances; the core model only ever sees o-values.
    """
    if isinstance(value, (Oid, OTuple, OSet)):
        return value
    if is_constant(value):
        return value
    if isinstance(value, dict):
        return OTuple({attr: ensure_ovalue(v) for attr, v in value.items()})
    if isinstance(value, (set, frozenset, list, tuple)):
        return OSet(ensure_ovalue(v) for v in value)
    raise OValueError(f"cannot interpret {value!r} as an o-value")


def constants_of(value: OValue) -> FrozenSet[OValue]:
    """The set of constants occurring in ``value`` (used by ``constants(I)``).

    Cached per interned node: the DAG is walked once per distinct value.
    """
    if isinstance(value, (OTuple, OSet)):
        try:
            return value._consts
        except AttributeError:
            cached = _node_constants(value)
            value._consts = cached
            return cached
    if isinstance(value, Oid):
        return _EMPTY_FROZENSET
    if is_constant(value):
        return frozenset((value,))
    raise OValueError(f"not an o-value: {value!r}")


def _node_constants(value: OValue) -> FrozenSet[OValue]:
    out: set = set()
    children = (
        (v for _, v in value._fields) if isinstance(value, OTuple) else iter(value._elements)
    )
    for child in children:
        if isinstance(child, (OTuple, OSet)):
            out |= constants_of(child)
        elif not isinstance(child, Oid):
            out.add(child)
    return frozenset(out)


def oids_of(value: OValue) -> FrozenSet[Oid]:
    """The set of oids occurring in ``value`` (used by ``objects(I)``).

    Cached per interned node, like :func:`constants_of`.
    """
    if isinstance(value, (OTuple, OSet)):
        try:
            return value._oids
        except AttributeError:
            cached = _node_oids(value)
            value._oids = cached
            return cached
    if isinstance(value, Oid):
        return frozenset((value,))
    if is_constant(value):
        return _EMPTY_FROZENSET
    raise OValueError(f"not an o-value: {value!r}")


def _node_oids(value: OValue) -> FrozenSet[Oid]:
    out: set = set()
    children = (
        (v for _, v in value._fields) if isinstance(value, OTuple) else iter(value._elements)
    )
    for child in children:
        if isinstance(child, Oid):
            out.add(child)
        elif isinstance(child, (OTuple, OSet)):
            out |= oids_of(child)
    return frozenset(out)


def substitute_oids(
    value: OValue,
    mapping: Mapping[Oid, OValue],
    _memo: Optional[Dict[int, OValue]] = None,
) -> OValue:
    """Simultaneously replace oids in ``value`` according to ``mapping``.

    Oids not in the mapping are left in place. This is the workhorse behind
    O-isomorphism application (Section 4.1) and the object→value translation
    ψ (Section 7.1), where every oid is replaced by its (possibly infinite)
    pure value.

    Memoized by node identity (``_memo``; interned nodes shared across the
    value — or across values, when the caller passes one memo for a whole
    instance — are rewritten once), and subtrees whose cached oid set is
    disjoint from the mapping are returned unchanged without a walk.
    """
    if isinstance(value, Oid):
        return mapping.get(value, value)
    if isinstance(value, (OTuple, OSet)):
        if not mapping:
            return value
        return _substitute_node(value, mapping, {} if _memo is None else _memo)
    return value


def _substitute_node(
    value: OValue, mapping: Mapping[Oid, OValue], memo: Dict[int, OValue]
) -> OValue:
    # id() keys are stable here: the caller's root keeps every node alive
    # for the duration of the walk.
    key = id(value)
    hit = memo.get(key)
    if hit is not None:
        return hit
    if mapping.keys().isdisjoint(oids_of(value)):
        memo[key] = value
        return value
    if isinstance(value, OTuple):
        result: OValue = OTuple(
            {
                attr: (
                    mapping.get(v, v)
                    if isinstance(v, Oid)
                    else _substitute_node(v, mapping, memo)
                    if isinstance(v, (OTuple, OSet))
                    else v
                )
                for attr, v in value._fields
            }
        )
    else:
        result = OSet(
            mapping.get(v, v)
            if isinstance(v, Oid)
            else _substitute_node(v, mapping, memo)
            if isinstance(v, (OTuple, OSet))
            else v
            for v in value._elements
        )
    memo[key] = result
    return result


def branching_factor(value: OValue) -> int:
    """The maximum out-degree of a node in the tree representing ``value``.

    Lemma 5.7 bounds the branching factor of instances produced by
    invention-free programs; this function makes that bound measurable.
    Scalars have branching factor 0.
    """
    best = 0
    stack = [value]
    while stack:
        v = stack.pop()
        if isinstance(v, OTuple):
            best = max(best, len(v))
            stack.extend(component for _, component in v.items())
        elif isinstance(v, OSet):
            best = max(best, len(v))
            stack.extend(v.elements)
    return best


def value_depth(value: OValue) -> int:
    """The depth of the finite tree representing ``value`` (leaves = 0).

    Cached per interned node.
    """
    if isinstance(value, (OTuple, OSet)):
        try:
            return value._depth
        except AttributeError:
            if isinstance(value, OTuple):
                children = [v for _, v in value._fields]
            else:
                children = list(value._elements)
            cached = 1 + max((value_depth(v) for v in children), default=0)
            value._depth = cached
            return cached
    return 0


def value_size(value: OValue) -> int:
    """The number of nodes in the **tree** representing ``value``.

    Shared (hash-consed) subvalues count once per occurrence, exactly as
    before interning; the count itself is cached per distinct node.
    """
    if isinstance(value, (OTuple, OSet)):
        try:
            return value._size
        except AttributeError:
            if isinstance(value, OTuple):
                children = (v for _, v in value._fields)
            else:
                children = iter(value._elements)
            cached = 1 + sum(value_size(v) for v in children)
            value._size = cached
            return cached
    return 1


def sort_key(value: OValue):
    """A deterministic total order on o-values.

    Python cannot compare ``str`` with ``int``, let alone sets with tuples,
    so we build an explicit lexicographic key: kind tag first, then content.
    Oids order by serial — stable within a process run. Used for canonical
    printing and for deterministic iteration in the evaluator (which keeps
    runs reproducible without affecting semantics). Keys of tuples and
    sets are cached per interned node.
    """
    if isinstance(value, (int, float)):
        # One numeric kind: Python (hence the model) has 0 == False == 0.0,
        # so equal constants must share a sort key. Mixed int/float tuples
        # compare fine element-wise.
        return (0, "num", value)
    if isinstance(value, str):
        return (0, "str", value)
    if isinstance(value, Oid):
        return (1, value.serial)
    if isinstance(value, OTuple):
        try:
            return value._sortkey
        except AttributeError:
            cached = (2, tuple((attr, sort_key(v)) for attr, v in value._fields))
            value._sortkey = cached
            return cached
    if isinstance(value, OSet):
        try:
            return value._sortkey
        except AttributeError:
            cached = (3, tuple(sort_key(v) for v in sorted_elements(value)))
            value._sortkey = cached
            return cached
    raise OValueError(f"not an o-value: {value!r}")


def sorted_elements(value: "OSet") -> Tuple[OValue, ...]:
    """The elements of an :class:`OSet` in canonical :func:`sort_key` order.

    Cached on the node: set-pattern matching in the evaluator visits the
    same container values over and over and previously re-sorted them on
    every call.
    """
    try:
        return value._sorted
    except AttributeError:
        cached = tuple(sorted(value._elements, key=sort_key))
        value._sorted = cached
        return cached


def render(value: OValue) -> str:
    """Render an o-value deterministically (sets in sorted order)."""
    if isinstance(value, OTuple):
        inner = ", ".join(f"{attr}: {render(v)}" for attr, v in value.items())
        return f"[{inner}]"
    if isinstance(value, OSet):
        inner = ", ".join(render(v) for v in sorted_elements(value))
        return "{" + inner + "}"
    if isinstance(value, Oid):
        return repr(value)
    return repr(value)
