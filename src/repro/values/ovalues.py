"""O-values: the value universe of the object-based data model (Section 2.1).

Definition 2.1.1 of the paper: the set of *o-values* is the smallest set
containing ``D ∪ O`` (constants and object identities) that is closed under
finite tupling ``[A1: v1, ..., Ak: vk]`` and finite setting ``{v1, ..., vk}``.

Representation choices
----------------------

* Constants (the set ``D``) are plain Python ``str``, ``int``, ``float`` and
  ``bool`` values. The paper treats ``D`` as a single countable base domain;
  using several Python scalar types changes nothing structurally and keeps
  examples readable (``"Adam"``, ``42``).
* Oids (the set ``O``) are instances of :class:`Oid` — atomic identities
  with a process-wide serial number. Crucially an oid carries **no value**:
  the partial function ν lives in the instance (Definition 2.3.2), so the
  same oid can denote different o-values in different instances, exactly as
  in the paper where ``adam`` is distinct from the string ``Adam``.
* Tuples are :class:`OTuple` — immutable mappings from attribute names to
  o-values with canonical (sorted) attribute order, so two tuples with the
  same fields are equal regardless of construction order.
* Sets are :class:`OSet` — immutable wrappers around ``frozenset``.
  Duplicate elimination is therefore automatic, matching the paper's tree
  representation in which the children of a set node are *distinct* subtrees.

All o-values are hashable, so they can themselves be set elements, relation
members, or dictionary keys inside the evaluator.
"""

from __future__ import annotations

import itertools
import threading
from functools import lru_cache as _lru_cache
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple, Union

from repro.errors import OValueError

#: The Python types admitted as constants (the base domain D).
CONSTANT_TYPES = (str, int, float, bool)

#: Static alias for anything that is an o-value. ``object`` is used for the
#: scalar leg because Python has no recursive union types; :func:`is_ovalue`
#: is the runtime check.
OValue = Union[str, int, float, bool, "Oid", "OTuple", "OSet"]


class Oid:
    """An object identity: an atomic, globally distinct element of ``O``.

    Oids compare by identity (each constructed ``Oid`` is a fresh element of
    ``O``). A display ``name`` may be supplied for readable examples
    (``Oid("adam")``); the name carries no semantics and two oids named
    ``"adam"`` are still distinct. The ``serial`` number gives a stable,
    deterministic creation order, which the evaluator's invention machinery
    and the isomorphism certificates rely on.
    """

    __slots__ = ("serial", "name")

    _counter = itertools.count(1)
    _lock = threading.Lock()

    def __init__(self, name: str = ""):
        with Oid._lock:
            self.serial = next(Oid._counter)
        self.name = name

    def __repr__(self) -> str:
        if self.name:
            return f"&{self.name}"
        return f"&o{self.serial}"

    def __hash__(self) -> int:
        return hash((Oid, self.serial))

    def __eq__(self, other: object) -> bool:
        return self is other

    def __lt__(self, other: "Oid") -> bool:
        if not isinstance(other, Oid):
            return NotImplemented
        return self.serial < other.serial


class OTuple:
    """A finite tuple ``[A1: v1, ..., Ak: vk]`` of o-values.

    Attribute names must be distinct strings; the empty tuple ``[]`` (k = 0)
    is permitted and is the unit value of the model. Tuples are immutable
    and hashable; attribute order is canonicalized by sorting, so equality
    is structural.
    """

    __slots__ = ("_fields", "_hash")

    def __init__(self, fields: Union[Mapping[str, OValue], Iterable[Tuple[str, OValue]], None] = None, **kwargs: OValue):
        items: Dict[str, OValue] = {}
        if fields is not None:
            pairs = fields.items() if isinstance(fields, Mapping) else fields
            for attr, value in pairs:
                if attr in items:
                    raise OValueError(f"duplicate attribute {attr!r} in tuple")
                items[attr] = value
        for attr, value in kwargs.items():
            if attr in items:
                raise OValueError(f"duplicate attribute {attr!r} in tuple")
            items[attr] = value
        for attr, value in items.items():
            if not isinstance(attr, str):
                raise OValueError(f"attribute names must be strings, got {attr!r}")
            if not is_ovalue(value):
                raise OValueError(f"tuple component {attr}={value!r} is not an o-value")
        self._fields: Tuple[Tuple[str, OValue], ...] = tuple(sorted(items.items()))
        self._hash = hash((OTuple, self._fields))

    @property
    def attributes(self) -> Tuple[str, ...]:
        """The attribute names, in canonical (sorted) order."""
        return tuple(attr for attr, _ in self._fields)

    def __getitem__(self, attr: str) -> OValue:
        for name, value in self._fields:
            if name == attr:
                return value
        raise KeyError(attr)

    def get(self, attr: str, default: OValue = None) -> OValue:
        for name, value in self._fields:
            if name == attr:
                return value
        return default

    def items(self) -> Tuple[Tuple[str, OValue], ...]:
        return self._fields

    def __contains__(self, attr: str) -> bool:
        return any(name == attr for name, _ in self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[str]:
        return iter(self.attributes)

    def replace(self, **updates: OValue) -> "OTuple":
        """Return a copy with the given attributes replaced (or added)."""
        merged = dict(self._fields)
        merged.update(updates)
        return OTuple(merged)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OTuple) and self._fields == other._fields

    def __repr__(self) -> str:
        inner = ", ".join(f"{attr}: {value!r}" for attr, value in self._fields)
        return f"[{inner}]"


class OSet:
    """A finite set ``{v1, ..., vk}`` of o-values.

    The empty set ``{}`` (k = 0) is permitted — it is the default value of a
    freshly invented set-valued oid (Section 3.2). Note the difference the
    paper stresses between the type ``{⊥}`` (whose only member is the empty
    set) and the type ``⊥`` (which has no members): ``OSet()`` is a value,
    and a perfectly ordinary one.
    """

    __slots__ = ("_elements", "_hash")

    def __init__(self, elements: Iterable[OValue] = ()):
        elems = frozenset(elements)
        for value in elems:
            if not is_ovalue(value):
                raise OValueError(f"set element {value!r} is not an o-value")
        self._elements: FrozenSet[OValue] = elems
        self._hash = hash((OSet, self._elements))

    @property
    def elements(self) -> FrozenSet[OValue]:
        return self._elements

    def __contains__(self, value: OValue) -> bool:
        return value in self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[OValue]:
        return iter(self._elements)

    def union(self, other: Iterable[OValue]) -> "OSet":
        return OSet(self._elements | frozenset(other))

    def add(self, value: OValue) -> "OSet":
        """Return a new set with ``value`` added (OSet itself is immutable)."""
        if value in self._elements:
            return self
        return OSet(self._elements | {value})

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OSet) and self._elements == other._elements

    def __repr__(self) -> str:
        inner = ", ".join(sorted(repr(v) for v in self._elements))
        return "{" + inner + "}"


def is_constant(value: object) -> bool:
    """True iff ``value`` is an element of the base domain D."""
    return isinstance(value, CONSTANT_TYPES) and not isinstance(value, Oid)


def is_ovalue(value: object) -> bool:
    """True iff ``value`` is an o-value (Definition 2.1.1).

    Components of tuples and sets are validated on construction, so this
    check does not need to recurse.
    """
    return isinstance(value, (Oid, OTuple, OSet)) or is_constant(value)


def ensure_ovalue(value: object) -> OValue:
    """Coerce Python containers into o-values.

    ``dict`` becomes :class:`OTuple`, ``set``/``frozenset``/``list``/``tuple``
    become :class:`OSet` (with elements coerced recursively). Scalars and
    existing o-values pass through. This is a convenience for building test
    fixtures and example instances; the core model only ever sees o-values.
    """
    if isinstance(value, (Oid, OTuple, OSet)):
        return value
    if is_constant(value):
        return value
    if isinstance(value, dict):
        return OTuple({attr: ensure_ovalue(v) for attr, v in value.items()})
    if isinstance(value, (set, frozenset, list, tuple)):
        return OSet(ensure_ovalue(v) for v in value)
    raise OValueError(f"cannot interpret {value!r} as an o-value")


def constants_of(value: OValue) -> FrozenSet[OValue]:
    """The set of constants occurring in ``value`` (used by ``constants(I)``)."""
    out = set()
    _walk(value, out, want_constants=True)
    return frozenset(out)


def oids_of(value: OValue) -> FrozenSet[Oid]:
    """The set of oids occurring in ``value`` (used by ``objects(I)``)."""
    out = set()
    _walk(value, out, want_constants=False)
    return frozenset(out)


def _walk(value: OValue, out: set, want_constants: bool) -> None:
    stack = [value]
    while stack:
        v = stack.pop()
        if isinstance(v, Oid):
            if not want_constants:
                out.add(v)
        elif isinstance(v, OTuple):
            stack.extend(component for _, component in v.items())
        elif isinstance(v, OSet):
            stack.extend(v.elements)
        elif is_constant(v):
            if want_constants:
                out.add(v)
        else:  # pragma: no cover - construction validates components
            raise OValueError(f"not an o-value: {v!r}")


def substitute_oids(value: OValue, mapping: Mapping[Oid, OValue]) -> OValue:
    """Simultaneously replace oids in ``value`` according to ``mapping``.

    Oids not in the mapping are left in place. This is the workhorse behind
    O-isomorphism application (Section 4.1) and the object→value translation
    ψ (Section 7.1), where every oid is replaced by its (possibly infinite)
    pure value.
    """
    if isinstance(value, Oid):
        return mapping.get(value, value)
    if isinstance(value, OTuple):
        return OTuple({attr: substitute_oids(v, mapping) for attr, v in value.items()})
    if isinstance(value, OSet):
        return OSet(substitute_oids(v, mapping) for v in value)
    return value


def branching_factor(value: OValue) -> int:
    """The maximum out-degree of a node in the tree representing ``value``.

    Lemma 5.7 bounds the branching factor of instances produced by
    invention-free programs; this function makes that bound measurable.
    Scalars have branching factor 0.
    """
    best = 0
    stack = [value]
    while stack:
        v = stack.pop()
        if isinstance(v, OTuple):
            best = max(best, len(v))
            stack.extend(component for _, component in v.items())
        elif isinstance(v, OSet):
            best = max(best, len(v))
            stack.extend(v.elements)
    return best


def value_depth(value: OValue) -> int:
    """The depth of the finite tree representing ``value`` (leaves = 0)."""
    if isinstance(value, OTuple):
        if len(value) == 0:
            return 1
        return 1 + max(value_depth(v) for _, v in value.items())
    if isinstance(value, OSet):
        if len(value) == 0:
            return 1
        return 1 + max(value_depth(v) for v in value)
    return 0


def value_size(value: OValue) -> int:
    """The number of nodes in the tree representing ``value``."""
    count = 0
    stack = [value]
    while stack:
        v = stack.pop()
        count += 1
        if isinstance(v, OTuple):
            stack.extend(component for _, component in v.items())
        elif isinstance(v, OSet):
            stack.extend(v.elements)
    return count


def sort_key(value: OValue):
    """A deterministic total order on o-values.

    Python cannot compare ``str`` with ``int``, let alone sets with tuples,
    so we build an explicit lexicographic key: kind tag first, then content.
    Oids order by serial — stable within a process run. Used for canonical
    printing and for deterministic iteration in the evaluator (which keeps
    runs reproducible without affecting semantics).
    """
    if isinstance(value, (int, float)):
        # One numeric kind: Python (hence the model) has 0 == False == 0.0,
        # so equal constants must share a sort key. Mixed int/float tuples
        # compare fine element-wise.
        return (0, "num", value)
    if isinstance(value, str):
        return (0, "str", value)
    if isinstance(value, Oid):
        return (1, value.serial)
    if isinstance(value, OTuple):
        return (2, tuple((attr, sort_key(v)) for attr, v in value.items()))
    if isinstance(value, OSet):
        return (3, tuple(sorted(sort_key(v) for v in value)))
    raise OValueError(f"not an o-value: {value!r}")


@_lru_cache(maxsize=4096)
def sorted_elements(value: "OSet") -> Tuple[OValue, ...]:
    """The elements of an :class:`OSet` in canonical :func:`sort_key` order.

    O-sets are immutable and hashable, so the ordering is cached (bounded
    LRU): set-pattern matching in the evaluator visits the same container
    values over and over and previously re-sorted them on every call.
    """
    return tuple(sorted(value, key=sort_key))


def render(value: OValue) -> str:
    """Render an o-value deterministically (sets in sorted order)."""
    if isinstance(value, OTuple):
        inner = ", ".join(f"{attr}: {render(v)}" for attr, v in value.items())
        return f"[{inner}]"
    if isinstance(value, OSet):
        inner = ", ".join(render(v) for v in sorted(value, key=sort_key))
        return "{" + inner + "}"
    if isinstance(value, Oid):
        return repr(value)
    return repr(value)
